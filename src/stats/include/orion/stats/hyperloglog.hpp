// HyperLogLog cardinality sketch and the hybrid exact/HLL estimator the
// event aggregator uses for unique-destination counting.
#pragma once

#include <cstdint>
#include <vector>

namespace orion::stats {

/// Standard HyperLogLog (Flajolet et al. 2007) with the small-range
/// linear-counting correction. Precision p gives 2^p registers and a
/// relative error of roughly 1.04 / sqrt(2^p).
class HyperLogLog {
 public:
  explicit HyperLogLog(int precision = 12);

  void add(std::uint64_t hash);
  double estimate() const;
  void merge(const HyperLogLog& other);
  int precision() const { return precision_; }
  std::size_t memory_bytes() const { return registers_.size(); }

  /// Checkpoint support: raw register access and restore. `set_registers`
  /// throws std::invalid_argument if the size does not match 2^precision.
  const std::vector<std::uint8_t>& registers() const { return registers_; }
  void set_registers(std::vector<std::uint8_t> registers);

 private:
  int precision_;
  std::vector<std::uint8_t> registers_;
};

/// Mixes an arbitrary 64-bit key into a well-distributed hash for HLL.
std::uint64_t hll_hash(std::uint64_t key);

/// Counts distinct 64-bit keys exactly up to `exact_limit`, then converts
/// to an HLL sketch. Per-event unique-destination tracking needs exactness
/// for small events (most events touch a handful of dark IPs) but bounded
/// memory for Internet-wide sweeps, which is exactly this trade-off.
///
/// The exact phase uses a flat open-addressing u64 set (zero is the empty
/// sentinel, tracked by a side flag) rather than std::unordered_set — the
/// per-insert node allocation dominated the aggregator's per-packet cost.
/// Observationally this changes nothing: checkpoints sort the exact keys,
/// estimate() is the distinct count, and HLL promotion takes a register
/// max over the same key set in any order.
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(std::size_t exact_limit = 4096,
                                int hll_precision = 12);

  void add(std::uint64_t key);
  /// Exact count while below the limit; HLL estimate afterwards.
  std::uint64_t estimate() const;
  bool is_exact() const { return !promoted_; }

  /// Checkpoint support: expose and reinstate the full estimator state.
  /// Keys come back in unspecified order — checkpoint writers sort them.
  /// The restored estimator keeps this instance's limit and precision;
  /// `restore` throws std::invalid_argument on a precision mismatch.
  std::vector<std::uint64_t> exact_keys() const;
  const HyperLogLog& sketch() const { return sketch_; }
  void restore(bool promoted, const std::vector<std::uint64_t>& exact,
               HyperLogLog sketch);

 private:
  void insert_exact(std::uint64_t key);
  void promote();

  std::size_t exact_limit_;
  int hll_precision_;
  bool promoted_ = false;
  bool has_zero_ = false;          // key 0 lives here, not in slots_
  std::size_t exact_size_ = 0;     // distinct keys, including a zero key
  std::vector<std::uint64_t> slots_;  // open addressing; 0 = empty slot
  HyperLogLog sketch_;
};

}  // namespace orion::stats
