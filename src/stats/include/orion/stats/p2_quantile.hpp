// P² (piecewise-parabolic) streaming quantile estimator (Jain & Chlamtac
// 1985): tracks one quantile in O(1) memory without storing samples — the
// constant-memory alternative to the reservoir ECDF in the streaming
// detector (ablated in bench_micro_core / stats tests).
#pragma once

#include <array>
#include <cstdint>

namespace orion::stats {

class P2Quantile {
 public:
  /// q in (0, 1): the quantile to track (e.g. 0.9999 for a top-1e-4 tail).
  explicit P2Quantile(double q);

  void add(double sample);

  /// Current estimate; exact while fewer than 5 samples were seen.
  double estimate() const;
  std::uint64_t count() const { return count_; }

 private:
  double quantile_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};    // marker heights
  std::array<double, 5> positions_{};  // actual marker positions
  std::array<double, 5> desired_{};    // desired marker positions
  std::array<double, 5> increments_{};
};

}  // namespace orion::stats
