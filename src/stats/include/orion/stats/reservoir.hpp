// Reservoir sampling (Vitter's Algorithm R): a fixed-size uniform sample
// of an unbounded stream. Backs the streaming detector's rolling ECDFs,
// which must bound memory over months of events.
#pragma once

#include <cstdint>
#include <vector>

#include "orion/netbase/rng.hpp"

namespace orion::stats {

template <typename T>
class ReservoirSampler {
 public:
  ReservoirSampler(std::size_t capacity, std::uint64_t seed)
      : capacity_(capacity), rng_(seed) {
    sample_.reserve(capacity);
  }

  void add(const T& value) {
    ++seen_;
    if (sample_.size() < capacity_) {
      sample_.push_back(value);
      return;
    }
    // Keep each stream element with probability capacity/seen.
    const std::uint64_t slot = rng_.bounded(seen_);
    if (slot < capacity_) sample_[static_cast<std::size_t>(slot)] = value;
  }

  /// Elements seen so far (not the sample size).
  std::uint64_t seen() const { return seen_; }
  const std::vector<T>& sample() const { return sample_; }
  std::size_t capacity() const { return capacity_; }
  bool saturated() const { return sample_.size() == capacity_; }

  /// Checkpoint support: a restored sampler continues the exact
  /// keep/replace sequence the snapshotted one would have produced.
  std::array<std::uint64_t, 4> rng_state() const { return rng_.save_state(); }
  void restore(std::uint64_t seen, std::vector<T> sample,
               const std::array<std::uint64_t, 4>& rng_state) {
    seen_ = seen;
    sample_ = std::move(sample);
    rng_.restore_state(rng_state);
  }

 private:
  std::size_t capacity_;
  net::Rng rng_;
  std::uint64_t seen_ = 0;
  std::vector<T> sample_;
};

}  // namespace orion::stats
