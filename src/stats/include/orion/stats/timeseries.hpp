// Fixed-width time-bucketed counters for the Figure 1/2/3 series.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "orion/netbase/simtime.hpp"

namespace orion::stats {

/// Accumulates counts into fixed-width time bins over a window
/// [start, start + bin * bin_count). Out-of-window samples are dropped and
/// counted separately so tests can assert none were lost unintentionally.
class BinnedSeries {
 public:
  BinnedSeries(net::SimTime start, net::Duration bin_width, std::size_t bin_count);

  void add(net::SimTime when, std::uint64_t weight = 1);

  std::size_t bin_count() const { return bins_.size(); }
  net::Duration bin_width() const { return bin_width_; }
  net::SimTime bin_start(std::size_t index) const {
    return start_ + bin_width_ * static_cast<std::int64_t>(index);
  }
  std::uint64_t bin(std::size_t index) const { return bins_.at(index); }
  const std::vector<std::uint64_t>& bins() const { return bins_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t total() const;

  /// Per-bin rate in events per second.
  std::vector<double> rates() const;
  /// Running total after each bin.
  std::vector<std::uint64_t> cumulative() const;

 private:
  net::SimTime start_;
  net::Duration bin_width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t dropped_ = 0;
};

/// Elementwise ratio of two aligned series (numerator/denominator per bin),
/// with empty-denominator bins yielding 0. This is the "instantaneous
/// impact" series of Figure 1 (middle row).
std::vector<double> ratio_series(const BinnedSeries& numerator,
                                 const BinnedSeries& denominator);

/// Running ratio of cumulative sums — Figure 1 (top row).
std::vector<double> cumulative_ratio_series(const BinnedSeries& numerator,
                                            const BinnedSeries& denominator);

/// Compact fixed-width ASCII sparkline of a series (for bench output).
std::string sparkline(const std::vector<double>& values, std::size_t width = 60);

}  // namespace orion::stats
