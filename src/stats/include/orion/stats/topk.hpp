// Exact top-K counting over hashable keys (ports, ASes, tags, sources).
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace orion::stats {

template <typename Key, typename Hash = std::hash<Key>>
class TopK {
 public:
  void add(const Key& key, std::uint64_t weight = 1) { counts_[key] += weight; }

  std::uint64_t count(const Key& key) const {
    const auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto& [key, count] : counts_) t += count;
    return t;
  }

  std::size_t distinct() const { return counts_.size(); }

  /// The k heaviest keys, descending by count (ties broken by key for
  /// deterministic report output).
  std::vector<std::pair<Key, std::uint64_t>> top(std::size_t k) const {
    std::vector<std::pair<Key, std::uint64_t>> entries(counts_.begin(),
                                                       counts_.end());
    std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    if (entries.size() > k) entries.resize(k);
    return entries;
  }

  const std::unordered_map<Key, std::uint64_t, Hash>& counts() const {
    return counts_;
  }

 private:
  std::unordered_map<Key, std::uint64_t, Hash> counts_;
};

}  // namespace orion::stats
