// Exact top-K counting over hashable keys (ports, ASes, tags, sources),
// with an optional spill bound for bounded-memory use on large archives.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace orion::stats {

/// Default construction is exact and unbounded (the original behavior).
/// A bounded counter tracks at most `bound` distinct keys exactly — the
/// first `bound` distinct keys seen — and diverts every later new key's
/// weight into a single counted spill bucket. The guarantee callers lean
/// on: every TRACKED count is exact, and an untracked key's true total is
/// at most spilled_weight() (its entire weight went to the bucket), so
/// any key whose true count exceeds spilled_weight() is provably in the
/// tracked head with its exact count (tests/stats_test.cpp pins this).
/// Weight is conserved either way: total() includes the spill.
template <typename Key, typename Hash = std::hash<Key>>
class TopK {
 public:
  TopK() = default;
  /// Bounded counter; bound == 0 means unbounded (same as default).
  explicit TopK(std::size_t bound) : bound_(bound) {}

  void add(const Key& key, std::uint64_t weight = 1) {
    if (bound_ != 0 && counts_.size() >= bound_) {
      const auto it = counts_.find(key);
      if (it == counts_.end()) {
        spilled_weight_ += weight;
        ++spilled_adds_;
        return;
      }
      it->second += weight;
      return;
    }
    counts_[key] += weight;
  }

  std::uint64_t count(const Key& key) const {
    const auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  /// Total weight added, spill included (weight conservation is what the
  /// Figure-5 normalization depends on).
  std::uint64_t total() const {
    std::uint64_t t = spilled_weight_;
    for (const auto& [key, count] : counts_) t += count;
    return t;
  }

  /// Distinct TRACKED keys (spilled keys are not counted — they were
  /// never individually stored).
  std::size_t distinct() const { return counts_.size(); }

  std::size_t bound() const { return bound_; }
  std::uint64_t spilled_weight() const { return spilled_weight_; }
  std::uint64_t spilled_adds() const { return spilled_adds_; }

  /// The k heaviest tracked keys, descending by count (ties broken by key
  /// for deterministic report output).
  std::vector<std::pair<Key, std::uint64_t>> top(std::size_t k) const {
    std::vector<std::pair<Key, std::uint64_t>> entries(counts_.begin(),
                                                       counts_.end());
    std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    if (entries.size() > k) entries.resize(k);
    return entries;
  }

  const std::unordered_map<Key, std::uint64_t, Hash>& counts() const {
    return counts_;
  }

 private:
  std::unordered_map<Key, std::uint64_t, Hash> counts_;
  std::size_t bound_ = 0;  // 0: unbounded
  std::uint64_t spilled_weight_ = 0;
  std::uint64_t spilled_adds_ = 0;
};

}  // namespace orion::stats
