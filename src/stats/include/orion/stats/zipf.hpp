// Zipf utilities: a bounded Zipf sampler for workload generation and the
// cumulative-contribution curve behind Figure 6 (right).
#pragma once

#include <cstdint>
#include <vector>

#include "orion/netbase/rng.hpp"

namespace orion::stats {

/// Samples ranks 1..n with P(rank = k) proportional to k^-s, via the
/// precomputed inverse CDF. Used to give scanner populations a realistic
/// heavy-tailed packet-contribution profile.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  /// Zero-based rank sample.
  std::size_t sample(net::Rng& rng) const;
  /// Probability mass of a zero-based rank.
  double pmf(std::size_t rank) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Given per-entity weights (e.g. packets per AH), returns the cumulative
/// share contributed by the heaviest 1..n entities as fractions in (0, 1].
/// curve[i] = share of the total owed to the top (i+1) contributors.
std::vector<double> cumulative_contribution_curve(std::vector<std::uint64_t> weights);

/// Least-squares fit of log(weight) ~ -s * log(rank) over the sorted
/// weights; returns the Zipf exponent estimate (0 on degenerate input).
double fit_zipf_exponent(std::vector<std::uint64_t> weights);

}  // namespace orion::stats
