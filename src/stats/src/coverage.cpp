#include "orion/stats/coverage.hpp"

#include <stdexcept>

#include "orion/netbase/simd.hpp"

namespace orion::stats {

CoverageBitset::CoverageBitset(std::uint64_t universe_size)
    : universe_size_(universe_size), words_((universe_size + 63) / 64, 0) {}

bool CoverageBitset::set(std::uint64_t index) {
  if (index >= universe_size_) {
    throw std::out_of_range("CoverageBitset::set: index beyond universe");
  }
  std::uint64_t& word = words_[index >> 6];
  const std::uint64_t bit = std::uint64_t{1} << (index & 63);
  if (word & bit) return false;
  word |= bit;
  return true;
}

void CoverageBitset::mark(std::uint64_t index) {
  if (index >= universe_size_) {
    throw std::out_of_range("CoverageBitset::mark: index beyond universe");
  }
  words_[index >> 6] |= std::uint64_t{1} << (index & 63);
}

bool CoverageBitset::test(std::uint64_t index) const {
  if (index >= universe_size_) {
    throw std::out_of_range("CoverageBitset::test: index beyond universe");
  }
  return (words_[index >> 6] >> (index & 63)) & 1;
}

std::uint64_t CoverageBitset::count() const {
  return orion::net::simd::popcount_words(words_);
}

std::uint64_t CoverageBitset::overlap(const CoverageBitset& other) const {
  if (other.universe_size_ != universe_size_) {
    throw std::invalid_argument("CoverageBitset::overlap: universe mismatch");
  }
  return orion::net::simd::and_popcount_words(words_, other.words_);
}

void CoverageBitset::clear() { words_.assign(words_.size(), 0); }

}  // namespace orion::stats
