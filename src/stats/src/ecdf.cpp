#include "orion/stats/ecdf.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace orion::stats {

Ecdf::Ecdf(std::vector<std::uint64_t> samples)
    : samples_(std::move(samples)), sorted_(false) {}

void Ecdf::add(std::uint64_t sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void Ecdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Ecdf::at(std::uint64_t x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::uint64_t Ecdf::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("Ecdf::quantile on empty ECDF");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("Ecdf::quantile: q out of range");
  ensure_sorted();
  if (q <= 0.0) return samples_.front();
  // Smallest index i with (i + 1) / n >= q  =>  i = ceil(q * n) - 1.
  const auto n = static_cast<double>(samples_.size());
  auto index = static_cast<std::size_t>(std::ceil(q * n));
  if (index > 0) --index;
  if (index >= samples_.size()) index = samples_.size() - 1;
  return samples_[index];
}

std::uint64_t Ecdf::min() const {
  if (samples_.empty()) throw std::logic_error("Ecdf::min on empty ECDF");
  ensure_sorted();
  return samples_.front();
}

std::uint64_t Ecdf::max() const {
  if (samples_.empty()) throw std::logic_error("Ecdf::max on empty ECDF");
  ensure_sorted();
  return samples_.back();
}

double Ecdf::mean() const {
  if (samples_.empty()) throw std::logic_error("Ecdf::mean on empty ECDF");
  const auto sum = std::accumulate(samples_.begin(), samples_.end(),
                                   static_cast<long double>(0));
  return static_cast<double>(sum / static_cast<long double>(samples_.size()));
}

const std::vector<std::uint64_t>& Ecdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

double ks_distance(const Ecdf& a, const Ecdf& b) {
  const auto& xs = a.sorted_samples();
  const auto& ys = b.sorted_samples();
  if (xs.empty() || ys.empty()) {
    throw std::logic_error("ks_distance: empty distribution");
  }
  const double nx = static_cast<double>(xs.size());
  const double ny = static_cast<double>(ys.size());
  std::size_t i = 0, j = 0;
  double d = 0.0;
  while (i < xs.size() && j < ys.size()) {
    const std::uint64_t v = std::min(xs[i], ys[j]);
    while (i < xs.size() && xs[i] == v) ++i;
    while (j < ys.size() && ys[j] == v) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / nx -
                             static_cast<double>(j) / ny));
  }
  return d;
}

}  // namespace orion::stats
