#include "orion/stats/hyperloglog.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace orion::stats {

std::uint64_t hll_hash(std::uint64_t key) {
  // SplitMix64 finalizer: full-avalanche 64-bit mix.
  std::uint64_t z = key + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  if (precision < 4 || precision > 18) {
    throw std::invalid_argument("HyperLogLog: precision must be in [4, 18]");
  }
  registers_.assign(std::size_t{1} << precision, 0);
}

void HyperLogLog::add(std::uint64_t hash) {
  const std::size_t index = hash >> (64 - precision_);
  const std::uint64_t rest = hash << precision_;
  // Rank = position of the leftmost 1-bit in the remaining bits, 1-based;
  // all-zero remainder gets the maximum rank.
  const int rank =
      rest == 0 ? 64 - precision_ + 1 : std::countl_zero(rest) + 1;
  if (registers_[index] < rank) registers_[index] = static_cast<std::uint8_t>(rank);
}

double HyperLogLog::estimate() const {
  const auto m = static_cast<double>(registers_.size());
  double inverse_sum = 0.0;
  std::size_t zero_registers = 0;
  for (const std::uint8_t reg : registers_) {
    inverse_sum += std::ldexp(1.0, -reg);
    if (reg == 0) ++zero_registers;
  }
  const double alpha =
      registers_.size() == 16 ? 0.673
      : registers_.size() == 32 ? 0.697
      : registers_.size() == 64 ? 0.709
                                : 0.7213 / (1.0 + 1.079 / m);
  const double raw = alpha * m * m / inverse_sum;
  if (raw <= 2.5 * m && zero_registers > 0) {
    // Small-range correction: linear counting on empty registers.
    return m * std::log(m / static_cast<double>(zero_registers));
  }
  return raw;
}

void HyperLogLog::set_registers(std::vector<std::uint8_t> registers) {
  if (registers.size() != (std::size_t{1} << precision_)) {
    throw std::invalid_argument("HyperLogLog::set_registers: size mismatch");
  }
  registers_ = std::move(registers);
}

void HyperLogLog::merge(const HyperLogLog& other) {
  if (other.precision_ != precision_) {
    throw std::invalid_argument("HyperLogLog::merge: precision mismatch");
  }
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    if (other.registers_[i] > registers_[i]) registers_[i] = other.registers_[i];
  }
}

CardinalityEstimator::CardinalityEstimator(std::size_t exact_limit,
                                           int hll_precision)
    : exact_limit_(exact_limit),
      hll_precision_(hll_precision),
      sketch_(hll_precision) {}

void CardinalityEstimator::insert_exact(std::uint64_t key) {
  // Grow at 3/4 load (counting only the keys stored in slots_).
  const std::size_t stored = exact_size_ - (has_zero_ ? 1 : 0);
  if (slots_.empty() || (stored + 1) * 4 > slots_.size() * 3) {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, 0);
    const std::size_t mask = slots_.size() - 1;
    for (const std::uint64_t k : old) {
      if (k == 0) continue;
      std::size_t i = hll_hash(k) & mask;
      while (slots_[i] != 0) i = (i + 1) & mask;
      slots_[i] = k;
    }
  }
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = hll_hash(key) & mask;
  while (slots_[i] != 0) {
    if (slots_[i] == key) return;
    i = (i + 1) & mask;
  }
  slots_[i] = key;
  ++exact_size_;
}

void CardinalityEstimator::promote() {
  for (const std::uint64_t k : slots_) {
    if (k != 0) sketch_.add(hll_hash(k));
  }
  if (has_zero_) sketch_.add(hll_hash(0));
  slots_.clear();
  slots_.shrink_to_fit();
  has_zero_ = false;
  exact_size_ = 0;
  promoted_ = true;
}

void CardinalityEstimator::add(std::uint64_t key) {
  if (promoted_) {
    sketch_.add(hll_hash(key));
    return;
  }
  if (key == 0) {
    if (!has_zero_) {
      has_zero_ = true;
      ++exact_size_;
    }
  } else {
    insert_exact(key);
  }
  if (exact_size_ > exact_limit_) promote();
}

std::vector<std::uint64_t> CardinalityEstimator::exact_keys() const {
  std::vector<std::uint64_t> keys;
  keys.reserve(exact_size_);
  if (has_zero_) keys.push_back(0);
  for (const std::uint64_t k : slots_) {
    if (k != 0) keys.push_back(k);
  }
  return keys;
}

void CardinalityEstimator::restore(bool promoted,
                                   const std::vector<std::uint64_t>& exact,
                                   HyperLogLog sketch) {
  if (sketch.precision() != hll_precision_) {
    throw std::invalid_argument(
        "CardinalityEstimator::restore: precision mismatch");
  }
  promoted_ = promoted;
  slots_.clear();
  has_zero_ = false;
  exact_size_ = 0;
  for (const std::uint64_t k : exact) {
    if (k == 0) {
      if (!has_zero_) {
        has_zero_ = true;
        ++exact_size_;
      }
    } else {
      insert_exact(k);
    }
  }
  sketch_ = std::move(sketch);
}

std::uint64_t CardinalityEstimator::estimate() const {
  if (!promoted_) return exact_size_;
  return static_cast<std::uint64_t>(std::llround(sketch_.estimate()));
}

}  // namespace orion::stats
