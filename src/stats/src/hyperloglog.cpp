#include "orion/stats/hyperloglog.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace orion::stats {

std::uint64_t hll_hash(std::uint64_t key) {
  // SplitMix64 finalizer: full-avalanche 64-bit mix.
  std::uint64_t z = key + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  if (precision < 4 || precision > 18) {
    throw std::invalid_argument("HyperLogLog: precision must be in [4, 18]");
  }
  registers_.assign(std::size_t{1} << precision, 0);
}

void HyperLogLog::add(std::uint64_t hash) {
  const std::size_t index = hash >> (64 - precision_);
  const std::uint64_t rest = hash << precision_;
  // Rank = position of the leftmost 1-bit in the remaining bits, 1-based;
  // all-zero remainder gets the maximum rank.
  const int rank =
      rest == 0 ? 64 - precision_ + 1 : std::countl_zero(rest) + 1;
  if (registers_[index] < rank) registers_[index] = static_cast<std::uint8_t>(rank);
}

double HyperLogLog::estimate() const {
  const auto m = static_cast<double>(registers_.size());
  double inverse_sum = 0.0;
  std::size_t zero_registers = 0;
  for (const std::uint8_t reg : registers_) {
    inverse_sum += std::ldexp(1.0, -reg);
    if (reg == 0) ++zero_registers;
  }
  const double alpha =
      registers_.size() == 16 ? 0.673
      : registers_.size() == 32 ? 0.697
      : registers_.size() == 64 ? 0.709
                                : 0.7213 / (1.0 + 1.079 / m);
  const double raw = alpha * m * m / inverse_sum;
  if (raw <= 2.5 * m && zero_registers > 0) {
    // Small-range correction: linear counting on empty registers.
    return m * std::log(m / static_cast<double>(zero_registers));
  }
  return raw;
}

void HyperLogLog::set_registers(std::vector<std::uint8_t> registers) {
  if (registers.size() != (std::size_t{1} << precision_)) {
    throw std::invalid_argument("HyperLogLog::set_registers: size mismatch");
  }
  registers_ = std::move(registers);
}

void HyperLogLog::merge(const HyperLogLog& other) {
  if (other.precision_ != precision_) {
    throw std::invalid_argument("HyperLogLog::merge: precision mismatch");
  }
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    if (other.registers_[i] > registers_[i]) registers_[i] = other.registers_[i];
  }
}

CardinalityEstimator::CardinalityEstimator(std::size_t exact_limit,
                                           int hll_precision)
    : exact_limit_(exact_limit),
      hll_precision_(hll_precision),
      sketch_(hll_precision) {}

void CardinalityEstimator::add(std::uint64_t key) {
  if (promoted_) {
    sketch_.add(hll_hash(key));
    return;
  }
  exact_.insert(key);
  if (exact_.size() > exact_limit_) {
    for (const std::uint64_t k : exact_) sketch_.add(hll_hash(k));
    exact_.clear();
    promoted_ = true;
  }
}

void CardinalityEstimator::restore(bool promoted,
                                   std::unordered_set<std::uint64_t> exact,
                                   HyperLogLog sketch) {
  if (sketch.precision() != hll_precision_) {
    throw std::invalid_argument(
        "CardinalityEstimator::restore: precision mismatch");
  }
  promoted_ = promoted;
  exact_ = std::move(exact);
  sketch_ = std::move(sketch);
}

std::uint64_t CardinalityEstimator::estimate() const {
  if (!promoted_) return exact_.size();
  return static_cast<std::uint64_t>(std::llround(sketch_.estimate()));
}

}  // namespace orion::stats
