#include "orion/stats/p2_quantile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace orion::stats {

P2Quantile::P2Quantile(double q) : quantile_(q) {
  if (q <= 0.0 || q >= 1.0) {
    throw std::invalid_argument("P2Quantile: q must be in (0, 1)");
  }
  desired_ = {1, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5};
  increments_ = {0, q / 2, q, (1 + q) / 2, 1};
}

void P2Quantile::add(double sample) {
  ++count_;
  if (count_ <= 5) {
    heights_[count_ - 1] = sample;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      positions_ = {1, 2, 3, 4, 5};
    }
    return;
  }

  // Locate the cell containing the sample and clamp the extremes.
  std::size_t k;
  if (sample < heights_[0]) {
    heights_[0] = sample;
    k = 0;
  } else if (sample >= heights_[4]) {
    heights_[4] = sample;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && sample >= heights_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust the three interior markers with parabolic interpolation,
  // falling back to linear when the parabola would break monotonicity.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double gap = desired_[i] - positions_[i];
    if ((gap >= 1 && positions_[i + 1] - positions_[i] > 1) ||
        (gap <= -1 && positions_[i - 1] - positions_[i] < -1)) {
      const double direction = gap >= 1 ? 1.0 : -1.0;
      const double parabolic =
          heights_[i] +
          direction / (positions_[i + 1] - positions_[i - 1]) *
              ((positions_[i] - positions_[i - 1] + direction) *
                   (heights_[i + 1] - heights_[i]) /
                   (positions_[i + 1] - positions_[i]) +
               (positions_[i + 1] - positions_[i] - direction) *
                   (heights_[i] - heights_[i - 1]) /
                   (positions_[i] - positions_[i - 1]));
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        // Linear fallback toward the neighbor in `direction`.
        const std::size_t j = direction > 0 ? i + 1 : i - 1;
        heights_[i] += direction * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += direction;
    }
  }
}

double P2Quantile::estimate() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile over the seen values.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<long>(count_));
    const auto index = static_cast<std::size_t>(
        std::ceil(quantile_ * static_cast<double>(count_)));
    return sorted[index == 0 ? 0 : index - 1];
  }
  return heights_[2];
}

}  // namespace orion::stats
