#include "orion/stats/timeseries.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace orion::stats {

BinnedSeries::BinnedSeries(net::SimTime start, net::Duration bin_width,
                           std::size_t bin_count)
    : start_(start), bin_width_(bin_width), bins_(bin_count, 0) {
  if (bin_width.total_nanos() <= 0) {
    throw std::invalid_argument("BinnedSeries: non-positive bin width");
  }
}

void BinnedSeries::add(net::SimTime when, std::uint64_t weight) {
  const std::int64_t offset = (when - start_).total_nanos();
  if (offset < 0) {
    dropped_ += weight;
    return;
  }
  const auto index =
      static_cast<std::uint64_t>(offset / bin_width_.total_nanos());
  if (index >= bins_.size()) {
    dropped_ += weight;
    return;
  }
  bins_[index] += weight;
}

std::uint64_t BinnedSeries::total() const {
  return std::accumulate(bins_.begin(), bins_.end(), std::uint64_t{0});
}

std::vector<double> BinnedSeries::rates() const {
  const double width_seconds = bin_width_.total_seconds();
  std::vector<double> out(bins_.size());
  std::transform(bins_.begin(), bins_.end(), out.begin(), [&](std::uint64_t v) {
    return static_cast<double>(v) / width_seconds;
  });
  return out;
}

std::vector<std::uint64_t> BinnedSeries::cumulative() const {
  std::vector<std::uint64_t> out(bins_.size());
  std::partial_sum(bins_.begin(), bins_.end(), out.begin());
  return out;
}

std::vector<double> ratio_series(const BinnedSeries& numerator,
                                 const BinnedSeries& denominator) {
  if (numerator.bin_count() != denominator.bin_count()) {
    throw std::invalid_argument("ratio_series: bin count mismatch");
  }
  std::vector<double> out(numerator.bin_count());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint64_t d = denominator.bin(i);
    out[i] = d == 0 ? 0.0
                    : static_cast<double>(numerator.bin(i)) / static_cast<double>(d);
  }
  return out;
}

std::vector<double> cumulative_ratio_series(const BinnedSeries& numerator,
                                            const BinnedSeries& denominator) {
  if (numerator.bin_count() != denominator.bin_count()) {
    throw std::invalid_argument("cumulative_ratio_series: bin count mismatch");
  }
  const auto num = numerator.cumulative();
  const auto den = denominator.cumulative();
  std::vector<double> out(num.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = den[i] == 0
                 ? 0.0
                 : static_cast<double>(num[i]) / static_cast<double>(den[i]);
  }
  return out;
}

std::string sparkline(const std::vector<double>& values, std::size_t width) {
  static constexpr const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  if (values.empty() || width == 0) return "";
  const double max_value = *std::max_element(values.begin(), values.end());
  std::string out;
  out.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    // Down-sample by taking the max within each output column so short
    // spikes stay visible.
    const std::size_t begin = i * values.size() / width;
    std::size_t end = (i + 1) * values.size() / width;
    if (end <= begin) end = begin + 1;
    double column = 0;
    for (std::size_t j = begin; j < end && j < values.size(); ++j) {
      column = std::max(column, values[j]);
    }
    const int level =
        max_value <= 0 ? 0 : static_cast<int>(column / max_value * 7.0 + 0.5);
    out += kLevels[level];
  }
  return out;
}

}  // namespace orion::stats
