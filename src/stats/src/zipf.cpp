#include "orion/stats/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace orion::stats {

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: empty support");
  cdf_.resize(n);
  double running = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    running += std::pow(static_cast<double>(k + 1), -exponent);
    cdf_[k] = running;
  }
  for (double& v : cdf_) v /= running;
}

std::size_t ZipfSampler::sample(net::Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  if (rank >= cdf_.size()) throw std::out_of_range("ZipfSampler::pmf: bad rank");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

std::vector<double> cumulative_contribution_curve(
    std::vector<std::uint64_t> weights) {
  std::sort(weights.begin(), weights.end(), std::greater<>());
  long double total = 0;
  for (const std::uint64_t w : weights) total += w;
  std::vector<double> curve(weights.size());
  long double running = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    running += weights[i];
    curve[i] = total == 0 ? 0.0 : static_cast<double>(running / total);
  }
  return curve;
}

double fit_zipf_exponent(std::vector<std::uint64_t> weights) {
  std::sort(weights.begin(), weights.end(), std::greater<>());
  // Drop zero weights: log of zero is undefined and zero contributors carry
  // no rank information.
  while (!weights.empty() && weights.back() == 0) weights.pop_back();
  if (weights.size() < 2) return 0.0;

  double sum_x = 0, sum_y = 0, sum_xx = 0, sum_xy = 0;
  const auto n = static_cast<double>(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double x = std::log(static_cast<double>(i + 1));
    const double y = std::log(static_cast<double>(weights[i]));
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_xy += x * y;
  }
  const double denom = n * sum_xx - sum_x * sum_x;
  if (denom == 0) return 0.0;
  const double slope = (n * sum_xy - sum_x * sum_y) / denom;
  return -slope;
}

}  // namespace orion::stats
