// Crash-safe archive publication: atomic generation swaps behind a
// CRC-guarded manifest (DESIGN.md §13).
//
// Every durable artifact the pipeline emits (ODE2 event stores, OCP1
// checkpoints, flow archives) is published into an archive directory
// under a generation-numbered file name, through the write-ahead
// protocol:
//
//   1. write    <name>.tmp.<gen>     (io::File, failpoint-instrumented)
//   2. fsync    the tmp file         (data durable before it is visible)
//   3. rename   -> <name>.g<gen>     (atomic: old or new, never torn)
//   4. publish  MANIFEST.tmp.<gen> -> MANIFEST the same way
//   5. fsync    the directory        (the renames themselves durable)
//
// The MANIFEST ("OMF1", CRC-32-guarded, written atomically like any
// other artifact) records the live generation set: logical name ->
// generation file, size, CRC. Readers resolve names through it and
// therefore never see a half-written file — a crash at ANY syscall in
// the protocol leaves the manifest referencing either the complete old
// generation or the complete new one (the crash-matrix property test
// enumerates every failpoint and proves exactly that). Orphaned
// temporaries and superseded or unreferenced generation files are swept
// by recover() at startup; in-flight publication code never cleans up
// after a failure, so the simulated-crash and real-crash disk states
// stay identical.
//
// publish_many() amortizes the manifest update and directory fsync over
// a batch of artifacts — the fsync-batched publish mode bench_faulttol
// compares against per-file publish().
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "orion/netbase/io.hpp"
#include "orion/store/fde1.hpp"
#include "orion/store/ode2.hpp"

namespace orion::store {

/// One live artifact in the manifest.
struct ManifestEntry {
  std::string name;     // logical name, e.g. "events" or "pipeline.ocp"
  std::string file;     // directory-relative generation file, "<name>.g<N>"
  std::uint64_t generation = 0;
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;  // CRC-32 of the file's contents
};

/// What the startup sweep found and did.
struct RecoverReport {
  bool manifest_present = false;
  bool manifest_valid = false;
  std::uint64_t live_entries = 0;
  std::uint64_t removed_temporaries = 0;  // <name>.tmp.<gen> leftovers
  std::uint64_t removed_orphans = 0;      // generation files not in the manifest
  std::uint64_t quarantined = 0;          // undecodable files renamed *.quarantine
  std::uint64_t damaged_entries = 0;      // manifest entries missing/short on disk
  std::string detail;                     // first problem seen, for operators

  bool clean() const {
    return removed_temporaries == 0 && removed_orphans == 0 &&
           quarantined == 0 && damaged_entries == 0;
  }
};

class ArchiveDir {
 public:
  /// Opens (creating if absent) the archive directory and loads the
  /// manifest. A missing manifest is an empty archive; a corrupt one
  /// throws ArchiveError — run recover() via recover_archive() first
  /// when opening archives that may have seen crashes or disk damage.
  explicit ArchiveDir(std::string dir);

  const std::string& dir() const { return dir_; }
  /// Generation of the live manifest (0: empty archive, nothing ever
  /// published).
  std::uint64_t generation() const { return generation_; }
  const std::vector<ManifestEntry>& entries() const { return entries_; }

  std::optional<ManifestEntry> find(const std::string& name) const;
  /// Full path of the live generation file for `name`, if published.
  std::optional<std::string> resolve(const std::string& name) const;
  std::string path_of(const ManifestEntry& entry) const;

  /// Streams one artifact's bytes into the supplied file. Must not keep
  /// the File beyond the call.
  using Writer = std::function<void(net::io::File&)>;

  /// Durably publishes one artifact under `name` (replacing any live
  /// generation of the same name). Throws net::io::IoError on I/O
  /// failure and lets net::io::SimulatedCrash escape untouched; in both
  /// cases the live manifest still describes the pre-publication state
  /// and recover() will sweep the partial files.
  ManifestEntry publish(const std::string& name, const Writer& writer);

  /// Publishes a batch of artifacts under ONE manifest update and one
  /// directory fsync — atomically: readers see all of them or none.
  std::vector<ManifestEntry> publish_many(
      const std::vector<std::pair<std::string, Writer>>& items);

  /// Startup sweep: re-reads the manifest (falling back to an empty view
  /// if it is missing; quarantining it if corrupt), deletes orphaned
  /// temporaries and unreferenced generation files, and verifies each
  /// live entry's size against the manifest. Never throws on damage —
  /// the report says what it found.
  RecoverReport recover();

  /// Verifies the live entry `name` byte-for-byte against its manifest
  /// CRC. True when present and intact.
  bool verify(const std::string& name) const;

 private:
  struct Tolerant {};
  /// Recovery-path constructor: loads what it can of a corrupt manifest
  /// instead of throwing (recover() then quarantines it).
  ArchiveDir(std::string dir, Tolerant);
  friend RecoverReport recover_archive(const std::string& dir);

  void load_manifest(bool allow_corrupt);
  void write_manifest(const std::vector<ManifestEntry>& entries,
                      std::uint64_t generation);

  std::string dir_;
  std::uint64_t generation_ = 0;
  std::vector<ManifestEntry> entries_;
};

/// Typed archive-level failure (corrupt manifest, bad artifact name).
class ArchiveError : public std::runtime_error {
 public:
  explicit ArchiveError(const std::string& what)
      : std::runtime_error("archive: " + what) {}
};

/// Convenience: open + sweep in one call (the startup path every reader
/// and daemon should use).
RecoverReport recover_archive(const std::string& dir);

class MappedEventStore;
class MappedFlowStore;

/// Publishes `dataset` as the live ODE2 artifact `name` (atomic swap).
ManifestEntry publish_events_ode2(
    ArchiveDir& archive, const std::string& name,
    const telescope::EventDataset& dataset,
    std::uint64_t block_events = kOde2DefaultBlockEvents);

/// Publishes a whole flow window as the live FDE1 artifact `name`
/// through the §13 write-ahead protocol — the crash-safe at-rest form of
/// live flow collection (the ROADMAP FDE1 follow-on).
ManifestEntry publish_flows_fde1(
    ArchiveDir& archive, const std::string& name,
    const flowsim::FlowDataset& flows,
    std::uint64_t block_flows = kFde1DefaultBlockFlows);

/// Writer factories for ArchiveDir::publish_many composition: publish an
/// event store and a flow archive under ONE manifest commit, so a
/// watching daemon (serve::StoreCache) sees both generations flip in the
/// same atomic instant. The referenced dataset must outlive the publish
/// call; the writers borrow it.
ArchiveDir::Writer events_ode2_writer(
    const telescope::EventDataset& dataset,
    std::uint64_t block_events = kOde2DefaultBlockEvents);
ArchiveDir::Writer flows_fde1_writer(
    const flowsim::FlowDataset& flows,
    std::uint64_t block_flows = kFde1DefaultBlockFlows);

/// Opens the live generation of `name` as a zero-copy store. Resolution
/// goes through the manifest, so orphaned temporaries and partial
/// generations are invisible; the mapped size is cross-checked against
/// the manifest entry. Throws ArchiveError when `name` has never been
/// published (or its file was damaged to a different size).
MappedEventStore open_mapped_events(const ArchiveDir& archive,
                                    const std::string& name);

/// Flow-side sibling of open_mapped_events: the live FDE1 generation of
/// `name`, size-checked against the manifest.
MappedFlowStore open_mapped_flows(const ArchiveDir& archive,
                                  const std::string& name);

}  // namespace orion::store
