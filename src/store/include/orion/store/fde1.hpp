// FDE1 — the columnar on-disk flow archive (DESIGN.md §15).
//
// PR 5's flow path keeps every router-day as an in-memory FlowBatch built
// from the simulator's hash maps; a multi-month archive has no at-rest
// form at all. FDE1 gives flows the ODE2 treatment: the whole window is
// one file of little-endian column blocks in a global
// (router, day, src, dst_port, type) order, with a per-(router,day)
// segment index in the footer so a query touches exactly one row range:
//
//   file    := header | block* | footer
//   header  := "FDE1" | crc32([8,40)) | sampling_rate u64 | flow_count u64
//              | block_flows u64 | footer_offset u64           (40 bytes)
//   block   := ts i64[m] | packets u64[m] | bytes u64[m] | src u32[m]
//              | dst u32[m] | src_port u16[m] | dst_port u16[m]
//              | router u16[m] | proto u8[m] | zero pad to 8
//   footer  := start_day i64 | end_day i64 | segment_count u64
//              | block_count u64 | segment[segment_count]
//              | block meta[block_count] | block_crc u32[block_count]
//              | footer crc32
//   segment := router u64 | day i64 | row_begin u64 | total_packets u64
//              | user_packets u64 | scanner_packets u64        (48 bytes)
//   meta    := offset u64 | min_src u32 | max_src u32          (16 bytes)
//
// Alignment follows ODE2: a 40-byte header plus 8-padded blocks with
// widest columns first keeps every column 8-aligned, so the mapped bytes
// are exposed as typed spans directly (MappedFlowStore). Segments are
// strictly increasing in (router, day) and carry the row range implicitly
// (row_end = next segment's row_begin, or flow_count for the last), plus
// the SNMP-side ground-truth totals a RouterDay holds — which is what
// lets FlowImpactAnalyzer answer query() from the file alone. Block
// min/max over src are the zone maps source-targeted scans prune with.
//
// Integrity mirrors ODE1/ODE2 salvage: CRC-32 (the PR 7 hardware path)
// guards the header and footer, each block's CRC lives in the footer, and
// the salvage reader recovers every complete valid block preceding the
// first error — validating the global row order structurally when
// truncation took the footer (every flow field is total, so order is the
// only structure unverified bytes have).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "orion/flowsim/flow_batch.hpp"
#include "orion/flowsim/flows.hpp"
#include "orion/netbase/io.hpp"

namespace orion::store {

/// Rows per full block: same trade-off as kOde2DefaultBlockEvents (fine
/// salvage granularity, selective zone maps, amortized column runs).
constexpr std::uint64_t kFde1DefaultBlockFlows = 1024;

constexpr std::uint64_t kFde1HeaderBytes = 40;
constexpr std::uint64_t kFde1SegmentBytes = 48;
constexpr std::uint64_t kFde1BlockMetaBytes = 16;

/// Bytes of one block holding `rows` flows (including the trailing pad).
constexpr std::uint64_t fde1_block_bytes(std::uint64_t rows) {
  const std::uint64_t raw = rows * (3 * 8 + 2 * 4 + 3 * 2 + 1);
  return (raw + 7) & ~std::uint64_t{7};
}

/// One (router, day) cell of the archive: its row range plus the
/// ground-truth interface counters the impact denominator needs.
struct FlowSegment {
  std::size_t router = 0;
  std::int64_t day = 0;
  std::uint64_t row_begin = 0;
  std::uint64_t row_end = 0;
  std::uint64_t total_packets = 0;
  std::uint64_t user_packets = 0;
  std::uint64_t scanner_packets = 0;
};

/// Writer input for one (router, day) cell: totals plus the sampled rows,
/// which must already be in the (src, dst_port, traffic type) order
/// flow_batch_of emits. Empty cells (rows.empty()) are legal — a router
/// that sampled nothing that day still has interface counters.
struct Fde1Segment {
  std::uint16_t router = 0;
  std::int64_t day = 0;
  std::uint64_t total_packets = 0;
  std::uint64_t user_packets = 0;
  std::uint64_t scanner_packets = 0;
  flowsim::FlowBatch rows;
};

/// Writes explicit segments in FDE1 form; returns total bytes written.
/// Segments must be strictly increasing in (router, day) with every day
/// inside [start_day, end_day), and every row must carry its segment's
/// router, a timestamp inside its segment's day, and keep the sorted
/// order above — std::invalid_argument otherwise. Throws
/// std::runtime_error on stream failure.
std::uint64_t write_flows_fde1(std::uint32_t sampling_rate,
                               std::int64_t start_day, std::int64_t end_day,
                               const std::vector<Fde1Segment>& segments,
                               std::ostream& out,
                               std::uint64_t block_flows = kFde1DefaultBlockFlows);

/// Failpoint-instrumented variant through the io::File seam (EINTR
/// retries, short-write completion, FaultFs crash-matrix visibility).
std::uint64_t write_flows_fde1(std::uint32_t sampling_rate,
                               std::int64_t start_day, std::int64_t end_day,
                               const std::vector<Fde1Segment>& segments,
                               net::io::File& out,
                               std::uint64_t block_flows = kFde1DefaultBlockFlows);

/// Archives a whole simulated dataset: one segment per (router, day) cell
/// of the window, rows from flow_batch_of — the deterministic feed the
/// impact join already builds from, so a round trip reproduces the
/// in-memory query() path bit for bit.
std::uint64_t write_flows_fde1(const flowsim::FlowDataset& flows,
                               std::ostream& out,
                               std::uint64_t block_flows = kFde1DefaultBlockFlows);
std::uint64_t write_flows_fde1(const flowsim::FlowDataset& flows,
                               net::io::File& out,
                               std::uint64_t block_flows = kFde1DefaultBlockFlows);

/// Convenience: write straight to a file path (truncating, io::File seam,
/// NOT atomic — use ArchiveDir publication for crash safety).
std::uint64_t write_flows_fde1_file(const flowsim::FlowDataset& flows,
                                    const std::string& path,
                                    std::uint64_t block_flows = kFde1DefaultBlockFlows);
std::uint64_t write_flows_fde1_file(std::uint32_t sampling_rate,
                                    std::int64_t start_day,
                                    std::int64_t end_day,
                                    const std::vector<Fde1Segment>& segments,
                                    const std::string& path,
                                    std::uint64_t block_flows = kFde1DefaultBlockFlows);

/// Salvage-mode read mirroring read_events_ode2_salvage: recovers every
/// complete valid block preceding the first error instead of throwing the
/// whole archive away. Segment metadata (and with it the per-(router,day)
/// totals) survives only when the footer's CRC does.
struct Fde1SalvageResult {
  flowsim::FlowBatch rows;             // recovered rows, archive order
  std::vector<FlowSegment> segments;   // footer-intact only
  std::uint32_t sampling_rate = 0;
  std::int64_t start_day = 0;
  std::int64_t end_day = 0;            // valid when footer_intact
  std::uint64_t declared_count = 0;    // header's flow count (0: bad header)
  std::uint64_t recovered_count = 0;   // rows recovered into `rows`
  bool footer_intact = false;          // footer parsed and CRC-verified
  bool complete = false;               // whole file verified clean
  std::string error;                   // first error when !complete
};

Fde1SalvageResult read_flows_fde1_salvage(const std::string& path);

/// Sniffs what kind of flow input a path holds: "FDE1" (magic), "NFV5"
/// (a NetFlow v5 export-packet stream — big-endian version 5 in the first
/// two bytes), "CSV" (printable text), or "?" — the flow-side sibling of
/// sniff_event_format, used by every CLI flow-reading path.
std::string sniff_flow_format(const std::string& path);

}  // namespace orion::store
