// MappedEventStore — the zero-copy query engine over ODE2 archives.
//
// Opens an ODE2 file via mmap (falling back to a read-into-buffer when
// mapping is unavailable) and exposes the column blocks as typed spans:
// analyses scan columns in place, with no per-event materialization, no
// istream parsing, and no upfront vector build. The per-day row index
// answers day() predicates with a range lookup instead of a full-archive
// rescan, the per-block (day, src) zone maps let scans skip whole blocks,
// and parallel_scan() fans blocks out over threads with a deterministic
// in-order merge — the same ordered-merge discipline the PR 2 sharded
// pipeline uses, applied to at-rest data.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "orion/store/ode2.hpp"
#include "orion/telescope/event.hpp"

namespace orion::store {

/// A borrowed, typed view of one column's values inside a block. Points
/// straight into the mapped file; valid while the store is alive.
template <typename T>
using ColumnSpan = std::span<const T>;

/// One row group, viewed column-wise. `first_row` is the global index of
/// the block's row 0, so day_range() results translate directly.
struct BlockView {
  std::size_t first_row = 0;
  ColumnSpan<std::int64_t> start_ns;
  ColumnSpan<std::int64_t> end_ns;
  ColumnSpan<std::uint64_t> packets;
  ColumnSpan<std::uint64_t> unique_dests;
  std::array<ColumnSpan<std::uint64_t>, 4> tool_packets;
  ColumnSpan<std::uint32_t> src;
  ColumnSpan<std::uint16_t> dst_port;
  ColumnSpan<std::uint8_t> type;

  std::size_t rows() const { return src.size(); }

  /// Gathers one row into a full DarknetEvent (the only materializing
  /// accessor; scans should read the spans instead).
  telescope::DarknetEvent event(std::size_t i) const;
};

/// Footer metadata for one block: where it lives and its zone map.
struct BlockMeta {
  std::uint64_t offset = 0;  // file offset of the block's first byte
  std::int64_t min_day = 0;
  std::int64_t max_day = 0;
  std::uint32_t min_src = 0;
  std::uint32_t max_src = 0;
  std::uint32_t crc = 0;  // CRC-32 of the block's padded bytes
};

/// Row proxy handed to for_each_event callbacks: the DarknetEvent read
/// interface (key/start/end/packets/unique_dests/day/dispersion) built
/// from column loads on the stack — no heap, no tool columns touched.
struct EventRow {
  telescope::EventKey key;
  net::SimTime start;
  net::SimTime end;
  std::uint64_t packets = 0;
  std::uint64_t unique_dests = 0;

  std::int64_t day() const { return start.day(); }
  double dispersion(std::uint64_t darknet_size) const {
    return darknet_size == 0 ? 0.0
                             : static_cast<double>(unique_dests) /
                                   static_cast<double>(darknet_size);
  }
};

class MappedEventStore {
 public:
  /// Strict open: maps the file and verifies magic, header CRC, geometry
  /// and footer CRC (block payloads stay lazy — verify_blocks() checks
  /// them on demand). Throws std::runtime_error with context on any
  /// mismatch, like telescope::read_events_binary.
  explicit MappedEventStore(const std::string& path);
  ~MappedEventStore();

  MappedEventStore(MappedEventStore&& other) noexcept;
  MappedEventStore& operator=(MappedEventStore&& other) noexcept;
  MappedEventStore(const MappedEventStore&) = delete;
  MappedEventStore& operator=(const MappedEventStore&) = delete;

  std::uint64_t darknet_size() const { return darknet_size_; }
  std::size_t event_count() const { return static_cast<std::size_t>(event_count_); }
  std::int64_t first_day() const { return first_day_; }
  std::int64_t last_day() const { return last_day_; }
  std::uint64_t block_events() const { return block_events_; }
  std::size_t block_count() const { return blocks_.size(); }
  const std::vector<BlockMeta>& blocks() const { return blocks_; }
  std::uint64_t file_bytes() const { return size_; }
  /// False when the portable read-into-buffer fallback is serving reads.
  bool mapped() const { return mapped_; }

  BlockView block(std::size_t k) const;

  /// Global row range [begin, end) of events starting on `day`; empty
  /// range for days outside the dataset window. O(1).
  std::pair<std::uint64_t, std::uint64_t> day_range(std::int64_t day) const;

  /// CRC-checks every block payload; returns block_count() when clean,
  /// else the index of the first corrupt block.
  std::size_t verify_blocks() const;

  /// Gathers one event by global row index (bounds-checked).
  telescope::DarknetEvent event(std::uint64_t row) const;

  /// Full materialization — the ODE2 -> ODE1 conversion path. The result
  /// is byte-identical to the EventDataset the archive was written from.
  telescope::EventDataset to_dataset() const;

  /// Calls fn(const BlockView&) for blocks whose zone map intersects
  /// [day_lo, day_hi] x [src_lo, src_hi]; pass the full ranges to visit
  /// everything.
  template <typename Fn>
  void for_each_block(std::int64_t day_lo, std::int64_t day_hi,
                      std::uint32_t src_lo, std::uint32_t src_hi,
                      Fn&& fn) const {
    for (std::size_t k = 0; k < blocks_.size(); ++k) {
      const BlockMeta& meta = blocks_[k];
      if (meta.max_day < day_lo || meta.min_day > day_hi) continue;
      if (meta.max_src < src_lo || meta.min_src > src_hi) continue;
      fn(block(k));
    }
  }

  /// Calls fn(const EventRow&) for every event in row (= dataset) order.
  template <typename Fn>
  void for_each_event(Fn&& fn) const {
    for (std::size_t k = 0; k < blocks_.size(); ++k) {
      const BlockView view = block(k);
      for (std::size_t i = 0; i < view.rows(); ++i) fn(row_of(view, i));
    }
  }

  /// Calls fn(const EventRow&) for every event starting on `day`, using
  /// the day index to touch only that row range.
  template <typename Fn>
  void for_each_event_on_day(std::int64_t day, Fn&& fn) const {
    const auto [begin, end] = day_range(day);
    if (begin >= end) return;
    const std::uint64_t b = block_events_;
    for (std::uint64_t k = begin / b; k * b < end; ++k) {
      const BlockView view = block(static_cast<std::size_t>(k));
      const std::uint64_t lo = begin > k * b ? begin - k * b : 0;
      const std::uint64_t hi = std::min<std::uint64_t>(view.rows(), end - k * b);
      for (std::uint64_t i = lo; i < hi; ++i) {
        fn(row_of(view, static_cast<std::size_t>(i)));
      }
    }
  }

  /// Chunked parallel scan: blocks are split into contiguous ranges, one
  /// per thread; per_block(State&, const BlockView&) folds each block
  /// into a thread-local State, and merge(State&, State&&) combines the
  /// States in block order. Because the partition is a deterministic
  /// function of (block_count, n_threads) and the merge is ordered, the
  /// result is identical for every thread count whenever merge is
  /// associative — the same ordered-merge argument as the PR 2 pipeline.
  template <typename State, typename PerBlock, typename Merge>
  State parallel_scan(std::size_t n_threads, PerBlock per_block,
                      Merge merge) const {
    const std::size_t nb = blocks_.size();
    if (n_threads == 0) {
      n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    n_threads = std::min(n_threads, std::max<std::size_t>(nb, 1));
    if (n_threads <= 1) {
      State state{};
      for (std::size_t k = 0; k < nb; ++k) per_block(state, block(k));
      return state;
    }
    std::vector<State> states(n_threads);
    const std::size_t per = (nb + n_threads - 1) / n_threads;
    {
      std::vector<std::thread> threads;
      threads.reserve(n_threads);
      for (std::size_t t = 0; t < n_threads; ++t) {
        const std::size_t lo = std::min(nb, t * per);
        const std::size_t hi = std::min(nb, lo + per);
        threads.emplace_back([this, &states, &per_block, t, lo, hi] {
          for (std::size_t k = lo; k < hi; ++k) per_block(states[t], block(k));
        });
      }
      for (std::thread& th : threads) th.join();
    }
    State out = std::move(states[0]);
    for (std::size_t t = 1; t < n_threads; ++t) {
      merge(out, std::move(states[t]));
    }
    return out;
  }

 private:
  static EventRow row_of(const BlockView& view, std::size_t i) {
    EventRow row;
    row.key.src = net::Ipv4Address(view.src[i]);
    row.key.dst_port = view.dst_port[i];
    row.key.type = static_cast<pkt::TrafficType>(view.type[i]);
    row.start = net::SimTime::at(net::Duration::nanos(view.start_ns[i]));
    row.end = net::SimTime::at(net::Duration::nanos(view.end_ns[i]));
    row.packets = view.packets[i];
    row.unique_dests = view.unique_dests[i];
    return row;
  }

  void close() noexcept;

  const std::uint8_t* data_ = nullptr;
  std::uint64_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::uint64_t> fallback_;  // owns the bytes when !mapped_

  std::uint64_t darknet_size_ = 0;
  std::uint64_t event_count_ = 0;
  std::uint64_t block_events_ = kOde2DefaultBlockEvents;
  std::int64_t first_day_ = 0;
  std::int64_t last_day_ = -1;
  std::vector<std::uint64_t> day_start_;  // day_count + 1 boundaries
  std::vector<BlockMeta> blocks_;
};

}  // namespace orion::store
