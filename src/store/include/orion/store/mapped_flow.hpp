// MappedFlowStore — the zero-copy query engine over FDE1 flow archives.
//
// Opens an FDE1 file via mmap (read-into-buffer fallback when mapping is
// unavailable) and exposes the column blocks as typed spans. The footer's
// per-(router, day) segment index answers row_range() with one binary
// search, so an impact query touches exactly the rows of its cell — no
// FlowRecord is ever materialized on that path: FlowSourceIndex builds
// straight from the mapped src/dst_port/proto/packets spans
// (impact::FlowImpactAnalyzer), and the per-block src zone maps let
// source-targeted scans skip whole blocks. This is the flow-side sibling
// of MappedEventStore.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "orion/flowsim/flow_batch.hpp"
#include "orion/flowsim/flows.hpp"
#include "orion/store/fde1.hpp"
#include "orion/store/mapped.hpp"

namespace orion::store {

/// One row group of flows, viewed column-wise. `first_row` is the global
/// index of the block's row 0, so row_range() results translate directly.
struct FlowView {
  std::size_t first_row = 0;
  ColumnSpan<std::int64_t> ts_ns;
  ColumnSpan<std::uint64_t> packets;
  ColumnSpan<std::uint64_t> bytes;
  ColumnSpan<std::uint32_t> src;
  ColumnSpan<std::uint32_t> dst;
  ColumnSpan<std::uint16_t> src_port;
  ColumnSpan<std::uint16_t> dst_port;
  ColumnSpan<std::uint16_t> router;
  ColumnSpan<std::uint8_t> proto;

  std::size_t rows() const { return src.size(); }

  /// Gathers one row into a full FlowRecord (the only materializing
  /// accessor; scans should read the spans instead).
  flowsim::FlowRecord record(std::size_t i) const;
};

/// Footer metadata for one flow block: where it lives and its src zone
/// map (FDE1 blocks need no day zone map — the segment index already
/// bounds every (router, day) scan to an exact row range).
struct FlowBlockMeta {
  std::uint64_t offset = 0;  // file offset of the block's first byte
  std::uint32_t min_src = 0;
  std::uint32_t max_src = 0;
  std::uint32_t crc = 0;  // CRC-32 of the block's padded bytes
};

class MappedFlowStore {
 public:
  /// Strict open: maps the file and verifies magic, header CRC, geometry,
  /// footer CRC and segment-index sanity (block payloads stay lazy —
  /// verify_blocks() checks them on demand). Throws std::runtime_error
  /// with context on any mismatch.
  explicit MappedFlowStore(const std::string& path);
  ~MappedFlowStore();

  MappedFlowStore(MappedFlowStore&& other) noexcept;
  MappedFlowStore& operator=(MappedFlowStore&& other) noexcept;
  MappedFlowStore(const MappedFlowStore&) = delete;
  MappedFlowStore& operator=(const MappedFlowStore&) = delete;

  std::uint32_t sampling_rate() const { return sampling_rate_; }
  std::size_t flow_count() const { return static_cast<std::size_t>(flow_count_); }
  std::int64_t start_day() const { return start_day_; }
  std::int64_t end_day() const { return end_day_; }
  std::uint64_t block_flows() const { return block_flows_; }
  std::size_t block_count() const { return blocks_.size(); }
  const std::vector<FlowBlockMeta>& blocks() const { return blocks_; }
  const std::vector<FlowSegment>& segments() const { return segments_; }
  std::uint64_t file_bytes() const { return size_; }
  /// False when the portable read-into-buffer fallback is serving reads.
  bool mapped() const { return mapped_; }

  FlowView block(std::size_t k) const;

  /// The (router, day) cell's metadata, or nullptr when the archive has
  /// no such segment. O(log segments).
  const FlowSegment* segment(std::size_t router, std::int64_t day) const;

  /// Global row range [begin, end) of the cell; empty for absent cells.
  std::pair<std::uint64_t, std::uint64_t> row_range(std::size_t router,
                                                    std::int64_t day) const;

  /// CRC-checks every block payload; returns block_count() when clean,
  /// else the index of the first corrupt block.
  std::size_t verify_blocks() const;

  /// Gathers one flow by global row index (bounds-checked).
  flowsim::FlowRecord record(std::uint64_t row) const;

  /// Full materialization of every row, archive order.
  flowsim::FlowBatch to_batch() const;

  /// Rebuilds an in-memory FlowDataset (sampled maps + totals) — the
  /// FDE1 -> flowsim bridge, byte-identical query() inputs to the dataset
  /// the archive was written from. Requires the paper's router topology
  /// (every segment router < flowsim::kRouterCount).
  flowsim::FlowDataset to_dataset() const;

  /// Calls fn(const FlowView&) for blocks whose src zone map intersects
  /// [src_lo, src_hi]; pass the full range to visit everything.
  template <typename Fn>
  void for_each_block(std::uint32_t src_lo, std::uint32_t src_hi,
                      Fn&& fn) const {
    for (std::size_t k = 0; k < blocks_.size(); ++k) {
      const FlowBlockMeta& meta = blocks_[k];
      if (meta.max_src < src_lo || meta.min_src > src_hi) continue;
      fn(block(k));
    }
  }

  /// Calls fn(const FlowView&, lo, hi) for each block slice covering the
  /// global row range [begin, end): lo/hi are row indices within the
  /// block. The zero-copy feed for per-segment consumers.
  template <typename Fn>
  void for_each_span(std::uint64_t begin, std::uint64_t end, Fn&& fn) const {
    if (begin >= end) return;
    const std::uint64_t b = block_flows_;
    for (std::uint64_t k = begin / b; k * b < end; ++k) {
      const FlowView view = block(static_cast<std::size_t>(k));
      const std::uint64_t lo = begin > k * b ? begin - k * b : 0;
      const std::uint64_t hi = std::min<std::uint64_t>(view.rows(), end - k * b);
      fn(view, static_cast<std::size_t>(lo), static_cast<std::size_t>(hi));
    }
  }

 private:
  void close() noexcept;

  const std::uint8_t* data_ = nullptr;
  std::uint64_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::uint64_t> fallback_;  // owns the bytes when !mapped_

  std::uint32_t sampling_rate_ = 0;
  std::uint64_t flow_count_ = 0;
  std::uint64_t block_flows_ = kFde1DefaultBlockFlows;
  std::int64_t start_day_ = 0;
  std::int64_t end_day_ = 0;
  std::vector<FlowSegment> segments_;  // sorted by (router, day)
  std::vector<FlowBlockMeta> blocks_;
};

}  // namespace orion::store
