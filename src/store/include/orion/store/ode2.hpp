// ODE2 — the columnar on-disk event format behind the zero-copy analysis
// engine (DESIGN.md §10).
//
// ODE1 (telescope/store.hpp) is row-oriented: every load deserializes the
// full archive into std::vector<DarknetEvent> field by field through an
// istream, and every per-day analysis then rescans all of it. ODE2 keeps
// the same logical content but lays events out as little-endian column
// blocks (row groups) so an analysis can mmap the archive and scan only
// the columns — and only the days — it needs:
//
//   file   := header | block* | footer
//   header := "ODE2" | crc32([8,40)) | darknet_size u64 | event_count u64
//             | block_events u64 | footer_offset u64          (40 bytes)
//   block  := start i64[m] | end i64[m] | packets u64[m] | dests u64[m]
//             | tool0..tool3 u64[m] | src u32[m] | port u16[m] | type u8[m]
//             | zero pad to 8                (m = rows in the block)
//   footer := first_day i64 | last_day i64 | day_count u64 | block_count u64
//             | day_start u64[day_count+1] | block meta[block_count]
//             | block_crc u32[block_count] | footer crc32
//   meta   := offset u64 | min_day i64 | max_day i64 | min_src u32
//             | max_src u32                                   (32 bytes)
//
// Alignment invariant: the header is 40 bytes and every block is padded to
// a multiple of 8, so each block (and therefore each 8-byte column, which
// comes first) starts 8-aligned — the mapped bytes can be exposed as
// typed spans directly. day_start relies on the EventDataset total order
// (start, key): start days are non-decreasing, so each day is one
// contiguous row range. Block min/max (day, src) are the zone maps that
// let scans skip whole blocks without touching their data.
//
// Integrity follows ODE1's salvage philosophy: the header and footer carry
// CRC-32s, each block's CRC lives in the footer, and the salvage reader
// recovers every complete valid block preceding the first error — falling
// back to header-derived geometry when truncation took the footer itself.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "orion/netbase/io.hpp"
#include "orion/telescope/capture.hpp"

namespace orion::store {

/// Rows per full block. Small enough that salvage granularity stays fine
/// and zone maps stay selective; large enough that column runs amortize.
constexpr std::uint64_t kOde2DefaultBlockEvents = 1024;

constexpr std::uint64_t kOde2HeaderBytes = 40;
constexpr std::uint64_t kOde2BlockMetaBytes = 32;

/// Bytes of one block holding `rows` events (including the trailing pad).
constexpr std::uint64_t ode2_block_bytes(std::uint64_t rows) {
  const std::uint64_t raw = rows * (8 * 8 + 4 + 2 + 1);
  return (raw + 7) & ~std::uint64_t{7};
}

/// Writes `dataset` in ODE2 form; returns total bytes written. Throws
/// std::runtime_error on stream failure and std::invalid_argument if the
/// dataset's events are not in non-decreasing start order (EventDataset
/// guarantees the order; a hand-built vector might not).
std::uint64_t write_events_ode2(
    const telescope::EventDataset& dataset, std::ostream& out,
    std::uint64_t block_events = kOde2DefaultBlockEvents);

/// Failpoint-instrumented variant: writes through the io::File seam, so
/// every write is EINTR-retried, short-write-completed, and visible to
/// the FaultFs crash matrix. Errors surface as net::io::IoError. This is
/// the path archive publication uses.
std::uint64_t write_events_ode2(
    const telescope::EventDataset& dataset, net::io::File& out,
    std::uint64_t block_events = kOde2DefaultBlockEvents);

/// Convenience: write straight to a file path (truncating, io::File
/// seam, NOT atomic — use ArchiveDir publication for crash safety).
std::uint64_t write_events_ode2_file(
    const telescope::EventDataset& dataset, const std::string& path,
    std::uint64_t block_events = kOde2DefaultBlockEvents);

/// Salvage-mode read mirroring telescope::read_events_binary_salvage:
/// recovers every complete valid block preceding the first error instead
/// of throwing the whole archive away.
struct Ode2SalvageResult {
  telescope::EventDataset dataset{{}, 0};
  std::uint64_t declared_count = 0;   // header's event count (0: bad header)
  std::uint64_t recovered_count = 0;  // rows recovered into `dataset`
  bool footer_intact = false;         // footer parsed and CRC-verified
  bool complete = false;              // whole file verified clean
  std::string error;                  // first error when !complete
};

Ode2SalvageResult read_events_ode2_salvage(const std::string& path);

/// Sniffs the 4-byte magic and loads either format into an EventDataset —
/// the compatibility path for every ODE1 call site that now may be handed
/// an ODE2 archive. Throws std::runtime_error on open failure or a
/// corrupt file of either format.
telescope::EventDataset load_events_auto(const std::string& path);

/// The magic the sniffing loader saw ("ODE1", "ODE2", or "?" for neither).
std::string sniff_event_format(const std::string& path);

}  // namespace orion::store
