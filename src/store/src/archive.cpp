#include "orion/store/archive.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>

#include "layout.hpp"
#include "orion/netbase/crc32.hpp"
#include "orion/store/mapped.hpp"
#include "orion/store/mapped_flow.hpp"

namespace orion::store {

namespace {

namespace fs = std::filesystem;

constexpr char kManifestMagic[4] = {'O', 'M', 'F', '1'};
constexpr const char* kManifestName = "MANIFEST";

std::string gen_file_name(const std::string& name, std::uint64_t gen) {
  return name + ".g" + std::to_string(gen);
}

std::string tmp_file_name(const std::string& name, std::uint64_t gen) {
  return name + ".tmp." + std::to_string(gen);
}

/// True when `file` looks like "<base>.g<digits>"; extracts the base.
bool split_gen_file(const std::string& file, std::string& base) {
  const std::size_t dot = file.rfind(".g");
  if (dot == std::string::npos || dot + 2 >= file.size()) return false;
  for (std::size_t i = dot + 2; i < file.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(file[i]))) return false;
  }
  base = file.substr(0, dot);
  return !base.empty();
}

void validate_name(const std::string& name) {
  std::string base;
  if (name.empty() || name.find('/') != std::string::npos ||
      name.find(".tmp.") != std::string::npos || name == kManifestName ||
      split_gen_file(name, base)) {
    throw ArchiveError("bad artifact name '" + name + "'");
  }
}

void append_string(std::vector<std::uint8_t>& out, const std::string& s) {
  detail::append<std::uint64_t>(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked manifest payload cursor; returns false instead of
/// reading past the end (corruption is a report, not UB).
struct PayloadReader {
  const std::uint8_t* p;
  std::size_t left;

  bool u64(std::uint64_t& v) {
    if (left < 8) return false;
    v = detail::get_u64(p);
    p += 8;
    left -= 8;
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (left < 4) return false;
    v = detail::get_u32(p);
    p += 4;
    left -= 4;
    return true;
  }
  bool str(std::string& s) {
    std::uint64_t n = 0;
    if (!u64(n) || n > left || n > (std::uint64_t{1} << 16)) return false;
    s.assign(reinterpret_cast<const char*>(p), static_cast<std::size_t>(n));
    p += n;
    left -= static_cast<std::size_t>(n);
    return true;
  }
};

bool parse_manifest(const std::vector<std::uint8_t>& bytes,
                    std::uint64_t& generation,
                    std::vector<ManifestEntry>& entries, std::string& error) {
  if (bytes.size() < 8) {
    error = "manifest truncated";
    return false;
  }
  if (std::memcmp(bytes.data(), kManifestMagic, 4) != 0) {
    error = "manifest bad magic";
    return false;
  }
  const std::uint32_t stored = detail::get_u32(bytes.data() + 4);
  if (net::Crc32::of({bytes.data() + 8, bytes.size() - 8}) != stored) {
    error = "manifest CRC mismatch";
    return false;
  }
  PayloadReader r{bytes.data() + 8, bytes.size() - 8};
  std::uint64_t count = 0;
  if (!r.u64(generation) || !r.u64(count) || count > (std::uint64_t{1} << 20)) {
    error = "manifest corrupt header";
    return false;
  }
  entries.clear();
  entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    ManifestEntry e;
    if (!r.str(e.name) || !r.str(e.file) || !r.u64(e.generation) ||
        !r.u64(e.bytes) || !r.u32(e.crc)) {
      error = "manifest corrupt entry " + std::to_string(i);
      return false;
    }
    entries.push_back(std::move(e));
  }
  if (r.left != 0) {
    error = "manifest trailing bytes";
    return false;
  }
  return true;
}

}  // namespace

ArchiveDir::ArchiveDir(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) throw ArchiveError("cannot create directory " + dir_);
  load_manifest(/*allow_corrupt=*/false);
}

ArchiveDir::ArchiveDir(std::string dir, Tolerant) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) throw ArchiveError("cannot create directory " + dir_);
  load_manifest(/*allow_corrupt=*/true);
}

void ArchiveDir::load_manifest(bool allow_corrupt) {
  generation_ = 0;
  entries_.clear();
  const std::string path = dir_ + "/" + kManifestName;
  if (!net::io::path_exists(path)) return;
  std::string error;
  const std::vector<std::uint8_t> bytes = net::io::read_file(path);
  if (!parse_manifest(bytes, generation_, entries_, error)) {
    generation_ = 0;
    entries_.clear();
    if (!allow_corrupt) throw ArchiveError(error + " in " + dir_);
  }
}

std::optional<ManifestEntry> ArchiveDir::find(const std::string& name) const {
  for (const ManifestEntry& e : entries_) {
    if (e.name == name) return e;
  }
  return std::nullopt;
}

std::string ArchiveDir::path_of(const ManifestEntry& entry) const {
  return dir_ + "/" + entry.file;
}

std::optional<std::string> ArchiveDir::resolve(const std::string& name) const {
  const auto entry = find(name);
  if (!entry) return std::nullopt;
  return path_of(*entry);
}

void ArchiveDir::write_manifest(const std::vector<ManifestEntry>& entries,
                                std::uint64_t generation) {
  std::vector<std::uint8_t> payload;
  detail::append<std::uint64_t>(payload, generation);
  detail::append<std::uint64_t>(payload, entries.size());
  for (const ManifestEntry& e : entries) {
    append_string(payload, e.name);
    append_string(payload, e.file);
    detail::append<std::uint64_t>(payload, e.generation);
    detail::append<std::uint64_t>(payload, e.bytes);
    detail::append<std::uint32_t>(payload, e.crc);
  }
  std::vector<std::uint8_t> frame;
  frame.reserve(8 + payload.size());
  for (const char c : kManifestMagic) {
    frame.push_back(static_cast<std::uint8_t>(c));
  }
  const std::uint32_t crc = net::Crc32::of(payload);
  detail::append<std::uint32_t>(frame, crc);
  frame.insert(frame.end(), payload.begin(), payload.end());

  const std::string tmp = dir_ + "/" + tmp_file_name(kManifestName, generation);
  net::io::File f = net::io::File::create(tmp);
  f.write(frame);
  f.sync();
  f.close();
  net::io::rename_file(tmp, dir_ + "/" + kManifestName);
}

ManifestEntry ArchiveDir::publish(const std::string& name,
                                  const Writer& writer) {
  return publish_many({{name, writer}}).front();
}

std::vector<ManifestEntry> ArchiveDir::publish_many(
    const std::vector<std::pair<std::string, Writer>>& items) {
  if (items.empty()) throw ArchiveError("publish of empty batch");
  for (std::size_t i = 0; i < items.size(); ++i) {
    validate_name(items[i].first);
    for (std::size_t j = i + 1; j < items.size(); ++j) {
      if (items[i].first == items[j].first) {
        throw ArchiveError("duplicate artifact name '" + items[i].first +
                           "' in batch");
      }
    }
  }

  // 1+2: write and fsync every payload under its temporary name. A
  // failure or crash anywhere in here leaves only tmp files; the live
  // manifest — and therefore every reader — still sees the old state.
  const std::uint64_t gen = generation_ + 1;
  std::vector<ManifestEntry> fresh;
  fresh.reserve(items.size());
  for (const auto& [name, writer] : items) {
    const std::string tmp = dir_ + "/" + tmp_file_name(name, gen);
    net::io::File f = net::io::File::create(tmp);
    writer(f);
    f.sync();
    ManifestEntry e;
    e.name = name;
    e.file = gen_file_name(name, gen);
    e.generation = gen;
    e.bytes = f.bytes_written();
    e.crc = f.write_crc();
    f.close();
    fresh.push_back(std::move(e));
  }

  // 3: move the complete payloads to their generation names. Still not
  // visible — nothing resolves a generation file except the manifest.
  for (const ManifestEntry& e : fresh) {
    net::io::rename_file(dir_ + "/" + tmp_file_name(e.name, gen),
                         path_of(e));
  }
  net::io::fsync_dir(dir_);

  // 4+5: the commit point. The manifest rename is the single atomic
  // instant at which all the batch's artifacts become live together.
  std::vector<ManifestEntry> merged = entries_;
  std::vector<ManifestEntry> superseded;
  for (const ManifestEntry& e : fresh) {
    const auto it = std::find_if(
        merged.begin(), merged.end(),
        [&](const ManifestEntry& old) { return old.name == e.name; });
    if (it != merged.end()) {
      superseded.push_back(*it);
      *it = e;
    } else {
      merged.push_back(e);
    }
  }
  write_manifest(merged, gen);
  net::io::fsync_dir(dir_);
  entries_ = std::move(merged);
  generation_ = gen;

  // GC superseded generations — already invisible, so removal failures
  // are deferred to recover(), not publication failures. (A Crash
  // failpoint still escapes: a real crash can die here too.)
  for (const ManifestEntry& old : superseded) {
    try {
      net::io::remove_file(path_of(old));
    } catch (const net::io::IoError&) {
    }
  }
  return fresh;
}

RecoverReport ArchiveDir::recover() {
  RecoverReport report;
  const std::string manifest_path = dir_ + "/" + kManifestName;
  report.manifest_present = net::io::path_exists(manifest_path);
  if (report.manifest_present) {
    std::string error;
    std::vector<std::uint8_t> bytes;
    try {
      bytes = net::io::read_file(manifest_path);
    } catch (const net::io::IoError& err) {
      error = err.what();
    }
    std::uint64_t gen = 0;
    std::vector<ManifestEntry> entries;
    if (error.empty() && parse_manifest(bytes, gen, entries, error)) {
      report.manifest_valid = true;
      generation_ = gen;
      entries_ = std::move(entries);
    } else {
      // A corrupt manifest cannot be trusted to name its files; put it
      // aside for forensics and serve the archive as empty.
      report.detail = error;
      ++report.quarantined;
      try {
        net::io::rename_file(manifest_path, manifest_path + ".quarantine");
      } catch (const net::io::IoError&) {
      }
      generation_ = 0;
      entries_.clear();
    }
  } else {
    generation_ = 0;
    entries_.clear();
  }
  report.live_entries = entries_.size();

  // Sweep: anything with a ".tmp." infix is an abandoned write; any
  // generation file the manifest does not reference is an orphan from a
  // crash between data rename and manifest commit (or a superseded
  // generation whose GC was interrupted). Unknown files are left alone.
  std::error_code ec;
  std::vector<std::string> names;
  for (const auto& it : fs::directory_iterator(dir_, ec)) {
    if (!it.is_regular_file()) continue;
    names.push_back(it.path().filename().string());
  }
  for (const std::string& file : names) {
    if (file == kManifestName) continue;
    if (file.find(".tmp.") != std::string::npos) {
      try {
        net::io::remove_file(dir_ + "/" + file);
        ++report.removed_temporaries;
      } catch (const net::io::IoError&) {
      }
      continue;
    }
    std::string base;
    if (!split_gen_file(file, base)) continue;
    const bool referenced =
        std::any_of(entries_.begin(), entries_.end(),
                    [&](const ManifestEntry& e) { return e.file == file; });
    if (!referenced) {
      if (report.manifest_present && !report.manifest_valid) {
        // The manifest that named these files was corrupt — they may be
        // the only surviving copies of good data, so set them aside with
        // it instead of deleting.
        try {
          net::io::rename_file(dir_ + "/" + file,
                               dir_ + "/" + file + ".quarantine");
          ++report.quarantined;
        } catch (const net::io::IoError&) {
        }
      } else {
        try {
          net::io::remove_file(dir_ + "/" + file);
          ++report.removed_orphans;
        } catch (const net::io::IoError&) {
        }
      }
    }
  }

  // Size check of every live entry (cheap; CRC verification is opt-in
  // via verify()). Damage here is disk corruption, not crash fallout.
  for (const ManifestEntry& e : entries_) {
    std::error_code size_ec;
    const auto size = fs::file_size(path_of(e), size_ec);
    if (size_ec || size != e.bytes) {
      ++report.damaged_entries;
      if (report.detail.empty()) {
        report.detail = "entry '" + e.name + "' missing or wrong size";
      }
    }
  }
  return report;
}

bool ArchiveDir::verify(const std::string& name) const {
  const auto entry = find(name);
  if (!entry) return false;
  std::vector<std::uint8_t> bytes;
  try {
    bytes = net::io::read_file(path_of(*entry));
  } catch (const net::io::IoError&) {
    return false;
  }
  return bytes.size() == entry->bytes && net::Crc32::of(bytes) == entry->crc;
}

RecoverReport recover_archive(const std::string& dir) {
  // Bypass the constructor's strict manifest load: recovery must open
  // archives whose manifest a dying disk mangled.
  ArchiveDir archive(dir, ArchiveDir::Tolerant{});
  return archive.recover();
}

ManifestEntry publish_events_ode2(ArchiveDir& archive, const std::string& name,
                                  const telescope::EventDataset& dataset,
                                  std::uint64_t block_events) {
  return archive.publish(name, events_ode2_writer(dataset, block_events));
}

ManifestEntry publish_flows_fde1(ArchiveDir& archive, const std::string& name,
                                 const flowsim::FlowDataset& flows,
                                 std::uint64_t block_flows) {
  return archive.publish(name, flows_fde1_writer(flows, block_flows));
}

ArchiveDir::Writer events_ode2_writer(const telescope::EventDataset& dataset,
                                      std::uint64_t block_events) {
  return [&dataset, block_events](net::io::File& f) {
    write_events_ode2(dataset, f, block_events);
  };
}

ArchiveDir::Writer flows_fde1_writer(const flowsim::FlowDataset& flows,
                                     std::uint64_t block_flows) {
  return [&flows, block_flows](net::io::File& f) {
    write_flows_fde1(flows, f, block_flows);
  };
}

MappedEventStore open_mapped_events(const ArchiveDir& archive,
                                    const std::string& name) {
  const auto entry = archive.find(name);
  if (!entry) {
    throw ArchiveError("no live artifact '" + name + "' in " + archive.dir());
  }
  MappedEventStore store(archive.path_of(*entry));
  if (store.file_bytes() != entry->bytes) {
    throw ArchiveError("artifact '" + name + "' size differs from manifest");
  }
  return store;
}

MappedFlowStore open_mapped_flows(const ArchiveDir& archive,
                                  const std::string& name) {
  const auto entry = archive.find(name);
  if (!entry) {
    throw ArchiveError("no live artifact '" + name + "' in " + archive.dir());
  }
  MappedFlowStore store(archive.path_of(*entry));
  if (store.file_bytes() != entry->bytes) {
    throw ArchiveError("artifact '" + name + "' size differs from manifest");
  }
  return store;
}

}  // namespace orion::store
