#include "orion/store/fde1.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "flow_layout.hpp"
#include "orion/flowsim/netflow_bridge.hpp"
#include "orion/flowsim/routing.hpp"
#include "orion/netbase/crc32.hpp"

namespace orion::store {

namespace {

constexpr char kMagic[4] = {'F', 'D', 'E', '1'};

std::uint64_t total_block_bytes(std::uint64_t n, std::uint64_t b) {
  if (n == 0) return 0;
  const std::uint64_t full = n / b;
  const std::uint64_t rest = n % b;
  return full * fde1_block_bytes(b) + (rest ? fde1_block_bytes(rest) : 0);
}

/// The global archive order every row must respect: segments strictly
/// increase in (router, day), rows within a segment keep the
/// (src, dst_port, traffic type) order flow_batch_of emits. This is both
/// the write-side contract and the structure footerless salvage verifies.
struct RowOrderKey {
  std::uint16_t router = 0;
  std::int64_t day = 0;
  std::uint32_t src = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t type = 0;

  friend auto operator<=>(const RowOrderKey&, const RowOrderKey&) = default;
};

RowOrderKey key_of(const flowsim::FlowRecord& r) {
  return RowOrderKey{r.router, detail::flow_day_of(r.ts_ns), r.src.value(),
                     r.dst_port,
                     static_cast<std::uint8_t>(flowsim::traffic_type_of(r.proto))};
}

void validate_segments(std::int64_t start_day, std::int64_t end_day,
                       const std::vector<Fde1Segment>& segments,
                       std::uint64_t& flow_count) {
  if (start_day > end_day) {
    throw std::invalid_argument("fde1 store: start_day > end_day");
  }
  if (segments.size() > detail::kMaxSegmentCount) {
    throw std::invalid_argument("fde1 store: too many segments");
  }
  flow_count = 0;
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const Fde1Segment& seg = segments[s];
    if (seg.day < start_day || seg.day >= end_day) {
      throw std::invalid_argument("fde1 store: segment day outside window");
    }
    if (s > 0) {
      const Fde1Segment& prev = segments[s - 1];
      if (std::tie(prev.router, prev.day) >= std::tie(seg.router, seg.day)) {
        throw std::invalid_argument(
            "fde1 store: segments not in (router, day) order");
      }
    }
    const flowsim::FlowBatch& rows = seg.rows;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows.router(i) != seg.router ||
          detail::flow_day_of(rows.ts_ns(i)) != seg.day) {
        throw std::invalid_argument(
            "fde1 store: row outside its segment's (router, day)");
      }
      if (i > 0) {
        const auto prev = std::make_tuple(
            rows.src(i - 1).value(), rows.dst_port(i - 1),
            static_cast<std::uint8_t>(rows.traffic_type(i - 1)));
        const auto cur = std::make_tuple(
            rows.src(i).value(), rows.dst_port(i),
            static_cast<std::uint8_t>(rows.traffic_type(i)));
        if (cur < prev) {
          throw std::invalid_argument(
              "fde1 store: rows out of (src, dst_port, type) order");
        }
      }
    }
    flow_count += rows.size();
    if (flow_count > detail::kMaxFlowCount) {
      throw std::invalid_argument("fde1 store: too many flows");
    }
  }
}

/// Zone map + location of one block, accumulated while writing.
struct FlowBlockInfo {
  std::uint64_t offset = 0;
  std::uint32_t min_src = 0;
  std::uint32_t max_src = 0;
  std::uint32_t crc = 0;
};

}  // namespace

/// Shared writer core over a `sink(ptr, bytes)` callable, mirroring
/// write_events_ode2_impl: header and each block assembled in memory and
/// emitted as one write each, footer CRC-sealed last.
template <typename Sink>
std::uint64_t write_flows_fde1_impl(std::uint32_t sampling_rate,
                                    std::int64_t start_day,
                                    std::int64_t end_day,
                                    const std::vector<Fde1Segment>& segments,
                                    Sink&& sink, std::uint64_t block_flows) {
  if (block_flows == 0 || block_flows > detail::kMaxBlockFlows) {
    throw std::invalid_argument("fde1 store: bad block size");
  }
  std::uint64_t n = 0;
  validate_segments(start_day, end_day, segments, n);

  const std::uint64_t b = block_flows;
  const std::uint64_t block_count = n == 0 ? 0 : (n + b - 1) / b;
  const std::uint64_t footer_offset = kFde1HeaderBytes + total_block_bytes(n, b);

  std::vector<std::uint8_t> header;
  header.reserve(kFde1HeaderBytes);
  header.insert(header.end(), kMagic, kMagic + 4);
  std::vector<std::uint8_t> fields;
  fields.reserve(32);
  detail::append<std::uint64_t>(fields, sampling_rate);
  detail::append<std::uint64_t>(fields, n);
  detail::append<std::uint64_t>(fields, b);
  detail::append<std::uint64_t>(fields, footer_offset);
  detail::append<std::uint32_t>(header, net::Crc32::of({fields.data(), 32}));
  header.insert(header.end(), fields.begin(), fields.end());
  sink(header.data(), header.size());

  // Column blocks over the concatenated segment rows. A small staging
  // batch regroups each block's rows (they can straddle segments) so the
  // column runs serialize contiguously.
  std::vector<FlowBlockInfo> infos;
  infos.reserve(static_cast<std::size_t>(block_count));
  flowsim::FlowBatch staging(static_cast<std::size_t>(std::min(b, n)));
  std::vector<std::uint8_t> buf;
  std::size_t seg = 0;       // segment the next row comes from
  std::size_t seg_row = 0;   // row within that segment
  std::uint64_t offset = kFde1HeaderBytes;
  for (std::uint64_t k = 0; k < block_count; ++k) {
    const std::uint64_t rows = std::min(b, n - k * b);
    staging.clear();
    while (staging.size() < rows) {
      while (seg_row >= segments[seg].rows.size()) {
        ++seg;
        seg_row = 0;
      }
      staging.append_record(segments[seg].rows, seg_row++);
    }

    buf.clear();
    buf.reserve(static_cast<std::size_t>(fde1_block_bytes(rows)));
    const auto m = static_cast<std::size_t>(rows);
    for (std::size_t i = 0; i < m; ++i) {
      detail::append<std::int64_t>(buf, staging.ts_ns_col()[i]);
    }
    for (std::size_t i = 0; i < m; ++i) {
      detail::append<std::uint64_t>(buf, staging.packets_col()[i]);
    }
    for (std::size_t i = 0; i < m; ++i) {
      detail::append<std::uint64_t>(buf, staging.bytes_col()[i]);
    }
    for (std::size_t i = 0; i < m; ++i) {
      detail::append<std::uint32_t>(buf, staging.src_col()[i]);
    }
    for (std::size_t i = 0; i < m; ++i) {
      detail::append<std::uint32_t>(buf, staging.dst_col()[i]);
    }
    for (std::size_t i = 0; i < m; ++i) {
      detail::append<std::uint16_t>(buf, staging.src_port_col()[i]);
    }
    for (std::size_t i = 0; i < m; ++i) {
      detail::append<std::uint16_t>(buf, staging.dst_port_col()[i]);
    }
    for (std::size_t i = 0; i < m; ++i) {
      detail::append<std::uint16_t>(buf, staging.router_col()[i]);
    }
    for (std::size_t i = 0; i < m; ++i) {
      detail::append<std::uint8_t>(buf, staging.proto_col()[i]);
    }
    buf.resize(static_cast<std::size_t>(fde1_block_bytes(rows)), 0);  // pad

    FlowBlockInfo info;
    info.offset = offset;
    info.min_src = info.max_src = staging.src_col()[0];
    for (std::size_t i = 1; i < m; ++i) {
      info.min_src = std::min(info.min_src, staging.src_col()[i]);
      info.max_src = std::max(info.max_src, staging.src_col()[i]);
    }
    info.crc = net::Crc32::of({buf.data(), buf.size()});
    infos.push_back(info);
    sink(buf.data(), buf.size());
    offset += buf.size();
  }

  // Footer: window + segment index + zone maps + block CRCs, CRC-sealed.
  std::vector<std::uint8_t> footer;
  detail::append<std::int64_t>(footer, start_day);
  detail::append<std::int64_t>(footer, end_day);
  detail::append<std::uint64_t>(footer, segments.size());
  detail::append<std::uint64_t>(footer, block_count);
  std::uint64_t row_begin = 0;
  for (const Fde1Segment& s : segments) {
    detail::append<std::uint64_t>(footer, s.router);
    detail::append<std::int64_t>(footer, s.day);
    detail::append<std::uint64_t>(footer, row_begin);
    detail::append<std::uint64_t>(footer, s.total_packets);
    detail::append<std::uint64_t>(footer, s.user_packets);
    detail::append<std::uint64_t>(footer, s.scanner_packets);
    row_begin += s.rows.size();
  }
  for (const FlowBlockInfo& info : infos) {
    detail::append<std::uint64_t>(footer, info.offset);
    detail::append<std::uint32_t>(footer, info.min_src);
    detail::append<std::uint32_t>(footer, info.max_src);
  }
  for (const FlowBlockInfo& info : infos) {
    detail::append<std::uint32_t>(footer, info.crc);
  }
  detail::append<std::uint32_t>(footer,
                                net::Crc32::of({footer.data(), footer.size()}));
  sink(footer.data(), footer.size());
  return footer_offset + footer.size();
}

std::uint64_t write_flows_fde1(std::uint32_t sampling_rate,
                               std::int64_t start_day, std::int64_t end_day,
                               const std::vector<Fde1Segment>& segments,
                               std::ostream& out, std::uint64_t block_flows) {
  const std::uint64_t bytes = write_flows_fde1_impl(
      sampling_rate, start_day, end_day, segments,
      [&out](const std::uint8_t* p, std::size_t m) {
        out.write(reinterpret_cast<const char*>(p),
                  static_cast<std::streamsize>(m));
        if (!out) {
          throw std::runtime_error(
              "fde1 store: stream write failure (bad/fail state)");
        }
      },
      block_flows);
  out.flush();
  if (!out) {
    throw std::runtime_error("fde1 store: stream flush failure");
  }
  return bytes;
}

std::uint64_t write_flows_fde1(std::uint32_t sampling_rate,
                               std::int64_t start_day, std::int64_t end_day,
                               const std::vector<Fde1Segment>& segments,
                               net::io::File& out, std::uint64_t block_flows) {
  return write_flows_fde1_impl(
      sampling_rate, start_day, end_day, segments,
      [&out](const std::uint8_t* p, std::size_t m) { out.write(p, m); },
      block_flows);
}

namespace {

/// One segment per (router, day) cell of the simulated window, rows from
/// the same flow_batch_of feed the in-memory index builds from.
std::vector<Fde1Segment> segments_of(const flowsim::FlowDataset& flows) {
  std::vector<Fde1Segment> segments;
  segments.reserve(flowsim::kRouterCount *
                   static_cast<std::size_t>(flows.end_day() - flows.start_day()));
  for (std::size_t router = 0; router < flowsim::kRouterCount; ++router) {
    for (std::int64_t day = flows.start_day(); day < flows.end_day(); ++day) {
      const flowsim::RouterDay& rd = flows.at(router, day);
      Fde1Segment seg;
      seg.router = static_cast<std::uint16_t>(router);
      seg.day = day;
      seg.total_packets = rd.total_packets;
      seg.user_packets = rd.user_packets;
      seg.scanner_packets = rd.scanner_packets;
      seg.rows =
          flowsim::flow_batch_of(rd, static_cast<std::uint16_t>(router), day);
      segments.push_back(std::move(seg));
    }
  }
  return segments;
}

}  // namespace

std::uint64_t write_flows_fde1(const flowsim::FlowDataset& flows,
                               std::ostream& out, std::uint64_t block_flows) {
  return write_flows_fde1(flows.sampling_rate(), flows.start_day(),
                          flows.end_day(), segments_of(flows), out,
                          block_flows);
}

std::uint64_t write_flows_fde1(const flowsim::FlowDataset& flows,
                               net::io::File& out, std::uint64_t block_flows) {
  return write_flows_fde1(flows.sampling_rate(), flows.start_day(),
                          flows.end_day(), segments_of(flows), out,
                          block_flows);
}

std::uint64_t write_flows_fde1_file(const flowsim::FlowDataset& flows,
                                    const std::string& path,
                                    std::uint64_t block_flows) {
  net::io::File out = net::io::File::create(path);
  const std::uint64_t bytes = write_flows_fde1(flows, out, block_flows);
  out.sync();
  out.close();
  return bytes;
}

std::uint64_t write_flows_fde1_file(std::uint32_t sampling_rate,
                                    std::int64_t start_day,
                                    std::int64_t end_day,
                                    const std::vector<Fde1Segment>& segments,
                                    const std::string& path,
                                    std::uint64_t block_flows) {
  net::io::File out = net::io::File::create(path);
  const std::uint64_t bytes = write_flows_fde1(
      sampling_rate, start_day, end_day, segments, out, block_flows);
  out.sync();
  out.close();
  return bytes;
}

namespace {

/// Parsed, CRC-verified header fields (salvage-side; returns false with
/// `error` set instead of throwing).
struct FlowHeader {
  std::uint64_t sampling_rate = 0;
  std::uint64_t flow_count = 0;
  std::uint64_t block_flows = 0;
  std::uint64_t footer_offset = 0;
};

bool parse_flow_header(const std::vector<std::uint8_t>& bytes, FlowHeader& h,
                       std::string& error) {
  if (bytes.size() < kFde1HeaderBytes) {
    error = "fde1 store: truncated header";
    return false;
  }
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    error = "fde1 store: bad magic (not an FDE1 file)";
    return false;
  }
  const std::uint32_t stored_crc = detail::get_u32(bytes.data() + 4);
  if (net::Crc32::of({bytes.data() + 8, 32}) != stored_crc) {
    error = "fde1 store: header CRC mismatch";
    return false;
  }
  h.sampling_rate = detail::get_u64(bytes.data() + 8);
  h.flow_count = detail::get_u64(bytes.data() + 16);
  h.block_flows = detail::get_u64(bytes.data() + 24);
  h.footer_offset = detail::get_u64(bytes.data() + 32);
  if (h.flow_count > detail::kMaxFlowCount) {
    error = "fde1 store: absurd flow count";
    return false;
  }
  if (h.block_flows == 0 || h.block_flows > detail::kMaxBlockFlows) {
    error = "fde1 store: absurd block size";
    return false;
  }
  if (h.footer_offset !=
      kFde1HeaderBytes + total_block_bytes(h.flow_count, h.block_flows)) {
    error = "fde1 store: header geometry mismatch";
    return false;
  }
  return true;
}

}  // namespace

Fde1SalvageResult read_flows_fde1_salvage(const std::string& path) {
  Fde1SalvageResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    result.error = "fde1 store: cannot open " + path;
    return result;
  }
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};

  FlowHeader h;
  if (!parse_flow_header(bytes, h, result.error)) {
    return result;
  }
  result.sampling_rate = static_cast<std::uint32_t>(h.sampling_rate);
  result.declared_count = h.flow_count;
  const std::uint64_t n = h.flow_count;
  const std::uint64_t b = h.block_flows;
  const std::uint64_t block_count = n == 0 ? 0 : (n + b - 1) / b;

  // Try the footer; its CRC decides whether per-block CRCs are usable and
  // whether the segment index (row ranges + totals) can be trusted.
  std::vector<std::uint32_t> block_crcs;
  if (h.footer_offset + 32 <= bytes.size()) {
    const std::uint8_t* f = bytes.data() + h.footer_offset;
    const std::uint64_t segment_count = detail::get_u64(f + 16);
    const std::uint64_t footer_blocks = detail::get_u64(f + 24);
    const std::uint64_t footer_bytes =
        32 + kFde1SegmentBytes * segment_count +
        (kFde1BlockMetaBytes + 4) * footer_blocks + 4;
    if (footer_blocks == block_count &&
        segment_count <= detail::kMaxSegmentCount &&
        h.footer_offset + footer_bytes == bytes.size()) {
      const std::uint32_t stored =
          detail::get_u32(bytes.data() + bytes.size() - 4);
      if (net::Crc32::of({f, static_cast<std::size_t>(footer_bytes - 4)}) ==
          stored) {
        result.footer_intact = true;
        result.start_day = detail::get_i64(f);
        result.end_day = detail::get_i64(f + 8);
        result.segments.resize(static_cast<std::size_t>(segment_count));
        const std::uint8_t* cursor = f + 32;
        for (std::uint64_t s = 0; s < segment_count;
             ++s, cursor += kFde1SegmentBytes) {
          FlowSegment& seg = result.segments[static_cast<std::size_t>(s)];
          seg.router = static_cast<std::size_t>(detail::get_u64(cursor));
          seg.day = detail::get_i64(cursor + 8);
          seg.row_begin = detail::get_u64(cursor + 16);
          seg.row_end = s + 1 < segment_count
                            ? detail::get_u64(cursor + kFde1SegmentBytes + 16)
                            : n;
          seg.total_packets = detail::get_u64(cursor + 24);
          seg.user_packets = detail::get_u64(cursor + 32);
          seg.scanner_packets = detail::get_u64(cursor + 40);
        }
        cursor += kFde1BlockMetaBytes * block_count;
        for (std::uint64_t k = 0; k < block_count; ++k, cursor += 4) {
          block_crcs.push_back(detail::get_u32(cursor));
        }
      }
    }
  }

  // Recover the prefix of complete, valid blocks (CRC-checked when the
  // footer survived; order-validated against the global archive order
  // when it did not — flow fields are total, so order is the structure).
  result.complete = result.footer_intact;
  RowOrderKey last{};
  bool has_last = false;
  std::uint64_t offset = kFde1HeaderBytes;
  for (std::uint64_t k = 0; k < block_count; ++k) {
    const std::uint64_t rows = std::min(b, n - k * b);
    const std::uint64_t block_bytes = fde1_block_bytes(rows);
    if (offset + block_bytes > bytes.size()) {
      result.complete = false;
      result.error = "fde1 store: truncated block " + std::to_string(k);
      break;
    }
    const std::uint8_t* base = bytes.data() + offset;
    if (result.footer_intact) {
      if (net::Crc32::of({base, static_cast<std::size_t>(block_bytes)}) !=
          block_crcs[static_cast<std::size_t>(k)]) {
        result.complete = false;
        result.error =
            "fde1 store: block " + std::to_string(k) + " CRC mismatch";
        break;
      }
    } else {
      bool ordered = true;
      RowOrderKey scan_last = last;
      bool scan_has_last = has_last;
      for (std::uint64_t i = 0; i < rows; ++i) {
        const RowOrderKey key =
            key_of(detail::decode_flow_row(base, rows, i));
        if (scan_has_last && key < scan_last) {
          ordered = false;
          break;
        }
        scan_last = key;
        scan_has_last = true;
      }
      if (!ordered) {
        result.complete = false;
        result.error =
            "fde1 store: rows out of order in block " + std::to_string(k);
        break;
      }
    }
    for (std::uint64_t i = 0; i < rows; ++i) {
      result.rows.push_back(detail::decode_flow_row(base, rows, i));
    }
    last = key_of(result.rows.record_at(result.rows.size() - 1));
    has_last = true;
    offset += block_bytes;
  }
  if (!result.footer_intact && result.error.empty()) {
    result.error = "fde1 store: footer missing or corrupt";
  }
  result.recovered_count = result.rows.size();
  return result;
}

std::string sniff_flow_format(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("flow store: cannot open " + path);
  }
  char head[64] = {};
  in.read(head, sizeof(head));
  const auto got = static_cast<std::size_t>(in.gcount());
  if (got >= 4 && std::memcmp(head, kMagic, 4) == 0) return "FDE1";
  // NetFlow v5 export packets start with the big-endian version field.
  if (got >= 2 && head[0] == 0 && head[1] == 5) return "NFV5";
  // CSV: printable text (the header line) all the way through the probe.
  bool text = got > 0;
  for (std::size_t i = 0; i < got; ++i) {
    const auto c = static_cast<unsigned char>(head[i]);
    if (c != '\t' && c != '\n' && c != '\r' && (c < 0x20 || c > 0x7E)) {
      text = false;
      break;
    }
  }
  if (text) return "CSV";
  return "?";
}

}  // namespace orion::store
