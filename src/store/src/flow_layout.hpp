// Internal FDE1 byte-layout helpers shared by the writer (fde1.cpp) and
// the mapped reader (mapped_flow.cpp). Not installed. The flow-side
// sibling of layout.hpp; the little-endian zero-copy contract asserted
// there covers these views too (both headers are store-internal).
#pragma once

#include <cstdint>

#include "layout.hpp"
#include "orion/flowsim/flow_batch.hpp"

namespace orion::store::detail {

/// Byte offsets of each flow column inside a block of `m` rows. Widest
/// columns first so every 8-byte column starts 8-aligned; the u32/u16/u8
/// tails only need their own natural alignment, which the descending
/// widths guarantee.
struct FlowColumnLayout {
  std::uint64_t ts, packets, bytes, src, dst, src_port, dst_port, router,
      proto;

  constexpr explicit FlowColumnLayout(std::uint64_t m)
      : ts(0),
        packets(8 * m),
        bytes(16 * m),
        src(24 * m),
        dst(28 * m),
        src_port(32 * m),
        dst_port(34 * m),
        router(36 * m),
        proto(38 * m) {}
};

/// Gathers row `i` of a block at `base` holding `m` rows into a full
/// FlowRecord. Reads unverified bytes in salvage — every field is total
/// (any byte pattern is a value), so no per-field validation is needed;
/// salvage validates row ORDER instead (see fde1.cpp).
inline flowsim::FlowRecord decode_flow_row(const std::uint8_t* base,
                                           std::uint64_t m, std::uint64_t i) {
  const FlowColumnLayout at(m);
  flowsim::FlowRecord r;
  r.ts_ns = get_i64(base + at.ts + 8 * i);
  r.packets = get_u64(base + at.packets + 8 * i);
  r.bytes = get_u64(base + at.bytes + 8 * i);
  r.src = net::Ipv4Address(get_u32(base + at.src + 4 * i));
  r.dst = net::Ipv4Address(get_u32(base + at.dst + 4 * i));
  std::uint16_t u16;
  std::memcpy(&u16, base + at.src_port + 2 * i, 2);
  r.src_port = u16;
  std::memcpy(&u16, base + at.dst_port + 2 * i, 2);
  r.dst_port = u16;
  std::memcpy(&u16, base + at.router + 2 * i, 2);
  r.router = u16;
  r.proto = base[at.proto + i];
  return r;
}

constexpr std::uint64_t kMaxFlowCount = std::uint64_t{1} << 27;
constexpr std::uint64_t kMaxBlockFlows = std::uint64_t{1} << 24;
constexpr std::uint64_t kMaxSegmentCount = std::uint64_t{1} << 22;

constexpr std::int64_t kNanosPerDay = std::int64_t{86'400'000'000'000};

/// Day bucket of a flow timestamp — the same truncating division
/// SimTime::day() performs, so segment days agree with the simulator's.
constexpr std::int64_t flow_day_of(std::int64_t ts_ns) {
  return ts_ns / kNanosPerDay;
}

}  // namespace orion::store::detail
