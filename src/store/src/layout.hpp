// Internal ODE2 byte-layout helpers shared by the writer (ode2.cpp) and
// the mapped reader (mapped.cpp). Not installed.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "orion/telescope/event.hpp"

namespace orion::store::detail {

// The zero-copy contract: column bytes are reinterpreted as host
// integers, so the on-disk little-endian layout must be the host layout.
// (The portable fallback in mapped.cpp covers hosts without mmap, not
// big-endian hosts — those would need a byte-swapping decode pass.)
static_assert(std::endian::native == std::endian::little,
              "ODE2 zero-copy reads require a little-endian host");

inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline std::int64_t get_i64(const std::uint8_t* p) {
  std::int64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

template <typename T>
void append(std::vector<std::uint8_t>& out, T v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &v, sizeof(T));
}

/// Byte offsets of each column inside a block of `m` rows.
struct ColumnLayout {
  std::uint64_t start, end, packets, dests, tool[4], src, port, type;

  constexpr explicit ColumnLayout(std::uint64_t m)
      : start(0),
        end(8 * m),
        packets(16 * m),
        dests(24 * m),
        tool{32 * m, 40 * m, 48 * m, 56 * m},
        src(64 * m),
        port(68 * m),
        type(70 * m) {}
};

/// Gathers row `i` of a block at `base` holding `m` rows into a full
/// DarknetEvent. Does NOT validate the traffic type — callers that read
/// unverified bytes (salvage) must check it first.
inline telescope::DarknetEvent decode_row(const std::uint8_t* base,
                                          std::uint64_t m, std::uint64_t i) {
  const ColumnLayout at(m);
  telescope::DarknetEvent e;
  e.key.src = net::Ipv4Address(get_u32(base + at.src + 4 * i));
  std::uint16_t port;
  std::memcpy(&port, base + at.port + 2 * i, 2);
  e.key.dst_port = port;
  e.key.type = static_cast<pkt::TrafficType>(base[at.type + i]);
  e.start = net::SimTime::at(net::Duration::nanos(get_i64(base + at.start + 8 * i)));
  e.end = net::SimTime::at(net::Duration::nanos(get_i64(base + at.end + 8 * i)));
  e.packets = get_u64(base + at.packets + 8 * i);
  e.unique_dests = get_u64(base + at.dests + 8 * i);
  for (std::size_t t = 0; t < e.packets_by_tool.size(); ++t) {
    e.packets_by_tool[t] = get_u64(base + at.tool[t] + 8 * i);
  }
  return e;
}

constexpr std::uint64_t kMaxEventCount = std::uint64_t{1} << 27;  // ~ ODE1's cap
constexpr std::uint64_t kMaxBlockEvents = std::uint64_t{1} << 24;

}  // namespace orion::store::detail
