#include "orion/store/mapped.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "layout.hpp"
#include "orion/netbase/crc32.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define ORION_STORE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define ORION_STORE_HAVE_MMAP 0
#endif

namespace orion::store {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("ode2 store: " + what);
}

}  // namespace

telescope::DarknetEvent BlockView::event(std::size_t i) const {
  telescope::DarknetEvent e;
  e.key.src = net::Ipv4Address(src[i]);
  e.key.dst_port = dst_port[i];
  e.key.type = static_cast<pkt::TrafficType>(type[i]);
  e.start = net::SimTime::at(net::Duration::nanos(start_ns[i]));
  e.end = net::SimTime::at(net::Duration::nanos(end_ns[i]));
  e.packets = packets[i];
  e.unique_dests = unique_dests[i];
  for (std::size_t t = 0; t < e.packets_by_tool.size(); ++t) {
    e.packets_by_tool[t] = tool_packets[t][i];
  }
  return e;
}

MappedEventStore::MappedEventStore(const std::string& path) {
#if ORION_STORE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      void* map = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                         PROT_READ, MAP_PRIVATE, fd, 0);
      if (map != MAP_FAILED) {
        data_ = static_cast<const std::uint8_t*>(map);
        size_ = static_cast<std::uint64_t>(st.st_size);
        mapped_ = true;
      }
    }
    ::close(fd);
  }
#endif
  if (!mapped_) {
    // Portable fallback: the whole file in an 8-aligned heap buffer, so
    // the span views work identically (just without demand paging).
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) fail("cannot open " + path);
    const std::streamoff bytes = in.tellg();
    in.seekg(0);
    fallback_.resize(static_cast<std::size_t>((bytes + 7) / 8), 0);
    if (bytes > 0 &&
        !in.read(reinterpret_cast<char*>(fallback_.data()), bytes)) {
      fail("short read of " + path);
    }
    data_ = reinterpret_cast<const std::uint8_t*>(fallback_.data());
    size_ = static_cast<std::uint64_t>(bytes);
  }

  try {
    if (size_ < kOde2HeaderBytes) fail("truncated header");
    if (std::memcmp(data_, "ODE2", 4) != 0) {
      fail("bad magic (not an ODE2 file)");
    }
    if (net::Crc32::of({data_ + 8, 32}) != detail::get_u32(data_ + 4)) {
      fail("header CRC mismatch");
    }
    darknet_size_ = detail::get_u64(data_ + 8);
    event_count_ = detail::get_u64(data_ + 16);
    block_events_ = detail::get_u64(data_ + 24);
    const std::uint64_t footer_offset = detail::get_u64(data_ + 32);
    if (event_count_ > detail::kMaxEventCount) fail("absurd event count");
    if (block_events_ == 0 || block_events_ > detail::kMaxBlockEvents) {
      fail("absurd block size");
    }
    const std::uint64_t n = event_count_;
    const std::uint64_t b = block_events_;
    const std::uint64_t block_count = n == 0 ? 0 : (n + b - 1) / b;
    std::uint64_t expected = kOde2HeaderBytes;
    for (std::uint64_t k = 0; k < block_count; ++k) {
      expected += ode2_block_bytes(std::min(b, n - k * b));
    }
    if (footer_offset != expected) fail("header geometry mismatch");
    if (footer_offset + 32 + 8 + 4 > size_) fail("truncated footer");

    const std::uint8_t* f = data_ + footer_offset;
    first_day_ = detail::get_i64(f);
    last_day_ = detail::get_i64(f + 8);
    const std::uint64_t day_count = detail::get_u64(f + 16);
    const std::uint64_t footer_blocks = detail::get_u64(f + 24);
    if (footer_blocks != block_count) fail("corrupt block count");
    if (n == 0) {
      if (day_count != 0) fail("corrupt day index");
    } else if (last_day_ < first_day_ ||
               day_count !=
                   static_cast<std::uint64_t>(last_day_ - first_day_ + 1)) {
      fail("corrupt day index");
    }
    const std::uint64_t footer_bytes =
        32 + 8 * (day_count + 1) + (kOde2BlockMetaBytes + 4) * block_count + 4;
    if (footer_offset + footer_bytes != size_) fail("truncated footer");
    if (net::Crc32::of({f, static_cast<std::size_t>(footer_bytes - 4)}) !=
        detail::get_u32(data_ + size_ - 4)) {
      fail("footer CRC mismatch");
    }

    day_start_.resize(static_cast<std::size_t>(day_count + 1));
    const std::uint8_t* cursor = f + 32;
    for (std::uint64_t d = 0; d <= day_count; ++d, cursor += 8) {
      day_start_[static_cast<std::size_t>(d)] = detail::get_u64(cursor);
    }
    if (day_start_.front() != 0 || day_start_.back() != n ||
        !std::is_sorted(day_start_.begin(), day_start_.end())) {
      fail("corrupt day index");
    }

    blocks_.resize(static_cast<std::size_t>(block_count));
    std::uint64_t offset = kOde2HeaderBytes;
    for (std::uint64_t k = 0; k < block_count; ++k, cursor += kOde2BlockMetaBytes) {
      BlockMeta& meta = blocks_[static_cast<std::size_t>(k)];
      meta.offset = detail::get_u64(cursor);
      meta.min_day = detail::get_i64(cursor + 8);
      meta.max_day = detail::get_i64(cursor + 16);
      meta.min_src = detail::get_u32(cursor + 24);
      meta.max_src = detail::get_u32(cursor + 28);
      if (meta.offset != offset || meta.min_day > meta.max_day ||
          meta.min_src > meta.max_src) {
        fail("corrupt block metadata");
      }
      offset += ode2_block_bytes(std::min(b, n - k * b));
    }
    for (std::uint64_t k = 0; k < block_count; ++k, cursor += 4) {
      blocks_[static_cast<std::size_t>(k)].crc = detail::get_u32(cursor);
    }
  } catch (...) {
    close();
    throw;
  }
}

MappedEventStore::~MappedEventStore() { close(); }

void MappedEventStore::close() noexcept {
#if ORION_STORE_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), static_cast<std::size_t>(size_));
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
}

MappedEventStore::MappedEventStore(MappedEventStore&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)),
      darknet_size_(other.darknet_size_),
      event_count_(other.event_count_),
      block_events_(other.block_events_),
      first_day_(other.first_day_),
      last_day_(other.last_day_),
      day_start_(std::move(other.day_start_)),
      blocks_(std::move(other.blocks_)) {
  if (!mapped_ && !fallback_.empty()) {
    data_ = reinterpret_cast<const std::uint8_t*>(fallback_.data());
  }
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedEventStore& MappedEventStore::operator=(MappedEventStore&& other) noexcept {
  if (this == &other) return *this;
  close();
  data_ = other.data_;
  size_ = other.size_;
  mapped_ = other.mapped_;
  fallback_ = std::move(other.fallback_);
  darknet_size_ = other.darknet_size_;
  event_count_ = other.event_count_;
  block_events_ = other.block_events_;
  first_day_ = other.first_day_;
  last_day_ = other.last_day_;
  day_start_ = std::move(other.day_start_);
  blocks_ = std::move(other.blocks_);
  if (!mapped_ && !fallback_.empty()) {
    data_ = reinterpret_cast<const std::uint8_t*>(fallback_.data());
  }
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  return *this;
}

BlockView MappedEventStore::block(std::size_t k) const {
  const std::uint64_t rows =
      std::min<std::uint64_t>(block_events_,
                              event_count_ - static_cast<std::uint64_t>(k) *
                                                 block_events_);
  const std::uint8_t* base = data_ + blocks_[k].offset;
  const detail::ColumnLayout at(rows);
  const auto m = static_cast<std::size_t>(rows);
  BlockView view;
  view.first_row = k * static_cast<std::size_t>(block_events_);
  view.start_ns = {reinterpret_cast<const std::int64_t*>(base + at.start), m};
  view.end_ns = {reinterpret_cast<const std::int64_t*>(base + at.end), m};
  view.packets = {reinterpret_cast<const std::uint64_t*>(base + at.packets), m};
  view.unique_dests = {reinterpret_cast<const std::uint64_t*>(base + at.dests), m};
  for (std::size_t t = 0; t < view.tool_packets.size(); ++t) {
    view.tool_packets[t] = {
        reinterpret_cast<const std::uint64_t*>(base + at.tool[t]), m};
  }
  view.src = {reinterpret_cast<const std::uint32_t*>(base + at.src), m};
  view.dst_port = {reinterpret_cast<const std::uint16_t*>(base + at.port), m};
  view.type = {base + at.type, m};
  return view;
}

std::pair<std::uint64_t, std::uint64_t> MappedEventStore::day_range(
    std::int64_t day) const {
  if (event_count_ == 0 || day < first_day_ || day > last_day_) return {0, 0};
  const auto index = static_cast<std::size_t>(day - first_day_);
  return {day_start_[index], day_start_[index + 1]};
}

std::size_t MappedEventStore::verify_blocks() const {
  for (std::size_t k = 0; k < blocks_.size(); ++k) {
    const std::uint64_t rows = std::min<std::uint64_t>(
        block_events_, event_count_ - static_cast<std::uint64_t>(k) * block_events_);
    const std::uint64_t bytes = ode2_block_bytes(rows);
    if (net::Crc32::of({data_ + blocks_[k].offset,
                        static_cast<std::size_t>(bytes)}) != blocks_[k].crc) {
      return k;
    }
  }
  return blocks_.size();
}

telescope::DarknetEvent MappedEventStore::event(std::uint64_t row) const {
  if (row >= event_count_) fail("event index out of range");
  const auto k = static_cast<std::size_t>(row / block_events_);
  return block(k).event(static_cast<std::size_t>(row % block_events_));
}

telescope::EventDataset MappedEventStore::to_dataset() const {
  std::vector<telescope::DarknetEvent> events;
  events.reserve(event_count());
  for (std::size_t k = 0; k < blocks_.size(); ++k) {
    const BlockView view = block(k);
    for (std::size_t i = 0; i < view.rows(); ++i) {
      events.push_back(view.event(i));
    }
  }
  return telescope::EventDataset(std::move(events), darknet_size_);
}

}  // namespace orion::store
