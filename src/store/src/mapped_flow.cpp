#include "orion/store/mapped_flow.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <tuple>

#include "flow_layout.hpp"
#include "orion/netbase/crc32.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define ORION_STORE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define ORION_STORE_HAVE_MMAP 0
#endif

namespace orion::store {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("fde1 store: " + what);
}

}  // namespace

flowsim::FlowRecord FlowView::record(std::size_t i) const {
  flowsim::FlowRecord r;
  r.ts_ns = ts_ns[i];
  r.packets = packets[i];
  r.bytes = bytes[i];
  r.src = net::Ipv4Address(src[i]);
  r.dst = net::Ipv4Address(dst[i]);
  r.src_port = src_port[i];
  r.dst_port = dst_port[i];
  r.router = router[i];
  r.proto = proto[i];
  return r;
}

MappedFlowStore::MappedFlowStore(const std::string& path) {
#if ORION_STORE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      void* map = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                         PROT_READ, MAP_PRIVATE, fd, 0);
      if (map != MAP_FAILED) {
        data_ = static_cast<const std::uint8_t*>(map);
        size_ = static_cast<std::uint64_t>(st.st_size);
        mapped_ = true;
      }
    }
    ::close(fd);
  }
#endif
  if (!mapped_) {
    // Portable fallback: the whole file in an 8-aligned heap buffer, so
    // the span views work identically (just without demand paging).
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) fail("cannot open " + path);
    const std::streamoff bytes = in.tellg();
    in.seekg(0);
    fallback_.resize(static_cast<std::size_t>((bytes + 7) / 8), 0);
    if (bytes > 0 &&
        !in.read(reinterpret_cast<char*>(fallback_.data()), bytes)) {
      fail("short read of " + path);
    }
    data_ = reinterpret_cast<const std::uint8_t*>(fallback_.data());
    size_ = static_cast<std::uint64_t>(bytes);
  }

  try {
    if (size_ < kFde1HeaderBytes) fail("truncated header");
    if (std::memcmp(data_, "FDE1", 4) != 0) {
      fail("bad magic (not an FDE1 file)");
    }
    if (net::Crc32::of({data_ + 8, 32}) != detail::get_u32(data_ + 4)) {
      fail("header CRC mismatch");
    }
    sampling_rate_ = static_cast<std::uint32_t>(detail::get_u64(data_ + 8));
    flow_count_ = detail::get_u64(data_ + 16);
    block_flows_ = detail::get_u64(data_ + 24);
    const std::uint64_t footer_offset = detail::get_u64(data_ + 32);
    if (flow_count_ > detail::kMaxFlowCount) fail("absurd flow count");
    if (block_flows_ == 0 || block_flows_ > detail::kMaxBlockFlows) {
      fail("absurd block size");
    }
    const std::uint64_t n = flow_count_;
    const std::uint64_t b = block_flows_;
    const std::uint64_t block_count = n == 0 ? 0 : (n + b - 1) / b;
    std::uint64_t expected = kFde1HeaderBytes;
    for (std::uint64_t k = 0; k < block_count; ++k) {
      expected += fde1_block_bytes(std::min(b, n - k * b));
    }
    if (footer_offset != expected) fail("header geometry mismatch");
    if (footer_offset + 32 + 4 > size_) fail("truncated footer");

    const std::uint8_t* f = data_ + footer_offset;
    start_day_ = detail::get_i64(f);
    end_day_ = detail::get_i64(f + 8);
    const std::uint64_t segment_count = detail::get_u64(f + 16);
    const std::uint64_t footer_blocks = detail::get_u64(f + 24);
    if (footer_blocks != block_count) fail("corrupt block count");
    if (start_day_ > end_day_) fail("corrupt day window");
    if (segment_count > detail::kMaxSegmentCount) fail("absurd segment count");
    const std::uint64_t footer_bytes =
        32 + kFde1SegmentBytes * segment_count +
        (kFde1BlockMetaBytes + 4) * block_count + 4;
    if (footer_offset + footer_bytes != size_) fail("truncated footer");
    if (net::Crc32::of({f, static_cast<std::size_t>(footer_bytes - 4)}) !=
        detail::get_u32(data_ + size_ - 4)) {
      fail("footer CRC mismatch");
    }

    segments_.resize(static_cast<std::size_t>(segment_count));
    const std::uint8_t* cursor = f + 32;
    for (std::uint64_t s = 0; s < segment_count;
         ++s, cursor += kFde1SegmentBytes) {
      FlowSegment& seg = segments_[static_cast<std::size_t>(s)];
      seg.router = static_cast<std::size_t>(detail::get_u64(cursor));
      seg.day = detail::get_i64(cursor + 8);
      seg.row_begin = detail::get_u64(cursor + 16);
      seg.row_end = s + 1 < segment_count
                        ? detail::get_u64(cursor + kFde1SegmentBytes + 16)
                        : n;
      seg.total_packets = detail::get_u64(cursor + 24);
      seg.user_packets = detail::get_u64(cursor + 32);
      seg.scanner_packets = detail::get_u64(cursor + 40);
      if (seg.day < start_day_ || seg.day >= end_day_) {
        fail("corrupt segment index (day outside window)");
      }
      if (seg.row_begin > seg.row_end || seg.row_end > n) {
        fail("corrupt segment index (bad row range)");
      }
      if (s > 0) {
        const FlowSegment& prev = segments_[static_cast<std::size_t>(s - 1)];
        if (std::tie(prev.router, prev.day) >= std::tie(seg.router, seg.day)) {
          fail("corrupt segment index (unordered)");
        }
      }
    }
    if (!segments_.empty() &&
        (segments_.front().row_begin != 0 || segments_.back().row_end != n)) {
      fail("corrupt segment index (row coverage)");
    }
    if (segments_.empty() && n != 0) {
      fail("corrupt segment index (rows without segments)");
    }

    blocks_.resize(static_cast<std::size_t>(block_count));
    std::uint64_t offset = kFde1HeaderBytes;
    for (std::uint64_t k = 0; k < block_count;
         ++k, cursor += kFde1BlockMetaBytes) {
      FlowBlockMeta& meta = blocks_[static_cast<std::size_t>(k)];
      meta.offset = detail::get_u64(cursor);
      meta.min_src = detail::get_u32(cursor + 8);
      meta.max_src = detail::get_u32(cursor + 12);
      if (meta.offset != offset || meta.min_src > meta.max_src) {
        fail("corrupt block metadata");
      }
      offset += fde1_block_bytes(std::min(b, n - k * b));
    }
    for (std::uint64_t k = 0; k < block_count; ++k, cursor += 4) {
      blocks_[static_cast<std::size_t>(k)].crc = detail::get_u32(cursor);
    }
  } catch (...) {
    close();
    throw;
  }
}

MappedFlowStore::~MappedFlowStore() { close(); }

void MappedFlowStore::close() noexcept {
#if ORION_STORE_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), static_cast<std::size_t>(size_));
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
}

MappedFlowStore::MappedFlowStore(MappedFlowStore&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)),
      sampling_rate_(other.sampling_rate_),
      flow_count_(other.flow_count_),
      block_flows_(other.block_flows_),
      start_day_(other.start_day_),
      end_day_(other.end_day_),
      segments_(std::move(other.segments_)),
      blocks_(std::move(other.blocks_)) {
  if (!mapped_ && !fallback_.empty()) {
    data_ = reinterpret_cast<const std::uint8_t*>(fallback_.data());
  }
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedFlowStore& MappedFlowStore::operator=(MappedFlowStore&& other) noexcept {
  if (this == &other) return *this;
  close();
  data_ = other.data_;
  size_ = other.size_;
  mapped_ = other.mapped_;
  fallback_ = std::move(other.fallback_);
  sampling_rate_ = other.sampling_rate_;
  flow_count_ = other.flow_count_;
  block_flows_ = other.block_flows_;
  start_day_ = other.start_day_;
  end_day_ = other.end_day_;
  segments_ = std::move(other.segments_);
  blocks_ = std::move(other.blocks_);
  if (!mapped_ && !fallback_.empty()) {
    data_ = reinterpret_cast<const std::uint8_t*>(fallback_.data());
  }
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  return *this;
}

FlowView MappedFlowStore::block(std::size_t k) const {
  const std::uint64_t rows = std::min<std::uint64_t>(
      block_flows_,
      flow_count_ - static_cast<std::uint64_t>(k) * block_flows_);
  const std::uint8_t* base = data_ + blocks_[k].offset;
  const detail::FlowColumnLayout at(rows);
  const auto m = static_cast<std::size_t>(rows);
  FlowView view;
  view.first_row = k * static_cast<std::size_t>(block_flows_);
  view.ts_ns = {reinterpret_cast<const std::int64_t*>(base + at.ts), m};
  view.packets = {reinterpret_cast<const std::uint64_t*>(base + at.packets), m};
  view.bytes = {reinterpret_cast<const std::uint64_t*>(base + at.bytes), m};
  view.src = {reinterpret_cast<const std::uint32_t*>(base + at.src), m};
  view.dst = {reinterpret_cast<const std::uint32_t*>(base + at.dst), m};
  view.src_port = {reinterpret_cast<const std::uint16_t*>(base + at.src_port), m};
  view.dst_port = {reinterpret_cast<const std::uint16_t*>(base + at.dst_port), m};
  view.router = {reinterpret_cast<const std::uint16_t*>(base + at.router), m};
  view.proto = {base + at.proto, m};
  return view;
}

const FlowSegment* MappedFlowStore::segment(std::size_t router,
                                            std::int64_t day) const {
  const auto it = std::lower_bound(
      segments_.begin(), segments_.end(), std::make_pair(router, day),
      [](const FlowSegment& seg, const std::pair<std::size_t, std::int64_t>& key) {
        return std::tie(seg.router, seg.day) < std::tie(key.first, key.second);
      });
  if (it == segments_.end() || it->router != router || it->day != day) {
    return nullptr;
  }
  return &*it;
}

std::pair<std::uint64_t, std::uint64_t> MappedFlowStore::row_range(
    std::size_t router, std::int64_t day) const {
  const FlowSegment* seg = segment(router, day);
  if (seg == nullptr) return {0, 0};
  return {seg->row_begin, seg->row_end};
}

std::size_t MappedFlowStore::verify_blocks() const {
  for (std::size_t k = 0; k < blocks_.size(); ++k) {
    const std::uint64_t rows = std::min<std::uint64_t>(
        block_flows_,
        flow_count_ - static_cast<std::uint64_t>(k) * block_flows_);
    const std::uint64_t bytes = fde1_block_bytes(rows);
    if (net::Crc32::of({data_ + blocks_[k].offset,
                        static_cast<std::size_t>(bytes)}) != blocks_[k].crc) {
      return k;
    }
  }
  return blocks_.size();
}

flowsim::FlowRecord MappedFlowStore::record(std::uint64_t row) const {
  if (row >= flow_count_) fail("flow index out of range");
  const auto k = static_cast<std::size_t>(row / block_flows_);
  return block(k).record(static_cast<std::size_t>(row % block_flows_));
}

flowsim::FlowBatch MappedFlowStore::to_batch() const {
  flowsim::FlowBatch batch(flow_count());
  for (std::size_t k = 0; k < blocks_.size(); ++k) {
    const FlowView view = block(k);
    for (std::size_t i = 0; i < view.rows(); ++i) {
      batch.push_back(view.record(i));
    }
  }
  return batch;
}

flowsim::FlowDataset MappedFlowStore::to_dataset() const {
  flowsim::FlowSimConfig config;
  config.start_day = start_day_;
  config.end_day = end_day_;
  config.sampling_rate = sampling_rate_;
  const auto days = static_cast<std::size_t>(end_day_ - start_day_);
  std::vector<std::vector<flowsim::RouterDay>> table(
      flowsim::kRouterCount, std::vector<flowsim::RouterDay>(days));
  for (const FlowSegment& seg : segments_) {
    if (seg.router >= flowsim::kRouterCount) {
      fail("to_dataset: segment router outside the paper topology");
    }
    flowsim::RouterDay& rd =
        table[seg.router][static_cast<std::size_t>(seg.day - start_day_)];
    rd.total_packets = seg.total_packets;
    rd.user_packets = seg.user_packets;
    rd.scanner_packets = seg.scanner_packets;
    for_each_span(seg.row_begin, seg.row_end,
                  [&rd](const FlowView& view, std::size_t lo, std::size_t hi) {
                    for (std::size_t i = lo; i < hi; ++i) {
                      flowsim::FlowKey key;
                      key.src = net::Ipv4Address(view.src[i]);
                      key.dst_port = view.dst_port[i];
                      key.type = flowsim::traffic_type_of(view.proto[i]);
                      rd.sampled[key] += view.packets[i];
                    }
                  });
  }
  return flowsim::FlowDataset(std::move(config), std::move(table));
}

}  // namespace orion::store
