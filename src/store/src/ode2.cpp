#include "orion/store/ode2.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "layout.hpp"
#include "orion/netbase/crc32.hpp"
#include "orion/store/mapped.hpp"
#include "orion/telescope/store.hpp"

namespace orion::store {

namespace {

constexpr char kMagic[4] = {'O', 'D', 'E', '2'};

std::uint64_t total_block_bytes(std::uint64_t n, std::uint64_t b) {
  if (n == 0) return 0;
  const std::uint64_t full = n / b;
  const std::uint64_t rest = n % b;
  return full * ode2_block_bytes(b) + (rest ? ode2_block_bytes(rest) : 0);
}

}  // namespace

/// Shared writer core over a `sink(ptr, bytes)` callable; the public
/// overloads adapt it to ostreams (with fail-state checks after every
/// write — a dead stream must not keep silently truncating) and to the
/// failpoint-instrumented io::File seam.
template <typename Sink>
std::uint64_t write_events_ode2_impl(const telescope::EventDataset& dataset,
                                     Sink&& sink,
                                     std::uint64_t block_events) {
  if (block_events == 0 || block_events > detail::kMaxBlockEvents) {
    throw std::invalid_argument("ode2 store: bad block size");
  }
  const auto& events = dataset.events();
  const std::uint64_t n = events.size();
  for (std::uint64_t i = 1; i < n; ++i) {
    if (events[i].start < events[i - 1].start) {
      throw std::invalid_argument(
          "ode2 store: events not in start order (day index needs it)");
    }
  }

  const std::uint64_t b = block_events;
  const std::uint64_t block_count = n == 0 ? 0 : (n + b - 1) / b;
  const std::uint64_t footer_offset =
      kOde2HeaderBytes + total_block_bytes(n, b);

  // Header: magic, CRC over the 32 field bytes, then the fields —
  // assembled in memory and emitted as one write.
  std::vector<std::uint8_t> header;
  header.reserve(kOde2HeaderBytes);
  header.insert(header.end(), kMagic, kMagic + 4);
  std::vector<std::uint8_t> fields;
  fields.reserve(32);
  detail::append<std::uint64_t>(fields, dataset.darknet_size());
  detail::append<std::uint64_t>(fields, n);
  detail::append<std::uint64_t>(fields, b);
  detail::append<std::uint64_t>(fields, footer_offset);
  detail::append<std::uint32_t>(header, net::Crc32::of({fields.data(), 32}));
  header.insert(header.end(), fields.begin(), fields.end());
  sink(header.data(), header.size());

  // Column blocks, each assembled in memory for one write + one CRC.
  std::vector<BlockMeta> metas;
  metas.reserve(static_cast<std::size_t>(block_count));
  std::vector<std::uint8_t> buf;
  std::uint64_t offset = kOde2HeaderBytes;
  for (std::uint64_t k = 0; k < block_count; ++k) {
    const std::uint64_t lo = k * b;
    const std::uint64_t hi = std::min(n, lo + b);
    buf.clear();
    buf.reserve(static_cast<std::size_t>(ode2_block_bytes(hi - lo)));
    for (std::uint64_t i = lo; i < hi; ++i) {
      detail::append<std::int64_t>(buf, events[i].start.since_epoch().total_nanos());
    }
    for (std::uint64_t i = lo; i < hi; ++i) {
      detail::append<std::int64_t>(buf, events[i].end.since_epoch().total_nanos());
    }
    for (std::uint64_t i = lo; i < hi; ++i) {
      detail::append<std::uint64_t>(buf, events[i].packets);
    }
    for (std::uint64_t i = lo; i < hi; ++i) {
      detail::append<std::uint64_t>(buf, events[i].unique_dests);
    }
    for (std::size_t t = 0; t < std::tuple_size_v<telescope::ToolPackets>; ++t) {
      for (std::uint64_t i = lo; i < hi; ++i) {
        detail::append<std::uint64_t>(buf, events[i].packets_by_tool[t]);
      }
    }
    for (std::uint64_t i = lo; i < hi; ++i) {
      detail::append<std::uint32_t>(buf, events[i].key.src.value());
    }
    for (std::uint64_t i = lo; i < hi; ++i) {
      detail::append<std::uint16_t>(buf, events[i].key.dst_port);
    }
    for (std::uint64_t i = lo; i < hi; ++i) {
      detail::append<std::uint8_t>(buf,
                                   static_cast<std::uint8_t>(events[i].key.type));
    }
    buf.resize(static_cast<std::size_t>(ode2_block_bytes(hi - lo)), 0);  // pad

    BlockMeta meta;
    meta.offset = offset;
    meta.min_day = meta.max_day = events[lo].day();
    meta.min_src = meta.max_src = events[lo].key.src.value();
    for (std::uint64_t i = lo; i < hi; ++i) {
      meta.min_day = std::min(meta.min_day, events[i].day());
      meta.max_day = std::max(meta.max_day, events[i].day());
      meta.min_src = std::min(meta.min_src, events[i].key.src.value());
      meta.max_src = std::max(meta.max_src, events[i].key.src.value());
    }
    meta.crc = net::Crc32::of({buf.data(), buf.size()});
    metas.push_back(meta);
    sink(buf.data(), buf.size());
    offset += buf.size();
  }

  // Footer: window + day index + zone maps + block CRCs, CRC-sealed.
  const std::int64_t first_day = n == 0 ? 0 : dataset.first_day();
  const std::int64_t last_day = n == 0 ? -1 : dataset.last_day();
  const std::uint64_t day_count =
      n == 0 ? 0 : static_cast<std::uint64_t>(last_day - first_day + 1);
  std::vector<std::uint8_t> footer;
  detail::append<std::int64_t>(footer, first_day);
  detail::append<std::int64_t>(footer, last_day);
  detail::append<std::uint64_t>(footer, day_count);
  detail::append<std::uint64_t>(footer, block_count);
  detail::append<std::uint64_t>(footer, 0);  // day_start[0]
  std::uint64_t cursor = 0;
  for (std::uint64_t d = 0; d < day_count; ++d) {
    while (cursor < n &&
           events[cursor].day() <= first_day + static_cast<std::int64_t>(d)) {
      ++cursor;
    }
    detail::append<std::uint64_t>(footer, cursor);
  }
  for (const BlockMeta& meta : metas) {
    detail::append<std::uint64_t>(footer, meta.offset);
    detail::append<std::int64_t>(footer, meta.min_day);
    detail::append<std::int64_t>(footer, meta.max_day);
    detail::append<std::uint32_t>(footer, meta.min_src);
    detail::append<std::uint32_t>(footer, meta.max_src);
  }
  for (const BlockMeta& meta : metas) {
    detail::append<std::uint32_t>(footer, meta.crc);
  }
  const std::uint32_t footer_crc =
      net::Crc32::of({footer.data(), footer.size()});
  detail::append<std::uint32_t>(footer, footer_crc);
  sink(footer.data(), footer.size());
  return footer_offset + footer.size();
}

std::uint64_t write_events_ode2(const telescope::EventDataset& dataset,
                                std::ostream& out,
                                std::uint64_t block_events) {
  const std::uint64_t bytes = write_events_ode2_impl(
      dataset,
      [&out](const std::uint8_t* p, std::size_t m) {
        out.write(reinterpret_cast<const char*>(p),
                  static_cast<std::streamsize>(m));
        // Check after every write, not just at the end: a stream that
        // enters a fail state stays there, and writing megabytes into a
        // dead stream is how archives used to truncate silently.
        if (!out) {
          throw std::runtime_error(
              "ode2 store: stream write failure (bad/fail state)");
        }
      },
      block_events);
  out.flush();
  if (!out) {
    throw std::runtime_error("ode2 store: stream flush failure");
  }
  return bytes;
}

std::uint64_t write_events_ode2(const telescope::EventDataset& dataset,
                                net::io::File& out,
                                std::uint64_t block_events) {
  return write_events_ode2_impl(
      dataset,
      [&out](const std::uint8_t* p, std::size_t m) { out.write(p, m); },
      block_events);
}

std::uint64_t write_events_ode2_file(const telescope::EventDataset& dataset,
                                     const std::string& path,
                                     std::uint64_t block_events) {
  net::io::File out = net::io::File::create(path);
  const std::uint64_t bytes = write_events_ode2(dataset, out, block_events);
  out.sync();
  out.close();
  return bytes;
}

namespace {

/// Parsed, CRC-verified header fields (salvage-side mirror of the strict
/// reader's checks; returns false with `error` set instead of throwing).
struct Header {
  std::uint64_t darknet_size = 0;
  std::uint64_t event_count = 0;
  std::uint64_t block_events = 0;
  std::uint64_t footer_offset = 0;
};

bool parse_header(const std::vector<std::uint8_t>& bytes, Header& h,
                  std::string& error) {
  if (bytes.size() < kOde2HeaderBytes) {
    error = "ode2 store: truncated header";
    return false;
  }
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    error = "ode2 store: bad magic (not an ODE2 file)";
    return false;
  }
  const std::uint32_t stored_crc = detail::get_u32(bytes.data() + 4);
  if (net::Crc32::of({bytes.data() + 8, 32}) != stored_crc) {
    error = "ode2 store: header CRC mismatch";
    return false;
  }
  h.darknet_size = detail::get_u64(bytes.data() + 8);
  h.event_count = detail::get_u64(bytes.data() + 16);
  h.block_events = detail::get_u64(bytes.data() + 24);
  h.footer_offset = detail::get_u64(bytes.data() + 32);
  if (h.event_count > detail::kMaxEventCount) {
    error = "ode2 store: absurd event count";
    return false;
  }
  if (h.block_events == 0 || h.block_events > detail::kMaxBlockEvents) {
    error = "ode2 store: absurd block size";
    return false;
  }
  if (h.footer_offset !=
      kOde2HeaderBytes + total_block_bytes(h.event_count, h.block_events)) {
    error = "ode2 store: header geometry mismatch";
    return false;
  }
  return true;
}

/// True when every traffic-type byte of the block is a valid enum value —
/// the same structural validation ODE1's record reader applies.
bool types_valid(const std::uint8_t* base, std::uint64_t rows) {
  const detail::ColumnLayout at(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    if (base[at.type + i] > static_cast<std::uint8_t>(pkt::TrafficType::Other)) {
      return false;
    }
  }
  return true;
}

}  // namespace

Ode2SalvageResult read_events_ode2_salvage(const std::string& path) {
  Ode2SalvageResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    result.error = "ode2 store: cannot open " + path;
    return result;
  }
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};

  Header h;
  if (!parse_header(bytes, h, result.error)) {
    return result;
  }
  result.declared_count = h.event_count;
  const std::uint64_t n = h.event_count;
  const std::uint64_t b = h.block_events;
  const std::uint64_t block_count = n == 0 ? 0 : (n + b - 1) / b;

  // Try the footer; its CRC decides whether per-block CRCs are usable.
  std::vector<std::uint32_t> block_crcs;
  if (h.footer_offset + 32 + 8 <= bytes.size()) {
    const std::uint8_t* f = bytes.data() + h.footer_offset;
    const std::uint64_t day_count = detail::get_u64(f + 16);
    const std::uint64_t footer_blocks = detail::get_u64(f + 24);
    const std::uint64_t footer_bytes =
        32 + 8 * (day_count + 1) + (32 + 4) * footer_blocks + 4;
    if (footer_blocks == block_count && day_count <= detail::kMaxEventCount &&
        h.footer_offset + footer_bytes == bytes.size()) {
      const std::uint32_t stored =
          detail::get_u32(bytes.data() + bytes.size() - 4);
      if (net::Crc32::of({f, static_cast<std::size_t>(footer_bytes - 4)}) ==
          stored) {
        result.footer_intact = true;
        const std::uint8_t* crcs =
            f + 32 + 8 * (day_count + 1) + 32 * footer_blocks;
        for (std::uint64_t k = 0; k < block_count; ++k) {
          block_crcs.push_back(detail::get_u32(crcs + 4 * k));
        }
      }
    }
  }

  // Recover the prefix of complete, valid blocks (CRC-checked when the
  // footer survived; structurally validated when it did not).
  std::vector<telescope::DarknetEvent> events;
  events.reserve(static_cast<std::size_t>(std::min(n, std::uint64_t{1} << 16)));
  result.complete = result.footer_intact;
  std::uint64_t offset = kOde2HeaderBytes;
  for (std::uint64_t k = 0; k < block_count; ++k) {
    const std::uint64_t rows = std::min(b, n - k * b);
    const std::uint64_t block_bytes = ode2_block_bytes(rows);
    if (offset + block_bytes > bytes.size()) {
      result.complete = false;
      result.error = "ode2 store: truncated block " + std::to_string(k);
      break;
    }
    const std::uint8_t* base = bytes.data() + offset;
    if (result.footer_intact) {
      if (net::Crc32::of({base, static_cast<std::size_t>(block_bytes)}) !=
          block_crcs[static_cast<std::size_t>(k)]) {
        result.complete = false;
        result.error = "ode2 store: block " + std::to_string(k) + " CRC mismatch";
        break;
      }
    } else if (!types_valid(base, rows)) {
      result.complete = false;
      result.error = "ode2 store: bad traffic type in block " + std::to_string(k);
      break;
    }
    for (std::uint64_t i = 0; i < rows; ++i) {
      events.push_back(detail::decode_row(base, rows, i));
    }
    offset += block_bytes;
  }
  if (!result.footer_intact && result.error.empty()) {
    result.error = "ode2 store: footer missing or corrupt";
  }
  result.recovered_count = events.size();
  result.dataset = telescope::EventDataset(std::move(events), h.darknet_size);
  return result;
}

std::string sniff_event_format(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("event store: cannot open " + path);
  }
  char magic[4] = {};
  in.read(magic, 4);
  if (in.gcount() == 4) {
    if (std::memcmp(magic, "ODE1", 4) == 0) return "ODE1";
    if (std::memcmp(magic, kMagic, 4) == 0) return "ODE2";
  }
  return "?";
}

telescope::EventDataset load_events_auto(const std::string& path) {
  const std::string format = sniff_event_format(path);
  if (format == "ODE2") {
    return MappedEventStore(path).to_dataset();
  }
  if (format == "ODE1") {
    std::ifstream in(path, std::ios::binary);
    return telescope::read_events_binary(in);
  }
  throw std::runtime_error("event store: " + path +
                           " is neither an ODE1 nor an ODE2 archive");
}

}  // namespace orion::store
