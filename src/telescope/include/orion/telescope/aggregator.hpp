// Streaming aggregation of darknet packets into darknet events.
#pragma once

#include <cstdint>
#include <vector>

#include "orion/netbase/flat_map.hpp"
#include "orion/netbase/prefix.hpp"
#include "orion/stats/hyperloglog.hpp"
#include "orion/telescope/event.hpp"

namespace orion::telescope {

class CheckpointReader;
class CheckpointWriter;

struct AggregatorConfig {
  /// Inactivity period after which an event is considered ended (see
  /// timeout.hpp for the derivation used by the scenarios).
  net::Duration timeout = net::Duration::minutes(10);
  /// Unique-destination tracking stays exact up to this many distinct
  /// destinations per event, then degrades to an HLL estimate. The default
  /// keeps the Definition-1 10%-dispersion decision exact for darknets up
  /// to ~160k addresses.
  std::size_t exact_dest_limit = 16384;
  int hll_precision = 12;
  /// How often (in event time) the lazy expiry sweep runs.
  net::Duration sweep_interval = net::Duration::minutes(5);
  /// Slots pre-reserved in the live-event table (hot per-packet map);
  /// sized for the concurrent-scanner population, not total sources.
  /// Capacity only — results are unaffected, so it is not config-echoed.
  std::size_t live_reserve = 4096;
};

/// Turns a time-ordered stream of darknet packets into completed
/// DarknetEvents, keyed by (src, dst port, traffic type) and delimited by
/// the inactivity timeout. Non-scanning packets ("Other") and packets
/// outside the dark space are ignored but counted.
///
/// Expiry is lazy: a sweep over the live-event table runs every
/// `sweep_interval` of stream time. The sweep compares against packet
/// timestamps, so events are emitted with exact start/end times regardless
/// of when the sweep happens to run.
class EventAggregator {
 public:
  EventAggregator(net::PrefixSet dark_space, AggregatorConfig config,
                  EventSink sink);

  /// Feeds one packet. Timestamps must be non-decreasing; a regression
  /// throws std::invalid_argument (the pipeline always merges sorted
  /// streams, so a violation is a programming error worth failing loudly).
  void observe(const pkt::Packet& packet);

  /// Expires everything idle at `now` without feeding a packet (used at
  /// day boundaries by the longitudinal driver).
  void advance_to(net::SimTime now);

  /// Closes and emits all live events (end of capture).
  void finish();

  // --- capture-level counters (Table 1 inputs)
  std::uint64_t packets_seen() const { return packets_seen_; }
  std::uint64_t scanning_packets() const { return scanning_packets_; }
  std::uint64_t ignored_out_of_space() const { return ignored_out_of_space_; }
  std::uint64_t ignored_non_scanning() const { return ignored_non_scanning_; }
  std::uint64_t events_emitted() const { return events_emitted_; }
  std::size_t live_events() const { return live_.size(); }
  std::uint64_t darknet_size() const { return dark_space_.total_addresses(); }

  /// Snapshots the full aggregator state (live-event table, per-event
  /// cardinality estimators, counters, stream clock) so a killed process
  /// resumes mid-capture. Restore verifies the snapshot was taken under
  /// the same configuration and dark space (std::runtime_error
  /// otherwise); the sink is NOT serialized — the restoring caller wires
  /// its own.
  void checkpoint(CheckpointWriter& writer) const;
  void restore(CheckpointReader& reader);

 private:
  struct LiveEvent {
    net::SimTime start;
    net::SimTime last_seen;
    std::uint64_t packets = 0;
    ToolPackets packets_by_tool{};
    stats::CardinalityEstimator dests;

    explicit LiveEvent(std::size_t exact_limit, int hll_precision)
        : dests(exact_limit, hll_precision) {}
  };

  void emit(const EventKey& key, const LiveEvent& live);
  void sweep(net::SimTime now);

  net::PrefixSet dark_space_;
  AggregatorConfig config_;
  EventSink sink_;
  /// Open-addressing flat table: probed once per scanning packet, so it
  /// avoids unordered_map's per-node allocations and pointer chases.
  net::FlatMap<EventKey, LiveEvent, EventKeyHash> live_;

  net::SimTime last_timestamp_;
  net::SimTime next_sweep_;
  bool saw_packet_ = false;

  std::uint64_t packets_seen_ = 0;
  std::uint64_t scanning_packets_ = 0;
  std::uint64_t ignored_out_of_space_ = 0;
  std::uint64_t ignored_non_scanning_ = 0;
  std::uint64_t events_emitted_ = 0;
};

/// Convenience sink that collects events into a vector.
class EventCollector {
 public:
  EventSink sink() {
    return [this](const DarknetEvent& e) { events_.push_back(e); };
  }
  const std::vector<DarknetEvent>& events() const { return events_; }
  std::vector<DarknetEvent> take() { return std::move(events_); }
  /// Checkpoint support: reinstates the pending-event backlog.
  void restore(std::vector<DarknetEvent> events) { events_ = std::move(events); }

 private:
  std::vector<DarknetEvent> events_;
};

}  // namespace orion::telescope
