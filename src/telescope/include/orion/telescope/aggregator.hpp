// Streaming aggregation of darknet packets into darknet events.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "orion/netbase/flat_map.hpp"
#include "orion/netbase/prefix.hpp"
#include "orion/packet/batch.hpp"
#include "orion/stats/hyperloglog.hpp"
#include "orion/telescope/event.hpp"

namespace orion::telescope {

class CheckpointReader;
class CheckpointWriter;

struct AggregatorConfig {
  /// Inactivity period after which an event is considered ended (see
  /// timeout.hpp for the derivation used by the scenarios).
  net::Duration timeout = net::Duration::minutes(10);
  /// Unique-destination tracking stays exact up to this many distinct
  /// destinations per event, then degrades to an HLL estimate. The default
  /// keeps the Definition-1 10%-dispersion decision exact for darknets up
  /// to ~160k addresses.
  std::size_t exact_dest_limit = 16384;
  int hll_precision = 12;
  /// How often (in event time) the lazy expiry sweep runs.
  net::Duration sweep_interval = net::Duration::minutes(5);
  /// Slots pre-reserved in the live-event table (hot per-packet map);
  /// sized for the concurrent-scanner population, not total sources.
  /// Capacity only — results are unaffected, so it is not config-echoed.
  std::size_t live_reserve = 4096;
};

/// Turns a time-ordered stream of darknet packets into completed
/// DarknetEvents, keyed by (src, dst port, traffic type) and delimited by
/// the inactivity timeout. Non-scanning packets ("Other") and packets
/// outside the dark space are ignored but counted.
///
/// Expiry is lazy: a sweep over the live-event table runs every
/// `sweep_interval` of stream time. The sweep compares against packet
/// timestamps, so events are emitted with exact start/end times regardless
/// of when the sweep happens to run.
class EventAggregator {
 public:
  EventAggregator(net::PrefixSet dark_space, AggregatorConfig config,
                  EventSink sink);

  /// Feeds one packet. Timestamps must be non-decreasing; a regression
  /// throws std::invalid_argument (the pipeline always merges sorted
  /// streams, so a violation is a programming error worth failing loudly).
  void observe(const pkt::Packet& packet);

  /// Feeds a whole columnar batch. State after the call is byte-identical
  /// to calling observe() on each record in order — same events in the
  /// same order, same counters, same checkpoint bytes — for any batch
  /// size (DESIGN.md §11). The batch engine pre-classifies and pre-hashes
  /// every record, software-prefetches the live-table buckets, and skips
  /// (only) expiry sweeps it can prove would emit nothing.
  ///
  /// One deliberate strengthening: timestamps are validated for the whole
  /// batch up front, so a mid-batch regression throws *before* any record
  /// is applied (the scalar loop would have applied the valid prefix).
  void observe_batch(const pkt::PacketBatch& batch) {
    observe_batch(batch, {});
  }

  /// Same, with dark-space membership precomputed by the caller: member
  /// (when non-empty) must hold batch.size() 0/1 bytes equal to what
  /// dark_space.contains_batch returns for batch's dst column — the
  /// ParallelPipeline dispatcher vectorizes that test once per incoming
  /// batch and scatters the column alongside the records, so per-shard
  /// aggregators skip recomputing it. Empty member means "compute here"
  /// (identical results either way); any other size throws
  /// std::invalid_argument.
  void observe_batch(const pkt::PacketBatch& batch,
                     std::span<const std::uint8_t> member);

  /// Expires everything idle at `now` without feeding a packet (used at
  /// day boundaries by the longitudinal driver).
  void advance_to(net::SimTime now);

  /// Closes and emits all live events (end of capture).
  void finish();

  // --- capture-level counters (Table 1 inputs)
  std::uint64_t packets_seen() const { return packets_seen_; }
  std::uint64_t scanning_packets() const { return scanning_packets_; }
  std::uint64_t ignored_out_of_space() const { return ignored_out_of_space_; }
  std::uint64_t ignored_non_scanning() const { return ignored_non_scanning_; }
  std::uint64_t events_emitted() const { return events_emitted_; }
  std::size_t live_events() const { return live_.size(); }
  std::uint64_t darknet_size() const { return dark_space_.total_addresses(); }

  /// Snapshots the full aggregator state (live-event table, per-event
  /// cardinality estimators, counters, stream clock) so a killed process
  /// resumes mid-capture. Restore verifies the snapshot was taken under
  /// the same configuration and dark space (std::runtime_error
  /// otherwise); the sink is NOT serialized — the restoring caller wires
  /// its own.
  void checkpoint(CheckpointWriter& writer) const;
  void restore(CheckpointReader& reader);

 private:
  struct LiveEvent {
    net::SimTime start;
    net::SimTime last_seen;
    std::uint64_t packets = 0;
    ToolPackets packets_by_tool{};
    stats::CardinalityEstimator dests;

    explicit LiveEvent(std::size_t exact_limit, int hll_precision)
        : dests(exact_limit, hll_precision) {}
  };

  void emit(const EventKey& key, const LiveEvent& live);
  void sweep(net::SimTime now);
  void batch_sweep(net::SimTime now);
  void rebuild_aux();
  void aux_rebase(std::int64_t top_granule);
  std::size_t aux_bucket_of(std::int64_t last_seen_ns) const;

  net::PrefixSet dark_space_;
  AggregatorConfig config_;
  EventSink sink_;
  /// Open-addressing flat table: probed once per scanning packet, so it
  /// avoids unordered_map's per-node allocations and pointer chases.
  net::FlatMap<EventKey, LiveEvent, EventKeyHash> live_;

  net::SimTime last_timestamp_;
  net::SimTime next_sweep_;
  bool saw_packet_ = false;

  // --- batch-path expiry wheel (DESIGN.md §11.3) ---
  // A lazy timing wheel over last_seen, in coarse granules of
  // aux_granule_ns_: wheel bucket i holds (key, hash) stamps for events
  // whose last_seen entered granule aux_base_granule_ + i; bucket 0 also
  // absorbs everything older than the base (rebases fold entries down).
  // Stamps are append-only — touching an event leaves its old stamp
  // stale — and a sweep validates only the stamps in buckets at or below
  // the expiry cutoff against the live table. In the common case those
  // buckets are empty and the sweep is a clock update; when stamps are
  // present, the few truly-expired events are emitted in an order provably
  // identical to the scalar erase_if scan (smallest current slot index
  // first, re-queried after every erase), so the batch path never walks
  // the full live table on a sweep at all.
  // Maintained only by observe_batch; the scalar entry points just flip
  // aux_valid_ and the next batch call rebuilds from the live table.
  static constexpr std::size_t kAuxBuckets = 64;
  using AuxStamp = std::pair<EventKey, std::size_t>;  // key + its hash
  bool aux_valid_ = false;
  std::int64_t aux_granule_ns_ = 1;
  std::int64_t aux_base_granule_ = 0;
  std::array<std::vector<AuxStamp>, kAuxBuckets> aux_wheel_;
  std::vector<AuxStamp> aux_candidates_;  // sweep scratch
  // Per-record scratch columns reused across batches (kept as members so
  // a steady-state observe_batch call performs zero allocations).
  std::vector<std::uint8_t> scratch_kind_;
  std::vector<std::uint8_t> scratch_member_;  // SIMD dark-space membership
  std::vector<std::uint8_t> scratch_type_;    // SIMD traffic classification
  std::vector<std::uint8_t> scratch_tool_;
  std::vector<EventKey> scratch_key_;
  std::vector<std::size_t> scratch_hash_;
  std::vector<std::uint64_t> scratch_offset_;

  std::uint64_t packets_seen_ = 0;
  std::uint64_t scanning_packets_ = 0;
  std::uint64_t ignored_out_of_space_ = 0;
  std::uint64_t ignored_non_scanning_ = 0;
  std::uint64_t events_emitted_ = 0;
};

/// Convenience sink that collects events into a vector.
class EventCollector {
 public:
  EventSink sink() {
    return [this](const DarknetEvent& e) { events_.push_back(e); };
  }
  const std::vector<DarknetEvent>& events() const { return events_; }
  std::vector<DarknetEvent> take() { return std::move(events_); }
  /// Checkpoint support: reinstates the pending-event backlog.
  void restore(std::vector<DarknetEvent> events) { events_ = std::move(events); }

 private:
  std::vector<DarknetEvent> events_;
};

}  // namespace orion::telescope
