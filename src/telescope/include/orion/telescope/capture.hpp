// Telescope capture façade: aggregator + dataset-level counters, i.e. the
// "ORION NT" box of the paper, and the event-dataset container the
// detection/characterization layers consume.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "orion/netbase/prefix.hpp"
#include "orion/telescope/aggregator.hpp"
#include "orion/telescope/event.hpp"

namespace orion::telescope {

/// An immutable collection of darknet events plus the darknet context,
/// corresponding to one of the paper's datasets (Darknet-1, Darknet-2).
class EventDataset {
 public:
  EventDataset(std::vector<DarknetEvent> events, std::uint64_t darknet_size);

  const std::vector<DarknetEvent>& events() const { return events_; }
  std::uint64_t darknet_size() const { return darknet_size_; }

  std::size_t event_count() const { return events_.size(); }
  std::uint64_t total_packets() const { return total_packets_; }
  std::size_t unique_sources() const { return unique_sources_; }
  std::int64_t first_day() const { return first_day_; }
  std::int64_t last_day() const { return last_day_; }

 private:
  std::vector<DarknetEvent> events_;  // sorted by start time
  std::uint64_t darknet_size_;
  std::uint64_t total_packets_ = 0;
  std::size_t unique_sources_ = 0;
  std::int64_t first_day_ = 0;
  std::int64_t last_day_ = -1;
};

/// Live capture front-end: feed packets, read counters, take the dataset.
class TelescopeCapture {
 public:
  TelescopeCapture(net::PrefixSet dark_space, AggregatorConfig config);

  void observe(const pkt::Packet& packet);
  /// Batched equivalent of observe() — identical state for any batch size
  /// (the per-record work is delegated to EventAggregator::observe_batch).
  /// On an invalid batch (timestamp regression) nothing is applied.
  void observe_batch(const pkt::PacketBatch& batch);
  /// Closes all live events and returns the accumulated dataset.
  EventDataset finish();

  std::uint64_t packets_captured() const { return packets_captured_; }
  std::size_t unique_sources() const { return sources_.size(); }
  const EventAggregator& aggregator() const { return aggregator_; }

  /// Snapshots the whole capture (aggregator state, collected-but-not-
  /// taken events, source set, counters). A capture restored from the
  /// snapshot finishes with a dataset identical to an uninterrupted run.
  void checkpoint(CheckpointWriter& writer) const;
  void restore(CheckpointReader& reader);

 private:
  EventCollector collector_;
  EventAggregator aggregator_;
  std::uint64_t darknet_size_;
  std::uint64_t packets_captured_ = 0;
  std::unordered_set<net::Ipv4Address> sources_;
};

}  // namespace orion::telescope
