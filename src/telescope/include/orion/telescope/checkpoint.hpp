// Checkpoint container: the versioned, CRC-guarded binary envelope every
// live-pipeline component snapshots into ("OCP1" format). A killed
// process restores from the latest snapshot and resumes with state
// identical to the moment of the snapshot — the crash-resume equivalence
// tests pin that daily AH lists come out byte-identical.
//
// Wire layout (little-endian):
//   magic   "OCP1"                     4 bytes
//   version u64                        (currently 1)
//   length  u64                        payload bytes
//   payload length bytes               component sections, see below
//   crc     u32                        CRC-32 (IEEE) of the payload
//
// Components write a 4-char section tag (as a u64) followed by their own
// fields, so a reader immediately detects a snapshot being restored into
// the wrong component. Static configuration (timeouts, thresholds,
// reservoir capacities) is echoed into the payload and verified against
// the restoring object's configuration: resuming under a different
// configuration would silently change results, so it is an error.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "orion/netbase/io.hpp"

namespace orion::telescope {

/// Thrown when a snapshot's configuration echo (timeouts, thresholds,
/// shard counts, seeds...) does not match the restoring component's
/// configuration. Distinct from generic corruption so callers (e.g.
/// live_monitor --resume) can tell the operator "your flags changed"
/// instead of "checkpoint corrupt" — resuming under a different
/// configuration would silently change results, so it is refused.
class ConfigMismatchError : public std::runtime_error {
 public:
  explicit ConfigMismatchError(const std::string& what)
      : std::runtime_error("checkpoint: " + what) {}
};

/// Packs a 4-character section tag into the u64 the container stores.
constexpr std::uint64_t checkpoint_tag(char a, char b, char c, char d) {
  return std::uint64_t{static_cast<unsigned char>(a)} |
         std::uint64_t{static_cast<unsigned char>(b)} << 8 |
         std::uint64_t{static_cast<unsigned char>(c)} << 16 |
         std::uint64_t{static_cast<unsigned char>(d)} << 24;
}

/// Accumulates a snapshot payload in memory, then writes the framed,
/// CRC-trailed container in one shot (a torn write can only lose the
/// snapshot, never yield a silently-wrong one).
class CheckpointWriter {
 public:
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void u8(std::uint8_t v) { payload_.push_back(v); }
  void bytes(std::span<const std::uint8_t> data);
  void tag(std::uint64_t section_tag) { u64(section_tag); }

  /// Frames and writes the container; returns total bytes written.
  /// Throws std::runtime_error if the stream reports a write failure
  /// (checked after an explicit flush — a buffered failure must not
  /// surface only in the ofstream destructor, which cannot throw).
  std::uint64_t finish(std::ostream& out) const;

  /// Failpoint-instrumented variant through the io::File seam: one
  /// counted write syscall for the whole frame, errors as
  /// net::io::IoError. The archive publication path for checkpoints.
  std::uint64_t finish(net::io::File& out) const;

  std::size_t payload_size() const { return payload_.size(); }

 private:
  std::vector<std::uint8_t> payload_;
};

/// Reads and validates a whole container up front (magic, version,
/// length, CRC), then serves typed reads from the verified payload.
/// Every failure mode — truncation, bad magic, version or CRC mismatch,
/// reading past the payload, a wrong section tag — throws
/// std::runtime_error with context.
class CheckpointReader {
 public:
  explicit CheckpointReader(std::istream& in);

  std::uint64_t u64(const char* what);
  std::int64_t i64(const char* what) {
    return static_cast<std::int64_t>(u64(what));
  }
  double f64(const char* what);
  std::uint8_t u8(const char* what);
  std::vector<std::uint8_t> bytes(std::size_t n, const char* what);

  /// Reads a section tag and throws unless it matches `expected`.
  void expect_tag(std::uint64_t expected, const char* component);

  /// True once the payload is fully consumed.
  bool done() const { return pos_ == payload_.size(); }
  std::size_t remaining() const { return payload_.size() - pos_; }

 private:
  [[noreturn]] void fail(const std::string& why) const;

  std::vector<std::uint8_t> payload_;
  std::size_t pos_ = 0;
};

}  // namespace orion::telescope
