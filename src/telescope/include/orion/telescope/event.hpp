// Darknet events ("logical scans"), the unit of analysis of the whole paper:
// the activity of one source IP toward one destination port and traffic
// type, delimited by an inactivity timeout.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>

#include "orion/netbase/five_tuple.hpp"
#include "orion/netbase/ipv4.hpp"
#include "orion/netbase/simtime.hpp"
#include "orion/packet/fingerprint.hpp"
#include "orion/packet/packet.hpp"

namespace orion::telescope {

/// The logical-scan key: (source IP, darknet destination port, traffic
/// type). ICMP events carry port 0.
struct EventKey {
  net::Ipv4Address src;
  std::uint16_t dst_port = 0;
  pkt::TrafficType type = pkt::TrafficType::TcpSyn;

  friend constexpr auto operator<=>(const EventKey&, const EventKey&) = default;
};

struct EventKeyHash {
  std::size_t operator()(const EventKey& k) const noexcept {
    std::uint64_t h = (std::uint64_t{k.src.value()} << 24) |
                      (std::uint64_t{k.dst_port} << 8) |
                      static_cast<std::uint64_t>(k.type);
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    return static_cast<std::size_t>(h ^ (h >> 31));
  }
};

/// Per-tool packet attribution recorded on every event (drives Figure 4).
using ToolPackets = std::array<std::uint64_t, 4>;  // indexed by ScanTool

constexpr std::size_t tool_index(pkt::ScanTool t) {
  return static_cast<std::size_t>(t);
}

/// A completed darknet event. `unique_dests` is exact for events below the
/// aggregator's exact-tracking limit and an HLL estimate above it.
struct DarknetEvent {
  EventKey key;
  net::SimTime start;
  net::SimTime end;
  std::uint64_t packets = 0;
  std::uint64_t unique_dests = 0;
  ToolPackets packets_by_tool{};

  /// Fraction of the dark space touched — Definition 1's statistic.
  double dispersion(std::uint64_t darknet_size) const {
    return darknet_size == 0 ? 0.0
                             : static_cast<double>(unique_dests) /
                                   static_cast<double>(darknet_size);
  }

  /// The tool that contributed the most packets.
  pkt::ScanTool dominant_tool() const;

  /// Zero-based scenario day the event is attributed to (its start day) —
  /// the paper computes daily statistics from event start times.
  std::int64_t day() const { return start.day(); }

  friend bool operator==(const DarknetEvent&, const DarknetEvent&) = default;
};

using EventSink = std::function<void(const DarknetEvent&)>;

}  // namespace orion::telescope
