// Pipeline health accounting for the hardened live ingest path. Every
// packet handed to the ingest stage ends up in exactly one terminal
// counter, so operators (and the fault-injection property tests) can
// verify that nothing is silently lost: ingested == delivered +
// dropped_late + dropped_overflow + dropped_shed + buffered.
#pragma once

#include <cstdint>
#include <string>

namespace orion::telescope {

struct PipelineHealth {
  /// Packets handed to the ingest stage.
  std::uint64_t ingested = 0;
  /// Packets forwarded, in timestamp order, to the aggregator.
  std::uint64_t delivered = 0;
  /// Packets that arrived out of timestamp order but inside the jitter
  /// window — absorbed by the reorder buffer and delivered in order.
  std::uint64_t reordered = 0;
  /// Quarantined: older than the delivery watermark (a regression beyond
  /// the jitter window), impossible to deliver in order.
  std::uint64_t dropped_late = 0;
  /// Quarantined: the reorder buffer hit its hard bound and had to
  /// advance the watermark past them.
  std::uint64_t dropped_overflow = 0;
  /// Packets currently held in the reorder buffer (terminal only until
  /// finish() flushes them into delivered).
  std::uint64_t buffered = 0;
  /// Shed under backpressure escalation: the dispatcher waited past the
  /// configured escalation threshold on a full shard ring and dropped the
  /// batch rather than stall (ParallelPipeline BackpressureConfig; zero
  /// under the default never-shed policy).
  std::uint64_t dropped_shed = 0;
  /// Hard-stall episodes: times the dispatcher exhausted (or was denied)
  /// its shed budget and fell back to blocking on a full ring. Not a
  /// packet counter — stalled packets are eventually delivered.
  std::uint64_t stalls = 0;
  /// Worker deaths the supervisor healed by restarting the shard from its
  /// last snapshot. Not a packet counter.
  std::uint64_t worker_restarts = 0;

  std::uint64_t dropped() const {
    return dropped_late + dropped_overflow + dropped_shed;
  }

  /// Conservation check: true when every ingested packet is accounted
  /// for in a terminal (or buffered) counter.
  bool consistent() const {
    return ingested ==
           delivered + dropped_late + dropped_overflow + dropped_shed + buffered;
  }

  /// One-line operator summary.
  std::string to_string() const;

  friend constexpr bool operator==(const PipelineHealth&,
                                   const PipelineHealth&) = default;
};

}  // namespace orion::telescope
