// Hardened live ingest: the fault-tolerant front door of the telescope
// pipeline. Real capture feeds deliver jittered, occasionally regressed
// timestamps; the aggregator demands a sorted stream and throws on a
// violation. ResilientIngest sits between the two — a bounded reorder
// buffer absorbs jitter up to the configured window, anything
// undeliverable is quarantined (never thrown), and every packet is
// accounted for in a PipelineHealth counter. Checkpoint/restore covers
// the in-flight buffer, so a resumed pipeline replays held packets
// exactly as the uninterrupted one would have.
#pragma once

#include <cstdint>

#include "orion/telescope/health.hpp"
#include "orion/telescope/reorder.hpp"

namespace orion::telescope {

class CheckpointReader;
class CheckpointWriter;

class ResilientIngest {
 public:
  /// Wraps an arbitrary in-order packet sink (usually
  /// TelescopeCapture::observe or EventAggregator::observe). An optional
  /// quarantine sink receives every dropped packet for offline triage.
  ResilientIngest(ReorderConfig config, ReorderBuffer::Sink sink,
                  ReorderBuffer::Sink quarantine = nullptr);

  /// Never throws on disorder: absorbs, delivers, or quarantines.
  void observe(const pkt::Packet& packet);

  /// Flushes the reorder buffer (end of stream / before final snapshot).
  void finish();

  /// Live health counters; `buffered` reflects the current buffer depth.
  const PipelineHealth& health() const;

  /// Snapshots the in-flight buffer and counters. The downstream
  /// aggregator/capture snapshots itself separately.
  void checkpoint(CheckpointWriter& writer) const;
  /// Restores buffer and counters; config must match the snapshot.
  void restore(CheckpointReader& reader);

 private:
  ReorderConfig config_;
  ReorderBuffer::Sink sink_;
  ReorderBuffer::Sink quarantine_;
  ReorderBuffer buffer_;
  mutable PipelineHealth health_;
};

}  // namespace orion::telescope
