// Bounded reorder buffer: turns a jittered, near-sorted packet stream
// into the strictly non-decreasing stream the event aggregator requires.
// Packets are held until the stream clock has advanced past their
// timestamp by the jitter window; anything older than the delivery
// watermark when it arrives cannot be delivered in order and is handed
// to the late-packet sink (quarantine) instead of throwing.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "orion/netbase/simtime.hpp"
#include "orion/packet/packet.hpp"

namespace orion::telescope {

struct ReorderConfig {
  /// Maximum timestamp jitter absorbed: a packet may arrive up to this
  /// long after a later-stamped packet and still be delivered in order.
  net::Duration window = net::Duration::seconds(5);
  /// Hard bound on held packets. When full, the oldest held packet is
  /// force-delivered (raising the watermark), which may turn not-yet-
  /// arrived stragglers into late drops — bounded memory wins.
  std::size_t max_buffered = 65536;
};

class ReorderBuffer {
 public:
  using Sink = std::function<void(const pkt::Packet&)>;

  /// Terminal classification of one push().
  enum class Outcome {
    Buffered,      // held, in-order so far
    Reordered,     // held, arrived out of order but within the window
    Late,          // beyond the jitter window: handed to the late sink
    LateOverflow,  // inside the window, but the watermark was raised past
                   // it by a forced overflow release: handed to the late
                   // sink (reason = buffer pressure, not stream jitter)
  };

  ReorderBuffer(ReorderConfig config, Sink deliver, Sink late = nullptr);

  Outcome push(const pkt::Packet& packet);

  /// Delivers everything still held, in timestamp order (end of stream).
  void flush();

  std::size_t buffered() const { return heap_.size(); }
  /// Packets force-delivered because the buffer hit max_buffered.
  std::uint64_t overflow_releases() const { return overflow_releases_; }
  net::SimTime watermark() const { return watermark_; }

  /// Checkpoint support: the held packets (heap order, not sorted) and
  /// the stream clock, so a restored buffer continues identically.
  const std::vector<pkt::Packet>& held() const { return heap_; }
  net::SimTime max_seen() const { return max_seen_; }
  bool saw_packet() const { return saw_packet_; }
  void restore_state(std::vector<pkt::Packet> held, net::SimTime max_seen,
                     net::SimTime watermark, bool saw_packet,
                     std::uint64_t overflow_releases);

 private:
  void drain();
  pkt::Packet pop_oldest();

  ReorderConfig config_;
  Sink deliver_;
  Sink late_;
  std::vector<pkt::Packet> heap_;  // min-heap on timestamp
  net::SimTime max_seen_ = net::SimTime::epoch();
  net::SimTime watermark_ = net::SimTime::epoch();  // deliveries are >= this
  bool saw_packet_ = false;
  std::uint64_t overflow_releases_ = 0;
};

}  // namespace orion::telescope
