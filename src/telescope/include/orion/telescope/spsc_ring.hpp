// Bounded single-producer / single-consumer ring buffer: the only
// cross-thread channel in the parallel telescope pipeline. The dispatcher
// (producer) pushes packet batches, one worker shard (consumer) pops them.
//
// Lock-free in the steady state: head/tail are monotonically increasing
// counters; the producer owns head, the consumer owns tail, and each side
// publishes with a release store the other reads with an acquire load.
// A full ring makes try_push fail — the pipeline's backpressure policy is
// to *block the producer* (spin-then-yield-then-nap), never to drop, so
// in-flight memory is bounded by ring_capacity × shards × batch_size
// packets (DESIGN.md §9.3).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace orion::telescope {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. False when the ring is full (value untouched).
  bool try_push(T& value) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - tail_.load(std::memory_order_acquire) == slots_.size()) {
      return false;
    }
    slots_[static_cast<std::size_t>(head) & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[static_cast<std::size_t>(tail) & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy (exact from either owning thread).
  std::size_t size() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }
  bool empty() const { return size() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 1;
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

/// Shared wait strategy for both ring sides: brief spin for the
/// low-latency case, then yield, then short naps so a starved side (or a
/// single-core host) never burns the CPU the other side needs.
inline void spsc_backoff(unsigned& spins) {
  ++spins;
  if (spins < 16) return;
  if (spins < 64) {
    std::this_thread::yield();
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(50));
}

}  // namespace orion::telescope
