// Bounded single-producer / single-consumer ring buffer: the only
// cross-thread channel in the parallel telescope pipeline. The dispatcher
// (producer) pushes packet batches, one worker shard (consumer) pops them.
//
// Lock-free in the steady state: head/tail are monotonically increasing
// counters; the producer owns head, the consumer owns tail, and each side
// publishes with a release store the other reads with an acquire load.
// A full ring makes try_push fail — the pipeline's backpressure policy is
// to *block the producer* (spin-then-yield-then-nap), never to drop, so
// in-flight memory is bounded by ring_capacity × shards × batch_size
// packets (DESIGN.md §9.3).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

namespace orion::telescope {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. False when the ring is full (value untouched).
  bool try_push(T& value) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - tail_.load(std::memory_order_acquire) == slots_.size()) {
      return false;
    }
    slots_[static_cast<std::size_t>(head) & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Producer side, span variant: moves up to values.size() items into the
  /// ring and returns how many were taken (0 when full). One acquire load
  /// of tail and one release store of head amortized over the whole span —
  /// the per-item cost of the cross-core handshake shrinks with span size.
  std::size_t try_push_n(std::span<T> values) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t free_slots = slots_.size() - static_cast<std::size_t>(head - tail);
    const std::size_t n = values.size() < free_slots ? values.size() : free_slots;
    for (std::size_t i = 0; i < n; ++i) {
      slots_[static_cast<std::size_t>(head + i) & mask_] = std::move(values[i]);
    }
    if (n > 0) head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Consumer side. False when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[static_cast<std::size_t>(tail) & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side, span variant: moves up to out.size() items out of the
  /// ring and returns how many were delivered (0 when empty). Mirrors
  /// try_push_n: one acquire load of head, one release store of tail.
  std::size_t try_pop_n(std::span<T> out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::size_t avail = static_cast<std::size_t>(head - tail);
    const std::size_t n = out.size() < avail ? out.size() : avail;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::move(slots_[static_cast<std::size_t>(tail + i) & mask_]);
    }
    if (n > 0) tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Approximate occupancy (exact from either owning thread).
  std::size_t size() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }
  bool empty() const { return size() == 0; }

  /// Cooperative shutdown token. The orderly drain path still uses an
  /// in-band stop batch (every queued batch is processed first); the token
  /// exists for ABORT paths — a dispatcher tearing down after an error must
  /// be able to stop a parked consumer without pushing into a ring that may
  /// be full, and a consumer spinning on empty must be able to notice the
  /// producer is gone. Either side may call request_stop(); it is sticky.
  void request_stop() { stop_.store(true, std::memory_order_release); }
  bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 1;
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::atomic<bool> stop_{false};
};

/// Shared wait strategy for both ring sides: brief spin for the
/// low-latency case, then yield, then short naps so a starved side (or a
/// single-core host) never burns the CPU the other side needs.
inline void spsc_backoff(unsigned& spins) {
  ++spins;
  if (spins < 16) return;
  if (spins < 64) {
    std::this_thread::yield();
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(50));
}

}  // namespace orion::telescope
