// Darknet-event persistence: a compact binary format (magic + version +
// darknet size + fixed-width records) and a CSV export, so longitudinal
// event datasets can be archived and reloaded without re-simulation or
// re-aggregation — the role of the ORION "darknet events" files.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "orion/telescope/capture.hpp"
#include "orion/telescope/event.hpp"

namespace orion::telescope {

/// Writes a dataset; returns bytes written. The format is little-endian,
/// fixed-width, versioned ("ODE1"). Throws std::runtime_error if the
/// stream reports a write failure (short write, full disk).
std::uint64_t write_events_binary(const EventDataset& dataset, std::ostream& out);

/// Reads a dataset written by write_events_binary. Throws
/// std::runtime_error (with context) on bad magic, version, truncation or
/// a record count mismatch.
EventDataset read_events_binary(std::istream& in);

/// Salvage-mode read for truncated or corrupt ODE1 files: recovers every
/// complete, valid record preceding the first error instead of throwing
/// the whole file away.
struct SalvageResult {
  EventDataset dataset{{}, 0};
  /// Record count the header declared (0 when the header itself is bad).
  std::uint64_t declared_count = 0;
  /// Complete records recovered into `dataset`.
  std::uint64_t recovered_count = 0;
  /// True when the file parsed cleanly end to end.
  bool complete = false;
  /// First error encountered when !complete (same message the strict
  /// reader would have thrown).
  std::string error;
};

SalvageResult read_events_binary_salvage(std::istream& in);

/// Human-readable CSV: one row per event with start/end timestamps (ns),
/// key, packets, unique destinations and per-tool packet counts.
void write_events_csv(const EventDataset& dataset, std::ostream& out);

}  // namespace orion::telescope
