// Darknet-event persistence: a compact binary format (magic + version +
// darknet size + fixed-width records) and a CSV export, so longitudinal
// event datasets can be archived and reloaded without re-simulation or
// re-aggregation — the role of the ORION "darknet events" files.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "orion/telescope/capture.hpp"
#include "orion/telescope/event.hpp"

namespace orion::telescope {

/// Writes a dataset; returns bytes written. The format is little-endian,
/// fixed-width, versioned ("ODE1").
std::uint64_t write_events_binary(const EventDataset& dataset, std::ostream& out);

/// Reads a dataset written by write_events_binary. Throws
/// std::runtime_error (with context) on bad magic, version, truncation or
/// a record count mismatch.
EventDataset read_events_binary(std::istream& in);

/// Human-readable CSV: one row per event with start/end timestamps (ns),
/// key, packets, unique destinations and per-tool packet counts.
void write_events_csv(const EventDataset& dataset, std::ostream& out);

}  // namespace orion::telescope
