// Event inactivity-timeout derivation (the paper's footnote 1, after Moore
// et al.'s "flow timeout problem").
#pragma once

#include <cstdint>

#include "orion/netbase/simtime.hpp"

namespace orion::telescope {

/// Derives the event-expiration timeout for a darknet of `darknet_size`
/// addresses, assuming a "long scan" probing all of IPv4 uniformly at
/// `rate_pps` for `scan_duration`.
///
/// Such a scan hits the darknet as a Poisson process with mean gap
///   g = 2^32 / (rate * darknet_size)
/// and lands h = rate * duration * darknet_size / 2^32 probes in total.
/// The expected maximum of h exponential(1/g) gaps is about g * ln(h), so a
/// timeout of that magnitude keeps a long scan in one event with high
/// probability. With the paper's parameters (475k dark IPs, 100 pps,
/// 2 days) this yields ≈ 11 minutes — the paper's "around 10 minutes".
net::Duration derive_timeout(std::uint64_t darknet_size, double rate_pps,
                             net::Duration scan_duration);

}  // namespace orion::telescope
