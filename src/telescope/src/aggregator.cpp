#include "orion/telescope/aggregator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "orion/telescope/checkpoint.hpp"

namespace orion::telescope {

namespace {

constexpr std::uint64_t kAggregatorTag = checkpoint_tag('A', 'G', 'G', '1');

}  // namespace

EventAggregator::EventAggregator(net::PrefixSet dark_space,
                                 AggregatorConfig config, EventSink sink)
    : dark_space_(std::move(dark_space)),
      config_(config),
      sink_(std::move(sink)) {
  if (config_.timeout.total_nanos() <= 0) {
    throw std::invalid_argument("EventAggregator: non-positive timeout");
  }
  live_.reserve(config_.live_reserve);
}

void EventAggregator::observe(const pkt::Packet& packet) {
  if (saw_packet_ && packet.timestamp < last_timestamp_) {
    throw std::invalid_argument(
        "EventAggregator::observe: timestamps must be non-decreasing");
  }
  if (!saw_packet_) {
    next_sweep_ = packet.timestamp + config_.sweep_interval;
    saw_packet_ = true;
  }
  last_timestamp_ = packet.timestamp;
  ++packets_seen_;

  if (packet.timestamp >= next_sweep_) sweep(packet.timestamp);

  if (!dark_space_.contains(packet.tuple.dst)) {
    ++ignored_out_of_space_;
    return;
  }
  const pkt::TrafficType type = packet.traffic_type();
  if (type == pkt::TrafficType::Other) {
    ++ignored_non_scanning_;
    return;
  }
  ++scanning_packets_;

  const EventKey key{packet.tuple.src,
                     type == pkt::TrafficType::IcmpEchoReq ? std::uint16_t{0}
                                                           : packet.tuple.dst_port,
                     type};
  LiveEvent* live = live_.find(key);
  if (live != nullptr &&
      packet.timestamp - live->last_seen > config_.timeout) {
    // The previous event for this key already expired; emit it and start a
    // fresh one. (The sweep usually does this, but a key can stay idle
    // across a sweep boundary when sweeps are coarse.)
    emit(key, *live);
    live_.erase(key);
    live = nullptr;
  }
  if (live == nullptr) {
    live = live_
               .try_emplace(key, LiveEvent(config_.exact_dest_limit,
                                           config_.hll_precision))
               .first;
    live->start = packet.timestamp;
  }
  live->last_seen = packet.timestamp;
  ++live->packets;
  ++live->packets_by_tool[tool_index(pkt::fingerprint_of(packet))];
  live->dests.add(dark_space_.offset_of(packet.tuple.dst));
}

void EventAggregator::advance_to(net::SimTime now) {
  if (saw_packet_ && now < last_timestamp_) {
    throw std::invalid_argument("EventAggregator::advance_to: time regression");
  }
  last_timestamp_ = now;
  sweep(now);
}

void EventAggregator::finish() {
  live_.for_each([this](const EventKey& key, const LiveEvent& live) {
    emit(key, live);
  });
  live_.clear();
}

void EventAggregator::emit(const EventKey& key, const LiveEvent& live) {
  DarknetEvent event;
  event.key = key;
  event.start = live.start;
  event.end = live.last_seen;
  event.packets = live.packets;
  event.packets_by_tool = live.packets_by_tool;
  event.unique_dests = live.dests.estimate();
  ++events_emitted_;
  if (sink_) sink_(event);
}

void EventAggregator::checkpoint(CheckpointWriter& writer) const {
  writer.tag(kAggregatorTag);
  // Configuration echo: resuming under different parameters would
  // silently change event delimitation, so restore() verifies these.
  writer.i64(config_.timeout.total_nanos());
  writer.u64(config_.exact_dest_limit);
  writer.u64(static_cast<std::uint64_t>(config_.hll_precision));
  writer.i64(config_.sweep_interval.total_nanos());
  writer.u64(dark_space_.prefixes().size());
  for (const net::Prefix& p : dark_space_.prefixes()) {
    writer.u64(p.base().value());
    writer.u64(static_cast<std::uint64_t>(p.length()));
  }
  // Stream clock and counters.
  writer.u8(saw_packet_ ? 1 : 0);
  writer.i64(last_timestamp_.since_epoch().total_nanos());
  writer.i64(next_sweep_.since_epoch().total_nanos());
  writer.u64(packets_seen_);
  writer.u64(scanning_packets_);
  writer.u64(ignored_out_of_space_);
  writer.u64(ignored_non_scanning_);
  writer.u64(events_emitted_);
  // Live-event table, in key order so snapshots are byte-deterministic
  // regardless of the table's probe-slot layout.
  writer.u64(live_.size());
  std::vector<std::pair<EventKey, const LiveEvent*>> ordered;
  ordered.reserve(live_.size());
  live_.for_each([&ordered](const EventKey& key, const LiveEvent& live) {
    ordered.emplace_back(key, &live);
  });
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, live_ptr] : ordered) {
    const LiveEvent& live = *live_ptr;
    writer.u64(key.src.value());
    writer.u64(key.dst_port);
    writer.u8(static_cast<std::uint8_t>(key.type));
    writer.i64(live.start.since_epoch().total_nanos());
    writer.i64(live.last_seen.since_epoch().total_nanos());
    writer.u64(live.packets);
    for (const std::uint64_t t : live.packets_by_tool) writer.u64(t);
    writer.u8(live.dests.is_exact() ? 0 : 1);
    std::vector<std::uint64_t> exact(live.dests.exact_keys().begin(),
                                     live.dests.exact_keys().end());
    std::sort(exact.begin(), exact.end());
    writer.u64(exact.size());
    for (const std::uint64_t k : exact) writer.u64(k);
    writer.bytes(live.dests.sketch().registers());
  }
}

void EventAggregator::restore(CheckpointReader& reader) {
  reader.expect_tag(kAggregatorTag, "EventAggregator");
  const bool config_matches =
      net::Duration::nanos(reader.i64("timeout")) == config_.timeout &&
      reader.u64("exact dest limit") == config_.exact_dest_limit &&
      reader.u64("hll precision") ==
          static_cast<std::uint64_t>(config_.hll_precision) &&
      net::Duration::nanos(reader.i64("sweep interval")) ==
          config_.sweep_interval;
  if (!config_matches) {
    throw std::runtime_error(
        "checkpoint: EventAggregator configuration mismatch");
  }
  const std::uint64_t prefix_count = reader.u64("prefix count");
  bool space_matches = prefix_count == dark_space_.prefixes().size();
  for (std::uint64_t i = 0; i < prefix_count; ++i) {
    const auto base = static_cast<std::uint32_t>(reader.u64("prefix base"));
    const auto length = static_cast<int>(reader.u64("prefix length"));
    if (space_matches) {
      const net::Prefix& p = dark_space_.prefixes()[static_cast<std::size_t>(i)];
      space_matches = p.base().value() == base && p.length() == length;
    }
  }
  if (!space_matches) {
    throw std::runtime_error("checkpoint: EventAggregator dark-space mismatch");
  }
  saw_packet_ = reader.u8("saw packet") != 0;
  last_timestamp_ = net::SimTime::at(net::Duration::nanos(reader.i64("last timestamp")));
  next_sweep_ = net::SimTime::at(net::Duration::nanos(reader.i64("next sweep")));
  packets_seen_ = reader.u64("packets seen");
  scanning_packets_ = reader.u64("scanning packets");
  ignored_out_of_space_ = reader.u64("ignored out of space");
  ignored_non_scanning_ = reader.u64("ignored non scanning");
  events_emitted_ = reader.u64("events emitted");
  const std::uint64_t live_count = reader.u64("live event count");
  live_.clear();
  live_.reserve(static_cast<std::size_t>(live_count));
  for (std::uint64_t i = 0; i < live_count; ++i) {
    EventKey key;
    key.src = net::Ipv4Address(static_cast<std::uint32_t>(reader.u64("event src")));
    key.dst_port = static_cast<std::uint16_t>(reader.u64("event port"));
    const std::uint8_t type = reader.u8("event type");
    if (type > static_cast<std::uint8_t>(pkt::TrafficType::Other)) {
      throw std::runtime_error("checkpoint: bad traffic type");
    }
    key.type = static_cast<pkt::TrafficType>(type);
    LiveEvent live(config_.exact_dest_limit, config_.hll_precision);
    live.start = net::SimTime::at(net::Duration::nanos(reader.i64("event start")));
    live.last_seen =
        net::SimTime::at(net::Duration::nanos(reader.i64("event last seen")));
    live.packets = reader.u64("event packets");
    for (std::uint64_t& t : live.packets_by_tool) t = reader.u64("tool packets");
    const bool promoted = reader.u8("estimator promoted") != 0;
    const std::uint64_t exact_count = reader.u64("exact key count");
    if (exact_count > config_.exact_dest_limit) {
      throw std::runtime_error("checkpoint: exact key count over limit");
    }
    std::unordered_set<std::uint64_t> exact;
    exact.reserve(static_cast<std::size_t>(exact_count));
    for (std::uint64_t k = 0; k < exact_count; ++k) {
      exact.insert(reader.u64("exact key"));
    }
    stats::HyperLogLog sketch(config_.hll_precision);
    sketch.set_registers(reader.bytes(sketch.registers().size(), "hll registers"));
    live.dests.restore(promoted, std::move(exact), std::move(sketch));
    live_.try_emplace(key, std::move(live));
  }
}

void EventAggregator::sweep(net::SimTime now) {
  live_.erase_if([&](const EventKey& key, const LiveEvent& live) {
    if (now - live.last_seen > config_.timeout) {
      emit(key, live);
      return true;
    }
    return false;
  });
  next_sweep_ = now + config_.sweep_interval;
}

}  // namespace orion::telescope
