#include "orion/telescope/aggregator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "orion/packet/classify.hpp"
#include "orion/telescope/checkpoint.hpp"

namespace orion::telescope {

namespace {

constexpr std::uint64_t kAggregatorTag = checkpoint_tag('A', 'G', 'G', '1');

}  // namespace

EventAggregator::EventAggregator(net::PrefixSet dark_space,
                                 AggregatorConfig config, EventSink sink)
    : dark_space_(std::move(dark_space)),
      config_(config),
      sink_(std::move(sink)) {
  if (config_.timeout.total_nanos() <= 0) {
    throw std::invalid_argument("EventAggregator: non-positive timeout");
  }
  live_.reserve(config_.live_reserve);
}

void EventAggregator::observe(const pkt::Packet& packet) {
  if (saw_packet_ && packet.timestamp < last_timestamp_) {
    throw std::invalid_argument(
        "EventAggregator::observe: timestamps must be non-decreasing");
  }
  aux_valid_ = false;  // scalar path does not maintain the batch aux state
  if (!saw_packet_) {
    next_sweep_ = packet.timestamp + config_.sweep_interval;
    saw_packet_ = true;
  }
  last_timestamp_ = packet.timestamp;
  ++packets_seen_;

  if (packet.timestamp >= next_sweep_) sweep(packet.timestamp);

  if (!dark_space_.contains(packet.tuple.dst)) {
    ++ignored_out_of_space_;
    return;
  }
  const pkt::TrafficType type = packet.traffic_type();
  if (type == pkt::TrafficType::Other) {
    ++ignored_non_scanning_;
    return;
  }
  ++scanning_packets_;

  const EventKey key{packet.tuple.src,
                     type == pkt::TrafficType::IcmpEchoReq ? std::uint16_t{0}
                                                           : packet.tuple.dst_port,
                     type};
  LiveEvent* live = live_.find(key);
  if (live != nullptr &&
      packet.timestamp - live->last_seen > config_.timeout) {
    // The previous event for this key already expired; emit it and start a
    // fresh one. (The sweep usually does this, but a key can stay idle
    // across a sweep boundary when sweeps are coarse.)
    emit(key, *live);
    live_.erase(key);
    live = nullptr;
  }
  if (live == nullptr) {
    live = live_
               .try_emplace(key, LiveEvent(config_.exact_dest_limit,
                                           config_.hll_precision))
               .first;
    live->start = packet.timestamp;
  }
  live->last_seen = packet.timestamp;
  ++live->packets;
  ++live->packets_by_tool[tool_index(pkt::fingerprint_of(packet))];
  live->dests.add(dark_space_.offset_of(packet.tuple.dst));
}

void EventAggregator::observe_batch(const pkt::PacketBatch& batch,
                                    std::span<const std::uint8_t> member) {
  const std::size_t n = batch.size();
  if (n == 0) return;
  if (!member.empty() && member.size() != n) {
    throw std::invalid_argument(
        "EventAggregator::observe_batch: membership column size mismatch");
  }

  // Whole-batch monotonicity validation before any record is applied.
  {
    std::int64_t prev = saw_packet_
                            ? last_timestamp_.since_epoch().total_nanos()
                            : std::numeric_limits<std::int64_t>::min();
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t ts = batch.timestamp_nanos(i);
      if (ts < prev) {
        throw std::invalid_argument(
            "EventAggregator::observe: timestamps must be non-decreasing");
      }
      prev = ts;
    }
  }

  if (!saw_packet_) {
    next_sweep_ = batch.timestamp(0) + config_.sweep_interval;
    saw_packet_ = true;
  }
  if (!aux_valid_) rebuild_aux();

  // Pass 1: classify every record and precompute key hashes / dark-space
  // offsets into the scratch columns. kind: 0 = outside the dark space,
  // 1 = non-scanning, 2 = scanning. The dark-space membership, traffic
  // classification, and tool attribution columns are filled by the SIMD
  // batch kernels (DESIGN.md §14) — on the scalar tier those dispatch to
  // the same constexpr cores the original per-record loop called, so the
  // scratch contents are identical at every tier.
  scratch_kind_.resize(n);
  scratch_type_.resize(n);
  scratch_tool_.resize(n);
  scratch_key_.resize(n);
  scratch_hash_.resize(n);
  scratch_offset_.resize(n);
  // Membership: trust the caller's precomputed column when given (the
  // dispatcher ran the same contains_batch kernel once for the whole
  // batch), else compute it here.
  const std::uint8_t* member_col = member.data();
  if (member.empty()) {
    scratch_member_.resize(n);
    dark_space_.contains_batch(batch.dst_col().data(), n, scratch_member_.data());
    member_col = scratch_member_.data();
  }
  pkt::classify_traffic_batch(batch, scratch_type_.data());
  pkt::classify_tool_batch(batch, scratch_tool_.data());
  std::uint64_t out_of_space = 0;
  std::uint64_t non_scanning = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!member_col[i]) {
      scratch_kind_[i] = 0;
      ++out_of_space;
      continue;
    }
    const pkt::TrafficType type =
        static_cast<pkt::TrafficType>(scratch_type_[i]);
    if (type == pkt::TrafficType::Other) {
      scratch_kind_[i] = 1;
      ++non_scanning;
      continue;
    }
    scratch_kind_[i] = 2;
    scratch_key_[i] =
        EventKey{batch.src(i),
                 type == pkt::TrafficType::IcmpEchoReq ? std::uint16_t{0}
                                                       : batch.dst_port(i),
                 type};
    scratch_hash_[i] = EventKeyHash{}(scratch_key_[i]);
    scratch_offset_[i] = dark_space_.offset_of(batch.dst(i));
  }

  // Pass 2: apply the records in order. Sweep scheduling is identical to
  // the scalar loop — a sweep fires before applying the first record whose
  // timestamp reaches next_sweep_ — but the `maybe_sweep` flag hoists the
  // per-record comparison: timestamps are non-decreasing, so if the last
  // record is still before next_sweep_, no record in the batch can fire.
  constexpr std::size_t kPrefetchAhead = 8;
  const std::int64_t timeout_ns = config_.timeout.total_nanos();
  bool maybe_sweep = batch.timestamp(n - 1) >= next_sweep_;
  for (std::size_t i = 0; i < n; ++i) {
    const net::SimTime ts = batch.timestamp(i);
    if (maybe_sweep && ts >= next_sweep_) {
      batch_sweep(ts);
      maybe_sweep = batch.timestamp(n - 1) >= next_sweep_;
    }
    if (scratch_kind_[i] != 2) continue;
    if (i + kPrefetchAhead < n && scratch_kind_[i + kPrefetchAhead] == 2) {
      live_.prefetch(scratch_hash_[i + kPrefetchAhead]);
    }
    const EventKey& key = scratch_key_[i];
    const std::size_t hash = scratch_hash_[i];
    const std::int64_t ts_ns = ts.since_epoch().total_nanos();
    LiveEvent* live = live_.find_hashed(key, hash);
    if (live != nullptr &&
        ts_ns - live->last_seen.since_epoch().total_nanos() > timeout_ns) {
      // Same expired-on-touch handling as the scalar path. The wheel stamp
      // for this key goes stale and is dropped at validation time.
      emit(key, *live);
      live_.erase_hashed(key, hash);
      live = nullptr;
    }
    // Slide the wheel window before this record's stamp is laid down;
    // records land at the stream head, so the new bucket is the top one.
    const std::int64_t g = ts_ns / aux_granule_ns_;
    if (g - aux_base_granule_ >= static_cast<std::int64_t>(kAuxBuckets)) {
      aux_rebase(g);
    }
    const std::size_t new_bucket =
        static_cast<std::size_t>(g - aux_base_granule_);
    if (live == nullptr) {
      live = live_
                 .try_emplace_hashed(key, hash,
                                     LiveEvent(config_.exact_dest_limit,
                                               config_.hll_precision))
                 .first;
      live->start = ts;
      aux_wheel_[new_bucket].emplace_back(key, hash);
    } else {
      const std::size_t old_bucket =
          aux_bucket_of(live->last_seen.since_epoch().total_nanos());
      if (old_bucket != new_bucket) {
        // The event migrated a granule; its old stamp goes stale in place.
        aux_wheel_[new_bucket].emplace_back(key, hash);
      }
    }
    live->last_seen = ts;
    ++live->packets;
    ++live->packets_by_tool[scratch_tool_[i]];
    live->dests.add(scratch_offset_[i]);
  }

  last_timestamp_ = batch.timestamp(n - 1);
  packets_seen_ += n;
  ignored_out_of_space_ += out_of_space;
  ignored_non_scanning_ += non_scanning;
  scanning_packets_ += n - out_of_space - non_scanning;
}

std::size_t EventAggregator::aux_bucket_of(std::int64_t last_seen_ns) const {
  const std::int64_t g = last_seen_ns / aux_granule_ns_ - aux_base_granule_;
  if (g <= 0) return 0;
  return g >= static_cast<std::int64_t>(kAuxBuckets)
             ? kAuxBuckets - 1  // unreachable when rebased before increments
             : static_cast<std::size_t>(g);
}

/// Slides the wheel window so `top_granule` maps to the last bucket,
/// folding every bucket that falls off the bottom into bucket 0 (whose
/// freshness test has no lower bound, so folded stamps stay valid).
/// Only runs when stream time crosses a granule boundary past the window
/// top; vectors are swapped, not copied, so capacities are recycled.
void EventAggregator::aux_rebase(std::int64_t top_granule) {
  const std::int64_t new_base =
      top_granule - (static_cast<std::int64_t>(kAuxBuckets) - 1);
  const std::int64_t shift = new_base - aux_base_granule_;
  if (shift <= 0) return;
  // Ascending order guarantees every swap target was already vacated.
  for (std::size_t i = 1; i < kAuxBuckets; ++i) {
    if (aux_wheel_[i].empty()) continue;
    const std::int64_t j = static_cast<std::int64_t>(i) - shift;
    if (j <= 0) {
      aux_wheel_[0].insert(aux_wheel_[0].end(), aux_wheel_[i].begin(),
                           aux_wheel_[i].end());
      aux_wheel_[i].clear();
    } else {
      std::swap(aux_wheel_[static_cast<std::size_t>(j)], aux_wheel_[i]);
      aux_wheel_[i].clear();
    }
  }
  aux_base_granule_ = new_base;
}

void EventAggregator::rebuild_aux() {
  // Granule width: the live window (timeout + one sweep interval) spread
  // over the non-saturating buckets, so steady-state events never land in
  // bucket 0 and the expiry bound has ~granule resolution.
  const std::int64_t window =
      config_.timeout.total_nanos() + config_.sweep_interval.total_nanos();
  aux_granule_ns_ = window / static_cast<std::int64_t>(kAuxBuckets - 2) + 1;
  aux_base_granule_ =
      last_timestamp_.since_epoch().total_nanos() / aux_granule_ns_ -
      (static_cast<std::int64_t>(kAuxBuckets) - 1);
  for (auto& bucket : aux_wheel_) bucket.clear();
  live_.for_each([this](const EventKey& key, const LiveEvent& live) {
    aux_wheel_[aux_bucket_of(live.last_seen.since_epoch().total_nanos())]
        .emplace_back(key, EventKeyHash{}(key));
  });
  aux_valid_ = true;
}

void EventAggregator::batch_sweep(net::SimTime now) {
  const std::int64_t now_ns = now.since_epoch().total_nanos();
  const std::int64_t timeout_ns = config_.timeout.total_nanos();
  const std::int64_t cutoff_ns = now_ns - timeout_ns;
  // Phase 1 — gather candidates. An event expires iff last_seen < cutoff.
  // Bucket i >= 1 only holds stamps laid down at last_seen >=
  // (base+i) * granule, and those lower bounds grow with i, so the walk
  // stops at the first bucket that clears the cutoff; bucket 0 has no
  // lower bound and is always inspected. Each stamp is validated against
  // the live table: it is stale (dropped) when its key is gone, or when
  // the event was touched into a different granule since the stamp was
  // laid down (a fresher stamp exists in a later bucket). Fresh stamps of
  // not-yet-expired events are compacted back into their bucket.
  aux_candidates_.clear();
  for (std::size_t i = 0; i < kAuxBuckets; ++i) {
    if (i > 0 &&
        (aux_base_granule_ + static_cast<std::int64_t>(i)) * aux_granule_ns_ >=
            cutoff_ns) {
      break;
    }
    std::vector<AuxStamp>& bucket = aux_wheel_[i];
    if (bucket.empty()) continue;
    std::size_t kept = 0;
    for (const AuxStamp& stamp : bucket) {
      const LiveEvent* live = live_.find_hashed(stamp.first, stamp.second);
      if (live == nullptr) continue;  // stale: event ended or was re-keyed
      const std::int64_t ls_ns = live->last_seen.since_epoch().total_nanos();
      const std::int64_t g = ls_ns / aux_granule_ns_;
      const bool fresh =
          i == 0 ? g <= aux_base_granule_
                 : g == aux_base_granule_ + static_cast<std::int64_t>(i);
      if (!fresh) continue;  // stale: touched since the stamp was laid down
      if (now_ns - ls_ns > timeout_ns) {
        aux_candidates_.push_back(stamp);
      } else {
        bucket[kept++] = stamp;
      }
    }
    bucket.resize(kept);
  }
  // Phase 2 — emit in the scalar erase_if order without scanning the
  // table: repeatedly the candidate at the smallest current slot index at
  // or past the previous emission's slot (erase's backward shift refills
  // the emptied slot, which erase_if re-tests before advancing, hence
  // ">=" not ">"). Slot indices move under erasure, so every survivor is
  // re-queried each round. A candidate shifted below the frontier is
  // exactly the element the scalar scan wraps past: it is re-stamped so
  // the *next* sweep emits it, matching the scalar path's deferral.
  constexpr std::size_t kNoSlot =
      net::FlatMap<EventKey, LiveEvent, EventKeyHash>::npos;
  std::size_t pos = 0;
  while (!aux_candidates_.empty()) {
    std::size_t best = aux_candidates_.size();
    std::size_t best_slot = kNoSlot;
    for (std::size_t j = 0; j < aux_candidates_.size();) {
      const std::size_t slot = live_.slot_index_hashed(
          aux_candidates_[j].first, aux_candidates_[j].second);
      if (slot == kNoSlot) {
        // Duplicate stamp (rebases can fold two stamps of one key into
        // bucket 0); its event was already emitted this round.
        aux_candidates_[j] = aux_candidates_.back();
        aux_candidates_.pop_back();
        continue;
      }
      if (slot >= pos && slot < best_slot) {
        best = j;
        best_slot = slot;
      }
      ++j;
    }
    if (best == aux_candidates_.size()) {
      for (const AuxStamp& stamp : aux_candidates_) {
        const LiveEvent* live = live_.find_hashed(stamp.first, stamp.second);
        aux_wheel_[aux_bucket_of(live->last_seen.since_epoch().total_nanos())]
            .push_back(stamp);
      }
      break;
    }
    const AuxStamp stamp = aux_candidates_[best];
    aux_candidates_[best] = aux_candidates_.back();
    aux_candidates_.pop_back();
    emit(stamp.first, *live_.find_hashed(stamp.first, stamp.second));
    live_.erase_hashed(stamp.first, stamp.second);
    pos = best_slot;
  }
  next_sweep_ = now + config_.sweep_interval;
}

void EventAggregator::advance_to(net::SimTime now) {
  if (saw_packet_ && now < last_timestamp_) {
    throw std::invalid_argument("EventAggregator::advance_to: time regression");
  }
  aux_valid_ = false;
  last_timestamp_ = now;
  sweep(now);
}

void EventAggregator::finish() {
  live_.for_each([this](const EventKey& key, const LiveEvent& live) {
    emit(key, live);
  });
  live_.clear();
  aux_valid_ = false;
}

void EventAggregator::emit(const EventKey& key, const LiveEvent& live) {
  DarknetEvent event;
  event.key = key;
  event.start = live.start;
  event.end = live.last_seen;
  event.packets = live.packets;
  event.packets_by_tool = live.packets_by_tool;
  event.unique_dests = live.dests.estimate();
  ++events_emitted_;
  if (sink_) sink_(event);
}

void EventAggregator::checkpoint(CheckpointWriter& writer) const {
  writer.tag(kAggregatorTag);
  // Configuration echo: resuming under different parameters would
  // silently change event delimitation, so restore() verifies these.
  writer.i64(config_.timeout.total_nanos());
  writer.u64(config_.exact_dest_limit);
  writer.u64(static_cast<std::uint64_t>(config_.hll_precision));
  writer.i64(config_.sweep_interval.total_nanos());
  writer.u64(dark_space_.prefixes().size());
  for (const net::Prefix& p : dark_space_.prefixes()) {
    writer.u64(p.base().value());
    writer.u64(static_cast<std::uint64_t>(p.length()));
  }
  // Stream clock and counters.
  writer.u8(saw_packet_ ? 1 : 0);
  writer.i64(last_timestamp_.since_epoch().total_nanos());
  writer.i64(next_sweep_.since_epoch().total_nanos());
  writer.u64(packets_seen_);
  writer.u64(scanning_packets_);
  writer.u64(ignored_out_of_space_);
  writer.u64(ignored_non_scanning_);
  writer.u64(events_emitted_);
  // Live-event table, in key order so snapshots are byte-deterministic
  // regardless of the table's probe-slot layout.
  writer.u64(live_.size());
  std::vector<std::pair<EventKey, const LiveEvent*>> ordered;
  ordered.reserve(live_.size());
  live_.for_each([&ordered](const EventKey& key, const LiveEvent& live) {
    ordered.emplace_back(key, &live);
  });
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, live_ptr] : ordered) {
    const LiveEvent& live = *live_ptr;
    writer.u64(key.src.value());
    writer.u64(key.dst_port);
    writer.u8(static_cast<std::uint8_t>(key.type));
    writer.i64(live.start.since_epoch().total_nanos());
    writer.i64(live.last_seen.since_epoch().total_nanos());
    writer.u64(live.packets);
    for (const std::uint64_t t : live.packets_by_tool) writer.u64(t);
    writer.u8(live.dests.is_exact() ? 0 : 1);
    std::vector<std::uint64_t> exact = live.dests.exact_keys();
    std::sort(exact.begin(), exact.end());
    writer.u64(exact.size());
    for (const std::uint64_t k : exact) writer.u64(k);
    writer.bytes(live.dests.sketch().registers());
  }
}

void EventAggregator::restore(CheckpointReader& reader) {
  reader.expect_tag(kAggregatorTag, "EventAggregator");
  aux_valid_ = false;
  const bool config_matches =
      net::Duration::nanos(reader.i64("timeout")) == config_.timeout &&
      reader.u64("exact dest limit") == config_.exact_dest_limit &&
      reader.u64("hll precision") ==
          static_cast<std::uint64_t>(config_.hll_precision) &&
      net::Duration::nanos(reader.i64("sweep interval")) ==
          config_.sweep_interval;
  if (!config_matches) {
    throw ConfigMismatchError("EventAggregator configuration mismatch");
  }
  const std::uint64_t prefix_count = reader.u64("prefix count");
  bool space_matches = prefix_count == dark_space_.prefixes().size();
  for (std::uint64_t i = 0; i < prefix_count; ++i) {
    const auto base = static_cast<std::uint32_t>(reader.u64("prefix base"));
    const auto length = static_cast<int>(reader.u64("prefix length"));
    if (space_matches) {
      const net::Prefix& p = dark_space_.prefixes()[static_cast<std::size_t>(i)];
      space_matches = p.base().value() == base && p.length() == length;
    }
  }
  if (!space_matches) {
    throw ConfigMismatchError("EventAggregator dark-space mismatch");
  }
  saw_packet_ = reader.u8("saw packet") != 0;
  last_timestamp_ = net::SimTime::at(net::Duration::nanos(reader.i64("last timestamp")));
  next_sweep_ = net::SimTime::at(net::Duration::nanos(reader.i64("next sweep")));
  packets_seen_ = reader.u64("packets seen");
  scanning_packets_ = reader.u64("scanning packets");
  ignored_out_of_space_ = reader.u64("ignored out of space");
  ignored_non_scanning_ = reader.u64("ignored non scanning");
  events_emitted_ = reader.u64("events emitted");
  const std::uint64_t live_count = reader.u64("live event count");
  live_.clear();
  live_.reserve(static_cast<std::size_t>(live_count));
  for (std::uint64_t i = 0; i < live_count; ++i) {
    EventKey key;
    key.src = net::Ipv4Address(static_cast<std::uint32_t>(reader.u64("event src")));
    key.dst_port = static_cast<std::uint16_t>(reader.u64("event port"));
    const std::uint8_t type = reader.u8("event type");
    if (type > static_cast<std::uint8_t>(pkt::TrafficType::Other)) {
      throw std::runtime_error("checkpoint: bad traffic type");
    }
    key.type = static_cast<pkt::TrafficType>(type);
    LiveEvent live(config_.exact_dest_limit, config_.hll_precision);
    live.start = net::SimTime::at(net::Duration::nanos(reader.i64("event start")));
    live.last_seen =
        net::SimTime::at(net::Duration::nanos(reader.i64("event last seen")));
    live.packets = reader.u64("event packets");
    for (std::uint64_t& t : live.packets_by_tool) t = reader.u64("tool packets");
    const bool promoted = reader.u8("estimator promoted") != 0;
    const std::uint64_t exact_count = reader.u64("exact key count");
    if (exact_count > config_.exact_dest_limit) {
      throw std::runtime_error("checkpoint: exact key count over limit");
    }
    std::vector<std::uint64_t> exact;
    exact.reserve(static_cast<std::size_t>(exact_count));
    for (std::uint64_t k = 0; k < exact_count; ++k) {
      exact.push_back(reader.u64("exact key"));
    }
    stats::HyperLogLog sketch(config_.hll_precision);
    sketch.set_registers(reader.bytes(sketch.registers().size(), "hll registers"));
    live.dests.restore(promoted, exact, std::move(sketch));
    live_.try_emplace(key, std::move(live));
  }
}

void EventAggregator::sweep(net::SimTime now) {
  live_.erase_if([&](const EventKey& key, const LiveEvent& live) {
    if (now - live.last_seen > config_.timeout) {
      emit(key, live);
      return true;
    }
    return false;
  });
  next_sweep_ = now + config_.sweep_interval;
}

}  // namespace orion::telescope
