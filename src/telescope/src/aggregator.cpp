#include "orion/telescope/aggregator.hpp"

#include <stdexcept>
#include <utility>

namespace orion::telescope {

EventAggregator::EventAggregator(net::PrefixSet dark_space,
                                 AggregatorConfig config, EventSink sink)
    : dark_space_(std::move(dark_space)),
      config_(config),
      sink_(std::move(sink)) {
  if (config_.timeout.total_nanos() <= 0) {
    throw std::invalid_argument("EventAggregator: non-positive timeout");
  }
}

void EventAggregator::observe(const pkt::Packet& packet) {
  if (saw_packet_ && packet.timestamp < last_timestamp_) {
    throw std::invalid_argument(
        "EventAggregator::observe: timestamps must be non-decreasing");
  }
  if (!saw_packet_) {
    next_sweep_ = packet.timestamp + config_.sweep_interval;
    saw_packet_ = true;
  }
  last_timestamp_ = packet.timestamp;
  ++packets_seen_;

  if (packet.timestamp >= next_sweep_) sweep(packet.timestamp);

  if (!dark_space_.contains(packet.tuple.dst)) {
    ++ignored_out_of_space_;
    return;
  }
  const pkt::TrafficType type = packet.traffic_type();
  if (type == pkt::TrafficType::Other) {
    ++ignored_non_scanning_;
    return;
  }
  ++scanning_packets_;

  const EventKey key{packet.tuple.src,
                     type == pkt::TrafficType::IcmpEchoReq ? std::uint16_t{0}
                                                           : packet.tuple.dst_port,
                     type};
  auto it = live_.find(key);
  if (it != live_.end() &&
      packet.timestamp - it->second.last_seen > config_.timeout) {
    // The previous event for this key already expired; emit it and start a
    // fresh one. (The sweep usually does this, but a key can stay idle
    // across a sweep boundary when sweeps are coarse.)
    emit(key, it->second);
    live_.erase(it);
    it = live_.end();
  }
  if (it == live_.end()) {
    it = live_
             .emplace(key, LiveEvent(config_.exact_dest_limit,
                                     config_.hll_precision))
             .first;
    it->second.start = packet.timestamp;
  }
  LiveEvent& live = it->second;
  live.last_seen = packet.timestamp;
  ++live.packets;
  ++live.packets_by_tool[tool_index(pkt::fingerprint_of(packet))];
  live.dests.add(dark_space_.offset_of(packet.tuple.dst));
}

void EventAggregator::advance_to(net::SimTime now) {
  if (saw_packet_ && now < last_timestamp_) {
    throw std::invalid_argument("EventAggregator::advance_to: time regression");
  }
  last_timestamp_ = now;
  sweep(now);
}

void EventAggregator::finish() {
  for (const auto& [key, live] : live_) emit(key, live);
  live_.clear();
}

void EventAggregator::emit(const EventKey& key, const LiveEvent& live) {
  DarknetEvent event;
  event.key = key;
  event.start = live.start;
  event.end = live.last_seen;
  event.packets = live.packets;
  event.packets_by_tool = live.packets_by_tool;
  event.unique_dests = live.dests.estimate();
  ++events_emitted_;
  if (sink_) sink_(event);
}

void EventAggregator::sweep(net::SimTime now) {
  for (auto it = live_.begin(); it != live_.end();) {
    if (now - it->second.last_seen > config_.timeout) {
      emit(it->first, it->second);
      it = live_.erase(it);
    } else {
      ++it;
    }
  }
  next_sweep_ = now + config_.sweep_interval;
}

}  // namespace orion::telescope
