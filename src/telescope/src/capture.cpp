#include "orion/telescope/capture.hpp"

#include <algorithm>
#include <stdexcept>

#include "orion/telescope/checkpoint.hpp"

namespace orion::telescope {

namespace {

constexpr std::uint64_t kCaptureTag = checkpoint_tag('C', 'A', 'P', '1');

void put_event(CheckpointWriter& w, const DarknetEvent& e) {
  w.u64(e.key.src.value());
  w.u64(e.key.dst_port);
  w.u8(static_cast<std::uint8_t>(e.key.type));
  w.i64(e.start.since_epoch().total_nanos());
  w.i64(e.end.since_epoch().total_nanos());
  w.u64(e.packets);
  w.u64(e.unique_dests);
  for (const std::uint64_t t : e.packets_by_tool) w.u64(t);
}

DarknetEvent get_event(CheckpointReader& r) {
  DarknetEvent e;
  e.key.src = net::Ipv4Address(static_cast<std::uint32_t>(r.u64("event src")));
  e.key.dst_port = static_cast<std::uint16_t>(r.u64("event port"));
  const std::uint8_t type = r.u8("event type");
  if (type > static_cast<std::uint8_t>(pkt::TrafficType::Other)) {
    throw std::runtime_error("checkpoint: bad traffic type");
  }
  e.key.type = static_cast<pkt::TrafficType>(type);
  e.start = net::SimTime::at(net::Duration::nanos(r.i64("event start")));
  e.end = net::SimTime::at(net::Duration::nanos(r.i64("event end")));
  e.packets = r.u64("event packets");
  e.unique_dests = r.u64("event dests");
  for (std::uint64_t& t : e.packets_by_tool) t = r.u64("tool packets");
  return e;
}

}  // namespace

EventDataset::EventDataset(std::vector<DarknetEvent> events,
                           std::uint64_t darknet_size)
    : events_(std::move(events)), darknet_size_(darknet_size) {
  // Total order (start, key): (start, key) is unique — one live event per
  // key at a time — so dataset order is independent of emission order,
  // which the sharded pipeline relies on for byte-identical merges.
  std::sort(events_.begin(), events_.end(),
            [](const DarknetEvent& a, const DarknetEvent& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.key < b.key;
            });
  std::unordered_set<net::Ipv4Address> sources;
  for (const DarknetEvent& e : events_) {
    total_packets_ += e.packets;
    sources.insert(e.key.src);
  }
  unique_sources_ = sources.size();
  if (!events_.empty()) {
    first_day_ = events_.front().day();
    last_day_ = 0;
    for (const DarknetEvent& e : events_) {
      last_day_ = std::max(last_day_, e.day());
    }
  }
}

TelescopeCapture::TelescopeCapture(net::PrefixSet dark_space,
                                   AggregatorConfig config)
    : aggregator_(dark_space, config, collector_.sink()),
      darknet_size_(dark_space.total_addresses()) {}

void TelescopeCapture::observe(const pkt::Packet& packet) {
  ++packets_captured_;
  sources_.insert(packet.tuple.src);
  aggregator_.observe(packet);
}

void TelescopeCapture::observe_batch(const pkt::PacketBatch& batch) {
  // Aggregator first: it validates the whole batch before applying any
  // record, so a throw leaves this capture untouched too. Sources are then
  // inserted in record order — the same order the scalar loop would use —
  // keeping the checkpoint's source enumeration byte-identical.
  aggregator_.observe_batch(batch);
  packets_captured_ += batch.size();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    sources_.insert(batch.src(i));
  }
}

EventDataset TelescopeCapture::finish() {
  aggregator_.finish();
  return EventDataset(collector_.take(), darknet_size_);
}

void TelescopeCapture::checkpoint(CheckpointWriter& writer) const {
  writer.tag(kCaptureTag);
  writer.u64(darknet_size_);
  writer.u64(packets_captured_);
  writer.u64(sources_.size());
  for (const net::Ipv4Address src : sources_) writer.u64(src.value());
  writer.u64(collector_.events().size());
  for (const DarknetEvent& e : collector_.events()) put_event(writer, e);
  aggregator_.checkpoint(writer);
}

void TelescopeCapture::restore(CheckpointReader& reader) {
  reader.expect_tag(kCaptureTag, "TelescopeCapture");
  if (reader.u64("darknet size") != darknet_size_) {
    throw ConfigMismatchError("TelescopeCapture darknet mismatch");
  }
  packets_captured_ = reader.u64("packets captured");
  const std::uint64_t source_count = reader.u64("source count");
  sources_.clear();
  sources_.reserve(static_cast<std::size_t>(source_count));
  for (std::uint64_t i = 0; i < source_count; ++i) {
    sources_.insert(net::Ipv4Address(static_cast<std::uint32_t>(reader.u64("source"))));
  }
  const std::uint64_t pending_count = reader.u64("pending event count");
  std::vector<DarknetEvent> pending;
  pending.reserve(static_cast<std::size_t>(pending_count));
  for (std::uint64_t i = 0; i < pending_count; ++i) {
    pending.push_back(get_event(reader));
  }
  collector_.restore(std::move(pending));
  aggregator_.restore(reader);
}

}  // namespace orion::telescope
