#include "orion/telescope/capture.hpp"

#include <algorithm>

namespace orion::telescope {

EventDataset::EventDataset(std::vector<DarknetEvent> events,
                           std::uint64_t darknet_size)
    : events_(std::move(events)), darknet_size_(darknet_size) {
  std::sort(events_.begin(), events_.end(),
            [](const DarknetEvent& a, const DarknetEvent& b) {
              return a.start < b.start;
            });
  std::unordered_set<net::Ipv4Address> sources;
  for (const DarknetEvent& e : events_) {
    total_packets_ += e.packets;
    sources.insert(e.key.src);
  }
  unique_sources_ = sources.size();
  if (!events_.empty()) {
    first_day_ = events_.front().day();
    last_day_ = 0;
    for (const DarknetEvent& e : events_) {
      last_day_ = std::max(last_day_, e.day());
    }
  }
}

TelescopeCapture::TelescopeCapture(net::PrefixSet dark_space,
                                   AggregatorConfig config)
    : aggregator_(dark_space, config, collector_.sink()),
      darknet_size_(dark_space.total_addresses()) {}

void TelescopeCapture::observe(const pkt::Packet& packet) {
  ++packets_captured_;
  sources_.insert(packet.tuple.src);
  aggregator_.observe(packet);
}

EventDataset TelescopeCapture::finish() {
  aggregator_.finish();
  return EventDataset(collector_.take(), darknet_size_);
}

}  // namespace orion::telescope
