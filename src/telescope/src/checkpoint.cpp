#include "orion/telescope/checkpoint.hpp"

#include <bit>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "orion/netbase/crc32.hpp"

namespace orion::telescope {

namespace {

constexpr char kMagic[4] = {'O', 'C', 'P', '1'};
constexpr std::uint64_t kVersion = 1;

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

}  // namespace

void CheckpointWriter::u64(std::uint64_t v) { append_u64(payload_, v); }

void CheckpointWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void CheckpointWriter::bytes(std::span<const std::uint8_t> data) {
  payload_.insert(payload_.end(), data.begin(), data.end());
}

namespace {

std::vector<std::uint8_t> frame_of(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + 8 + 8 + payload.size() + 4);
  for (const char c : kMagic) frame.push_back(static_cast<std::uint8_t>(c));
  append_u64(frame, kVersion);
  append_u64(frame, payload.size());
  frame.insert(frame.end(), payload.begin(), payload.end());
  const std::uint32_t crc = net::Crc32::of(payload);
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  return frame;
}

}  // namespace

std::uint64_t CheckpointWriter::finish(std::ostream& out) const {
  const std::vector<std::uint8_t> frame = frame_of(payload_);
  out.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));
  // Flush before checking: an ofstream buffers, and a failure that only
  // surfaces in its destructor is a snapshot silently truncated.
  out.flush();
  if (!out) {
    throw std::runtime_error("checkpoint: write failure");
  }
  return frame.size();
}

std::uint64_t CheckpointWriter::finish(net::io::File& out) const {
  const std::vector<std::uint8_t> frame = frame_of(payload_);
  out.write(frame);
  return frame.size();
}

CheckpointReader::CheckpointReader(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (in.gcount() != 4 || std::memcmp(magic, kMagic, 4) != 0) {
    fail("bad magic (not an OCP1 checkpoint)");
  }
  std::uint8_t header[16];
  in.read(reinterpret_cast<char*>(header), 16);
  if (in.gcount() != 16) fail("truncated header");
  const std::uint64_t version = load_u64(header);
  if (version != kVersion) {
    fail("unsupported version " + std::to_string(version));
  }
  const std::uint64_t length = load_u64(header + 8);
  // Snapshots are bounded by live state, not by the dataset; refuse
  // anything over 1 GiB rather than trusting a corrupt length field.
  if (length > (std::uint64_t{1} << 30)) fail("absurd payload length");
  payload_.resize(static_cast<std::size_t>(length));
  in.read(reinterpret_cast<char*>(payload_.data()),
          static_cast<std::streamsize>(length));
  if (static_cast<std::uint64_t>(in.gcount()) != length) {
    fail("truncated payload");
  }
  std::uint8_t crc_bytes[4];
  in.read(reinterpret_cast<char*>(crc_bytes), 4);
  if (in.gcount() != 4) fail("truncated CRC trailer");
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) stored |= std::uint32_t{crc_bytes[i]} << (8 * i);
  if (stored != net::Crc32::of(payload_)) fail("CRC mismatch");
}

std::uint64_t CheckpointReader::u64(const char* what) {
  if (payload_.size() - pos_ < 8) {
    fail(std::string("truncated field: ") + what);
  }
  const std::uint64_t v = load_u64(payload_.data() + pos_);
  pos_ += 8;
  return v;
}

double CheckpointReader::f64(const char* what) {
  return std::bit_cast<double>(u64(what));
}

std::uint8_t CheckpointReader::u8(const char* what) {
  if (pos_ >= payload_.size()) {
    fail(std::string("truncated field: ") + what);
  }
  return payload_[pos_++];
}

std::vector<std::uint8_t> CheckpointReader::bytes(std::size_t n,
                                                  const char* what) {
  if (payload_.size() - pos_ < n) {
    fail(std::string("truncated field: ") + what);
  }
  std::vector<std::uint8_t> out(payload_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                payload_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

void CheckpointReader::expect_tag(std::uint64_t expected, const char* component) {
  if (u64("section tag") != expected) {
    fail(std::string("wrong section tag for ") + component);
  }
}

void CheckpointReader::fail(const std::string& why) const {
  throw std::runtime_error("checkpoint: " + why);
}

}  // namespace orion::telescope
