#include "orion/telescope/event.hpp"

#include <algorithm>

namespace orion::telescope {

pkt::ScanTool DarknetEvent::dominant_tool() const {
  const auto it = std::max_element(packets_by_tool.begin(), packets_by_tool.end());
  return static_cast<pkt::ScanTool>(it - packets_by_tool.begin());
}

}  // namespace orion::telescope
