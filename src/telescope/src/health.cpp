#include "orion/telescope/health.hpp"

#include <sstream>

namespace orion::telescope {

std::string PipelineHealth::to_string() const {
  std::ostringstream out;
  out << "ingested " << ingested << ", delivered " << delivered
      << " (reordered " << reordered << "), dropped late " << dropped_late
      << ", dropped overflow " << dropped_overflow << ", buffered " << buffered;
  // Escalation counters only appear when something actually escalated, so
  // the common all-quiet line stays short.
  if (dropped_shed != 0) out << ", shed " << dropped_shed;
  if (stalls != 0) out << ", stalls " << stalls;
  if (worker_restarts != 0) out << ", worker restarts " << worker_restarts;
  return out.str();
}

}  // namespace orion::telescope
