#include "orion/telescope/health.hpp"

#include <sstream>

namespace orion::telescope {

std::string PipelineHealth::to_string() const {
  std::ostringstream out;
  out << "ingested " << ingested << ", delivered " << delivered
      << " (reordered " << reordered << "), dropped late " << dropped_late
      << ", dropped overflow " << dropped_overflow << ", buffered " << buffered;
  return out.str();
}

}  // namespace orion::telescope
