#include "orion/telescope/ingest.hpp"

#include <stdexcept>
#include <utility>

#include "orion/telescope/checkpoint.hpp"

namespace orion::telescope {

namespace {

constexpr std::uint64_t kIngestTag = checkpoint_tag('I', 'N', 'G', '1');

void put_packet(CheckpointWriter& w, const pkt::Packet& p) {
  w.i64(p.timestamp.since_epoch().total_nanos());
  w.u64(p.tuple.src.value());
  w.u64(p.tuple.dst.value());
  w.u64(std::uint64_t{p.tuple.src_port} << 16 | p.tuple.dst_port);
  w.u8(static_cast<std::uint8_t>(p.tuple.proto));
  w.u64(p.ip_id);
  w.u8(p.ttl);
  w.u8(p.tcp_flags);
  w.u64(p.tcp_seq);
  w.u64(p.tcp_window);
  w.u8(p.icmp_type);
  w.u64(p.wire_length);
}

pkt::Packet get_packet(CheckpointReader& r) {
  pkt::Packet p;
  p.timestamp = net::SimTime::at(net::Duration::nanos(r.i64("packet timestamp")));
  p.tuple.src = net::Ipv4Address(static_cast<std::uint32_t>(r.u64("packet src")));
  p.tuple.dst = net::Ipv4Address(static_cast<std::uint32_t>(r.u64("packet dst")));
  const std::uint64_t ports = r.u64("packet ports");
  p.tuple.src_port = static_cast<std::uint16_t>(ports >> 16);
  p.tuple.dst_port = static_cast<std::uint16_t>(ports);
  p.tuple.proto = static_cast<net::IpProto>(r.u8("packet proto"));
  p.ip_id = static_cast<std::uint16_t>(r.u64("packet ip_id"));
  p.ttl = r.u8("packet ttl");
  p.tcp_flags = r.u8("packet tcp_flags");
  p.tcp_seq = static_cast<std::uint32_t>(r.u64("packet tcp_seq"));
  p.tcp_window = static_cast<std::uint16_t>(r.u64("packet tcp_window"));
  p.icmp_type = r.u8("packet icmp_type");
  p.wire_length = static_cast<std::uint16_t>(r.u64("packet wire_length"));
  return p;
}

}  // namespace

ResilientIngest::ResilientIngest(ReorderConfig config, ReorderBuffer::Sink sink,
                                 ReorderBuffer::Sink quarantine)
    : config_(config),
      sink_(std::move(sink)),
      quarantine_(std::move(quarantine)),
      buffer_(
          config_,
          [this](const pkt::Packet& p) {
            ++health_.delivered;
            sink_(p);
          },
          [this](const pkt::Packet& p) {
            if (quarantine_) quarantine_(p);
          }) {}

void ResilientIngest::observe(const pkt::Packet& packet) {
  ++health_.ingested;
  switch (buffer_.push(packet)) {
    case ReorderBuffer::Outcome::Buffered:
      break;
    case ReorderBuffer::Outcome::Reordered:
      ++health_.reordered;
      break;
    case ReorderBuffer::Outcome::Late:
      ++health_.dropped_late;
      break;
    case ReorderBuffer::Outcome::LateOverflow:
      ++health_.dropped_overflow;
      break;
  }
}

void ResilientIngest::finish() { buffer_.flush(); }

const PipelineHealth& ResilientIngest::health() const {
  health_.buffered = buffer_.buffered();
  return health_;
}

void ResilientIngest::checkpoint(CheckpointWriter& writer) const {
  writer.tag(kIngestTag);
  writer.i64(config_.window.total_nanos());
  writer.u64(config_.max_buffered);
  writer.u64(health_.ingested);
  writer.u64(health_.delivered);
  writer.u64(health_.reordered);
  writer.u64(health_.dropped_late);
  writer.u64(health_.dropped_overflow);
  writer.i64(buffer_.max_seen().since_epoch().total_nanos());
  writer.i64(buffer_.watermark().since_epoch().total_nanos());
  writer.u8(buffer_.saw_packet() ? 1 : 0);
  writer.u64(buffer_.overflow_releases());
  writer.u64(buffer_.held().size());
  for (const pkt::Packet& p : buffer_.held()) put_packet(writer, p);
}

void ResilientIngest::restore(CheckpointReader& reader) {
  reader.expect_tag(kIngestTag, "ResilientIngest");
  if (net::Duration::nanos(reader.i64("reorder window")) != config_.window ||
      reader.u64("max buffered") != config_.max_buffered) {
    throw ConfigMismatchError("ResilientIngest configuration mismatch");
  }
  health_.ingested = reader.u64("ingested");
  health_.delivered = reader.u64("delivered");
  health_.reordered = reader.u64("reordered");
  health_.dropped_late = reader.u64("dropped late");
  health_.dropped_overflow = reader.u64("dropped overflow");
  const auto max_seen = net::SimTime::at(net::Duration::nanos(reader.i64("max seen")));
  const auto watermark = net::SimTime::at(net::Duration::nanos(reader.i64("watermark")));
  const bool saw_packet = reader.u8("saw packet") != 0;
  const std::uint64_t overflow_releases = reader.u64("overflow releases");
  const std::uint64_t held_count = reader.u64("held count");
  if (held_count > config_.max_buffered) {
    throw std::runtime_error("checkpoint: held count exceeds buffer bound");
  }
  std::vector<pkt::Packet> held;
  held.reserve(static_cast<std::size_t>(held_count));
  for (std::uint64_t i = 0; i < held_count; ++i) held.push_back(get_packet(reader));
  buffer_.restore_state(std::move(held), max_seen, watermark, saw_packet,
                        overflow_releases);
}

}  // namespace orion::telescope
