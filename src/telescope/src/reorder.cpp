#include "orion/telescope/reorder.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace orion::telescope {

namespace {

// std::*_heap comparator for a min-heap on timestamp.
bool later(const pkt::Packet& a, const pkt::Packet& b) {
  return a.timestamp > b.timestamp;
}

}  // namespace

ReorderBuffer::ReorderBuffer(ReorderConfig config, Sink deliver, Sink late)
    : config_(config), deliver_(std::move(deliver)), late_(std::move(late)) {
  // Nothing delivered yet: accept arbitrarily old first packets.
  const auto min_time =
      net::SimTime::at(net::Duration::nanos(std::numeric_limits<std::int64_t>::min()));
  max_seen_ = min_time;
  watermark_ = min_time;
}

pkt::Packet ReorderBuffer::pop_oldest() {
  std::pop_heap(heap_.begin(), heap_.end(), later);
  pkt::Packet oldest = heap_.back();
  heap_.pop_back();
  return oldest;
}

ReorderBuffer::Outcome ReorderBuffer::push(const pkt::Packet& packet) {
  if (saw_packet_ && packet.timestamp < watermark_) {
    // Can never be delivered in order; quarantine instead of throwing. A
    // packet still inside the jitter window was only made late by a
    // forced overflow release — report that as the distinct reason.
    if (late_) late_(packet);
    return packet.timestamp >= max_seen_ - config_.window ? Outcome::LateOverflow
                                                          : Outcome::Late;
  }
  const Outcome outcome = saw_packet_ && packet.timestamp < max_seen_
                              ? Outcome::Reordered
                              : Outcome::Buffered;
  heap_.push_back(packet);
  std::push_heap(heap_.begin(), heap_.end(), later);
  if (packet.timestamp > max_seen_) max_seen_ = packet.timestamp;
  saw_packet_ = true;
  if (heap_.size() > config_.max_buffered) {
    // Hard memory bound: force the oldest held packet out. The watermark
    // rises with it, so a straggler older than this release becomes a
    // late drop rather than an ordering violation downstream.
    const pkt::Packet oldest = pop_oldest();
    watermark_ = oldest.timestamp;
    ++overflow_releases_;
    deliver_(oldest);
  }
  drain();
  return outcome;
}

void ReorderBuffer::drain() {
  const net::SimTime release_before = max_seen_ - config_.window;
  while (!heap_.empty() && heap_.front().timestamp <= release_before) {
    const pkt::Packet next = pop_oldest();
    watermark_ = next.timestamp;
    deliver_(next);
  }
}

void ReorderBuffer::flush() {
  while (!heap_.empty()) {
    const pkt::Packet next = pop_oldest();
    watermark_ = next.timestamp;
    deliver_(next);
  }
}

void ReorderBuffer::restore_state(std::vector<pkt::Packet> held,
                                  net::SimTime max_seen, net::SimTime watermark,
                                  bool saw_packet,
                                  std::uint64_t overflow_releases) {
  heap_ = std::move(held);
  std::make_heap(heap_.begin(), heap_.end(), later);
  max_seen_ = max_seen;
  watermark_ = watermark;
  saw_packet_ = saw_packet;
  overflow_releases_ = overflow_releases;
}

}  // namespace orion::telescope
