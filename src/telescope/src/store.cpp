#include "orion/telescope/store.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <tuple>

namespace orion::telescope {

namespace {

constexpr char kMagic[4] = {'O', 'D', 'E', '1'};

// Record layout: src, key word, start, end, packets, unique dests, then
// one word per tool counter — derived from the struct so a ToolPackets
// resize cannot silently skew the byte accounting below.
constexpr std::uint64_t kToolWords = std::tuple_size_v<ToolPackets>;
constexpr std::uint64_t kRecordBytes = 8 * (6 + kToolWords);
constexpr std::uint64_t kHeaderBytes = 4 + 16;

// Upfront allocation trusts the header only this far; beyond it the
// vector grows geometrically as records actually materialize, so a
// corrupt count cannot commit gigabytes before the first read fails.
constexpr std::uint64_t kReserveClamp = 1 << 16;

void put_u64(std::ostream& out, std::uint64_t v) {
  std::array<char, 8> bytes;
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  out.write(bytes.data(), 8);
}

std::uint64_t get_u64(std::istream& in, const char* what) {
  std::array<unsigned char, 8> bytes;
  in.read(reinterpret_cast<char*>(bytes.data()), 8);
  if (in.gcount() != 8) {
    throw std::runtime_error(std::string("event store: truncated ") + what);
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes[i]} << (8 * i);
  return v;
}

DarknetEvent get_record(std::istream& in) {
  DarknetEvent e;
  e.key.src = net::Ipv4Address(static_cast<std::uint32_t>(get_u64(in, "src")));
  const std::uint64_t key_word = get_u64(in, "key");
  e.key.dst_port = static_cast<std::uint16_t>(key_word >> 8);
  const auto type_raw = static_cast<std::uint8_t>(key_word & 0xFF);
  if (type_raw > static_cast<std::uint8_t>(pkt::TrafficType::Other)) {
    throw std::runtime_error("event store: bad traffic type");
  }
  e.key.type = static_cast<pkt::TrafficType>(type_raw);
  e.start = net::SimTime::at(
      net::Duration::nanos(static_cast<std::int64_t>(get_u64(in, "start"))));
  e.end = net::SimTime::at(
      net::Duration::nanos(static_cast<std::int64_t>(get_u64(in, "end"))));
  e.packets = get_u64(in, "packets");
  e.unique_dests = get_u64(in, "dests");
  for (std::uint64_t& t : e.packets_by_tool) t = get_u64(in, "tool packets");
  return e;
}

/// Header = magic + darknet size + declared record count.
std::pair<std::uint64_t, std::uint64_t> get_header(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (in.gcount() != 4 || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("event store: bad magic (not an ODE1 file)");
  }
  const std::uint64_t darknet_size = get_u64(in, "darknet size");
  const std::uint64_t count = get_u64(in, "event count");
  // Sanity cap: ~10 GiB of records at the current record width.
  if (count > (std::uint64_t{1} << 27)) {
    throw std::runtime_error("event store: absurd event count");
  }
  return {darknet_size, count};
}

}  // namespace

std::uint64_t write_events_binary(const EventDataset& dataset, std::ostream& out) {
  out.write(kMagic, 4);
  put_u64(out, dataset.darknet_size());
  put_u64(out, dataset.events().size());
  for (const DarknetEvent& e : dataset.events()) {
    put_u64(out, e.key.src.value());
    put_u64(out, (std::uint64_t{e.key.dst_port} << 8) |
                     static_cast<std::uint64_t>(e.key.type));
    put_u64(out, static_cast<std::uint64_t>(e.start.since_epoch().total_nanos()));
    put_u64(out, static_cast<std::uint64_t>(e.end.since_epoch().total_nanos()));
    put_u64(out, e.packets);
    put_u64(out, e.unique_dests);
    for (const std::uint64_t t : e.packets_by_tool) put_u64(out, t);
  }
  // Flush before checking: buffered ofstream failures must not be
  // deferred to a destructor that cannot report them.
  out.flush();
  if (!out) {
    throw std::runtime_error("event store: write failure");
  }
  return kHeaderBytes + dataset.events().size() * kRecordBytes;
}

EventDataset read_events_binary(std::istream& in) {
  const auto [darknet_size, count] = get_header(in);
  std::vector<DarknetEvent> events;
  events.reserve(static_cast<std::size_t>(std::min(count, kReserveClamp)));
  for (std::uint64_t i = 0; i < count; ++i) {
    events.push_back(get_record(in));
  }
  return EventDataset(std::move(events), darknet_size);
}

SalvageResult read_events_binary_salvage(std::istream& in) {
  SalvageResult result;
  std::uint64_t darknet_size = 0;
  try {
    std::tie(darknet_size, result.declared_count) = get_header(in);
  } catch (const std::runtime_error& err) {
    result.error = err.what();
    return result;
  }
  std::vector<DarknetEvent> events;
  events.reserve(
      static_cast<std::size_t>(std::min(result.declared_count, kReserveClamp)));
  result.complete = true;
  for (std::uint64_t i = 0; i < result.declared_count; ++i) {
    try {
      events.push_back(get_record(in));
    } catch (const std::runtime_error& err) {
      result.complete = false;
      result.error = err.what();
      break;
    }
  }
  result.recovered_count = events.size();
  result.dataset = EventDataset(std::move(events), darknet_size);
  return result;
}

void write_events_csv(const EventDataset& dataset, std::ostream& out) {
  out << "src,dst_port,type,start_ns,end_ns,packets,unique_dests,"
         "zmap_pkts,masscan_pkts,mirai_pkts,other_pkts\n";
  for (const DarknetEvent& e : dataset.events()) {
    out << e.key.src.to_string() << ',' << e.key.dst_port << ','
        << to_string(e.key.type) << ',' << e.start.since_epoch().total_nanos()
        << ',' << e.end.since_epoch().total_nanos() << ',' << e.packets << ','
        << e.unique_dests;
    for (const std::uint64_t t : e.packets_by_tool) out << ',' << t;
    out << '\n';
  }
}

}  // namespace orion::telescope
