#include "orion/telescope/timeout.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace orion::telescope {

net::Duration derive_timeout(std::uint64_t darknet_size, double rate_pps,
                             net::Duration scan_duration) {
  if (darknet_size == 0 || rate_pps <= 0 || scan_duration.total_nanos() <= 0) {
    throw std::invalid_argument("derive_timeout: non-positive parameter");
  }
  const double ipv4 = 4294967296.0;
  const double mean_gap = ipv4 / (rate_pps * static_cast<double>(darknet_size));
  const double hits = rate_pps * scan_duration.total_seconds() *
                      static_cast<double>(darknet_size) / ipv4;
  // Fewer than e expected hits cannot justify stretching the timeout.
  const double factor = std::max(1.0, std::log(hits));
  return net::Duration::from_seconds(mean_gap * factor);
}

}  // namespace orion::telescope
