// Aggressive-hitter detection for IPv6 (the paper's future work).
//
// Definition 1's "10% of the dark space" is meaningless in 2^128; the
// transferable definitions are the relative ones. We adapt:
//   * hitlist dispersion — a source covering more than a configured share
//     of the KNOWN hitlist in one day (the v6 analogue of address
//     dispersion, with the hitlist as the de-facto universe);
//   * packet volume      — top-α tail of the per-(src, port, day) packet
//     ECDF, exactly definition 2;
//   * distinct ports     — top-α tail of daily distinct-port counts,
//     exactly definition 3.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_set>

#include "orion/v6/scanner6.hpp"

namespace orion::v6 {

struct V6DetectorConfig {
  double hitlist_dispersion_threshold = 0.10;
  double packet_volume_alpha = 0.01;
  double port_count_alpha = 0.01;
};

using V6IpSet = std::unordered_set<net::Ipv6Address>;

struct V6DetectionResult {
  V6IpSet dispersion_ah;
  V6IpSet volume_ah;
  V6IpSet port_ah;
  std::uint64_t volume_threshold = 0;
  std::uint64_t port_threshold = 0;
  std::uint64_t total_events = 0;
  std::uint64_t total_packets = 0;

  /// All AH under any definition.
  V6IpSet all() const;
};

V6DetectionResult detect_v6(const std::vector<V6Event>& events,
                            std::size_t hitlist_size,
                            const V6DetectorConfig& config = {});

}  // namespace orion::v6
