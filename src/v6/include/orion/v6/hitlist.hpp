// IPv6 hitlists. A 2^128 space cannot be swept, so real IPv6 scanners
// (Richter et al. 2022) work from hitlists of addresses learned elsewhere
// — DNS, CDN logs, address-pattern generation. This module synthesizes a
// hitlist with the well-known interface-ID patterns and classifies
// addresses back into them.
#pragma once

#include <cstdint>
#include <vector>

#include "orion/netbase/ipv6.hpp"
#include "orion/netbase/rng.hpp"

namespace orion::v6 {

enum class AddressPattern : std::uint8_t {
  LowByte,     // ::1, ::2, ... (servers with hand-assigned addresses)
  Eui64,       // SLAAC ff:fe-in-the-middle interface IDs
  Structured,  // service-tagged words in the IID (e.g. ...:443:1)
  Random,      // privacy addresses / fully random IIDs
};

constexpr const char* to_string(AddressPattern p) {
  switch (p) {
    case AddressPattern::LowByte: return "low-byte";
    case AddressPattern::Eui64: return "eui-64";
    case AddressPattern::Structured: return "structured";
    case AddressPattern::Random: return "random";
  }
  return "?";
}

struct HitlistConfig {
  std::uint64_t seed = 66;
  std::size_t prefix_count = 200;      // routed /48s the hitlist spans
  std::size_t addresses_per_prefix = 40;
  double low_byte_share = 0.45;
  double eui64_share = 0.25;
  double structured_share = 0.15;  // remainder is Random
};

struct HitlistEntry {
  net::Ipv6Address address;
  AddressPattern pattern;
};

/// Deterministic synthetic hitlist over documentation-space /48s.
std::vector<HitlistEntry> generate_hitlist(const HitlistConfig& config);

/// Pattern heuristic applied to an arbitrary address (the classifier the
/// telescope side would run on observed targets).
AddressPattern classify_pattern(const net::Ipv6Address& address);

}  // namespace orion::v6
