// IPv6 scanner behaviour models and event synthesis. IPv6 scanning is
// hitlist-driven, so "coverage" means a share of the hitlist, and the
// observable unit is a per-(source, port, day) target count at an IPv6
// telescope (a set of monitored prefixes whose unused space receives the
// probes aimed at hitlist neighborhoods).
#pragma once

#include <cstdint>
#include <vector>

#include "orion/netbase/ipv6.hpp"
#include "orion/netbase/simtime.hpp"
#include "orion/v6/hitlist.hpp"

namespace orion::v6 {

struct V6ScannerProfile {
  net::Ipv6Address source;
  /// Share of the hitlist targeted per session.
  double hitlist_share = 0.1;
  /// Probes per covered target (address-pattern expansion around hits).
  int expansion = 1;
  std::vector<std::uint16_t> ports = {443};
  std::int64_t start_day = 0;
  std::int64_t end_day = 1;           // exclusive
  double sessions_per_day = 0.2;
  std::uint64_t rng_stream = 0;
};

/// One observed (source, port, day) aggregate at the IPv6 telescope.
struct V6Event {
  net::Ipv6Address src;
  std::uint16_t dst_port = 0;
  std::int64_t day = 0;
  std::uint64_t packets = 0;
  std::uint64_t unique_targets = 0;
  /// Pattern mix of the targets (indexed by AddressPattern).
  std::array<std::uint64_t, 4> targets_by_pattern{};
};

struct V6SynthConfig {
  std::uint64_t seed = 67;
};

/// Synthesizes the telescope's event view of a scanner population probing
/// the given hitlist.
std::vector<V6Event> synthesize_v6_events(
    const std::vector<V6ScannerProfile>& scanners,
    const std::vector<HitlistEntry>& hitlist, const V6SynthConfig& config);

/// A paper-flavoured demo population: a few heavy hitlist sweepers, a
/// mid-tier, and a low-rate background.
std::vector<V6ScannerProfile> demo_v6_population(std::int64_t days,
                                                 std::uint64_t seed);

}  // namespace orion::v6
