#include "orion/v6/detect6.hpp"

#include <unordered_map>

#include "orion/stats/ecdf.hpp"

namespace orion::v6 {

V6IpSet V6DetectionResult::all() const {
  V6IpSet out = dispersion_ah;
  out.insert(volume_ah.begin(), volume_ah.end());
  out.insert(port_ah.begin(), port_ah.end());
  return out;
}

V6DetectionResult detect_v6(const std::vector<V6Event>& events,
                            std::size_t hitlist_size,
                            const V6DetectorConfig& config) {
  V6DetectionResult result;
  result.total_events = events.size();
  if (events.empty() || hitlist_size == 0) return result;

  stats::Ecdf packet_ecdf;
  // (src, day) -> {aggregate targets, distinct ports}
  struct DayAgg {
    std::uint64_t targets = 0;
    std::unordered_set<std::uint16_t> ports;
  };
  std::unordered_map<net::Ipv6Address,
                     std::unordered_map<std::int64_t, DayAgg>>
      per_src_day;
  for (const V6Event& e : events) {
    result.total_packets += e.packets;
    packet_ecdf.add(e.packets);
    DayAgg& agg = per_src_day[e.src][e.day];
    agg.targets += e.unique_targets;  // per-port sweeps accumulate
    agg.ports.insert(e.dst_port);
  }

  result.volume_threshold =
      packet_ecdf.top_alpha_threshold(config.packet_volume_alpha);
  stats::Ecdf port_ecdf;
  for (const auto& [src, days] : per_src_day) {
    for (const auto& [day, agg] : days) port_ecdf.add(agg.ports.size());
  }
  result.port_threshold = port_ecdf.top_alpha_threshold(config.port_count_alpha);

  for (const V6Event& e : events) {
    if (e.packets > result.volume_threshold) result.volume_ah.insert(e.src);
    if (static_cast<double>(e.unique_targets) >=
        config.hitlist_dispersion_threshold * static_cast<double>(hitlist_size)) {
      result.dispersion_ah.insert(e.src);
    }
  }
  for (const auto& [src, days] : per_src_day) {
    for (const auto& [day, agg] : days) {
      if (agg.ports.size() >= result.port_threshold && result.port_threshold > 1) {
        result.port_ah.insert(src);
      }
    }
  }
  return result;
}

}  // namespace orion::v6
