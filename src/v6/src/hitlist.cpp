#include "orion/v6/hitlist.hpp"

namespace orion::v6 {

namespace {

net::Ipv6Prefix slash48(std::uint64_t index) {
  // 2001:db8:xxxx::/48 — documentation space, one /48 per index.
  net::Ipv6Address::Bytes bytes{};
  bytes[0] = 0x20;
  bytes[1] = 0x01;
  bytes[2] = 0x0d;
  bytes[3] = 0xb8;
  bytes[4] = static_cast<std::uint8_t>(index >> 8);
  bytes[5] = static_cast<std::uint8_t>(index);
  return net::Ipv6Prefix(net::Ipv6Address(bytes), 48);
}

std::uint64_t eui64_iid(net::Rng& rng) {
  // MAC-derived: xxxx:xxff:fexx:xxxx with the universal/local bit set.
  const std::uint64_t mac_hi = rng.bounded(1 << 24);
  const std::uint64_t mac_lo = rng.bounded(1 << 24);
  return ((mac_hi | 0x020000) << 40) | (0xfffeull << 24) | mac_lo;
}

std::uint64_t structured_iid(net::Rng& rng) {
  // Service-tagged interface IDs like ::80:1, ::443:2, ::25:1.
  constexpr std::uint64_t services[] = {0x80, 0x443, 0x25, 0x53, 0x8080};
  const std::uint64_t service = services[rng.bounded(5)];
  return (service << 16) | (1 + rng.bounded(9));
}

}  // namespace

std::vector<HitlistEntry> generate_hitlist(const HitlistConfig& config) {
  net::Rng rng(config.seed);
  std::vector<HitlistEntry> hitlist;
  hitlist.reserve(config.prefix_count * config.addresses_per_prefix);
  for (std::size_t p = 0; p < config.prefix_count; ++p) {
    const net::Ipv6Prefix prefix = slash48(p);
    for (std::size_t a = 0; a < config.addresses_per_prefix; ++a) {
      const double u = rng.uniform();
      HitlistEntry entry;
      if (u < config.low_byte_share) {
        entry.pattern = AddressPattern::LowByte;
        entry.address = prefix.at_interface(1 + rng.bounded(250));
      } else if (u < config.low_byte_share + config.eui64_share) {
        entry.pattern = AddressPattern::Eui64;
        entry.address = prefix.at_interface(eui64_iid(rng));
      } else if (u < config.low_byte_share + config.eui64_share +
                         config.structured_share) {
        entry.pattern = AddressPattern::Structured;
        entry.address = prefix.at_interface(structured_iid(rng));
      } else {
        entry.pattern = AddressPattern::Random;
        // Ensure a random IID never collides with the other patterns'
        // shapes (top byte nonzero).
        entry.address = prefix.at_interface(rng.next() | (0x45ull << 56));
      }
      hitlist.push_back(entry);
    }
  }
  return hitlist;
}

AddressPattern classify_pattern(const net::Ipv6Address& address) {
  if (address.is_low_byte()) return AddressPattern::LowByte;
  if (address.looks_eui64()) return AddressPattern::Eui64;
  // Structured: the IID fits in 32 bits but is too large for the low-byte
  // pattern (a short service-tagged suffix such as ::443:2).
  const std::uint64_t iid = address.interface_id();
  if ((iid >> 32) == 0 && iid != 0) return AddressPattern::Structured;
  return AddressPattern::Random;
}

}  // namespace orion::v6
