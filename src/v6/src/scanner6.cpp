#include "orion/v6/scanner6.hpp"

#include <algorithm>
#include <unordered_set>

namespace orion::v6 {

std::vector<V6Event> synthesize_v6_events(
    const std::vector<V6ScannerProfile>& scanners,
    const std::vector<HitlistEntry>& hitlist, const V6SynthConfig& config) {
  std::vector<V6Event> events;
  net::Rng base(config.seed);
  for (const V6ScannerProfile& scanner : scanners) {
    net::Rng rng = base.fork(scanner.rng_stream);
    for (std::int64_t day = scanner.start_day; day < scanner.end_day; ++day) {
      const std::uint64_t sessions = rng.poisson(scanner.sessions_per_day);
      for (std::uint64_t s = 0; s < sessions; ++s) {
        const std::uint64_t targets =
            rng.binomial(hitlist.size(), scanner.hitlist_share);
        if (targets == 0) continue;
        for (const std::uint16_t port : scanner.ports) {
          V6Event event;
          event.src = scanner.source;
          event.dst_port = port;
          event.day = day;
          event.unique_targets = targets;
          event.packets =
              targets * static_cast<std::uint64_t>(std::max(1, scanner.expansion));
          // Pattern mix: sample which hitlist entries were covered.
          for (std::uint64_t t = 0; t < std::min<std::uint64_t>(targets, 512); ++t) {
            const HitlistEntry& entry = hitlist[rng.bounded(hitlist.size())];
            ++event.targets_by_pattern[static_cast<std::size_t>(entry.pattern)];
          }
          events.push_back(std::move(event));
        }
      }
    }
  }
  std::sort(events.begin(), events.end(), [](const V6Event& a, const V6Event& b) {
    return a.day < b.day;
  });
  return events;
}

std::vector<V6ScannerProfile> demo_v6_population(std::int64_t days,
                                                 std::uint64_t seed) {
  net::Rng rng(seed);
  std::vector<V6ScannerProfile> scanners;
  const auto make_source = [&](std::uint64_t index) {
    net::Ipv6Address::Bytes bytes{};
    bytes[0] = 0x2a;  // 2a0e:...-style source space, distinct from targets
    bytes[1] = 0x0e;
    bytes[4] = static_cast<std::uint8_t>(index >> 8);
    bytes[5] = static_cast<std::uint8_t>(index);
    return net::Ipv6Prefix(net::Ipv6Address(bytes), 48)
        .at_interface(1 + rng.bounded(0xFFFF));
  };

  std::uint64_t index = 0;
  // Heavy hitlist sweepers (the "aggressive" IPv6 population).
  for (int i = 0; i < 6; ++i) {
    V6ScannerProfile s;
    s.source = make_source(index);
    s.hitlist_share = 0.5 + rng.uniform() * 0.5;
    s.expansion = 2 + static_cast<int>(rng.bounded(4));
    s.ports = {443, 80, 22};
    s.start_day = 0;
    s.end_day = days;
    s.sessions_per_day = 0.8;
    s.rng_stream = ++index;
    scanners.push_back(std::move(s));
  }
  // Mid-tier.
  for (int i = 0; i < 40; ++i) {
    V6ScannerProfile s;
    s.source = make_source(index);
    s.hitlist_share = 0.05 + rng.uniform() * 0.2;
    s.ports = {static_cast<std::uint16_t>(rng.chance(0.5) ? 443 : 22)};
    s.start_day = static_cast<std::int64_t>(rng.bounded(static_cast<std::uint64_t>(days)));
    s.end_day = std::min<std::int64_t>(days, s.start_day + 1 + static_cast<std::int64_t>(rng.bounded(10)));
    s.sessions_per_day = 0.5;
    s.rng_stream = ++index;
    scanners.push_back(std::move(s));
  }
  // Background pokers.
  for (int i = 0; i < 300; ++i) {
    V6ScannerProfile s;
    s.source = make_source(index);
    s.hitlist_share = 0.001 + rng.uniform() * 0.01;
    s.ports = {static_cast<std::uint16_t>(rng.chance(0.5) ? 80 : 53)};
    s.start_day = static_cast<std::int64_t>(rng.bounded(static_cast<std::uint64_t>(days)));
    s.end_day = s.start_day + 1;
    s.sessions_per_day = 1.0;
    s.rng_stream = ++index;
    scanners.push_back(std::move(s));
  }
  return scanners;
}

}  // namespace orion::v6
