#include <gtest/gtest.h>

#include <unordered_set>

#include "orion/asdb/rdns.hpp"
#include "orion/asdb/registry.hpp"

namespace orion::asdb {
namespace {

RegistryConfig small_config() {
  RegistryConfig config;
  config.seed = 5;
  config.cloud_count = 10;
  config.isp_count = 40;
  config.hosting_count = 15;
  config.education_count = 10;
  config.content_count = 5;
  config.country_count = 30;
  config.reserved = {*net::Prefix::parse("198.18.0.0/15")};
  return config;
}

TEST(Registry, BuildIsDeterministic) {
  const Registry a = Registry::build(small_config());
  const Registry b = Registry::build(small_config());
  ASSERT_EQ(a.as_count(), b.as_count());
  for (std::size_t i = 0; i < a.as_count(); ++i) {
    EXPECT_EQ(a.records()[i].asn, b.records()[i].asn);
    EXPECT_EQ(a.records()[i].org, b.records()[i].org);
    EXPECT_EQ(a.records()[i].country, b.records()[i].country);
    EXPECT_EQ(a.records()[i].prefixes, b.records()[i].prefixes);
  }
}

TEST(Registry, PopulationMatchesConfig) {
  const RegistryConfig config = small_config();
  const Registry registry = Registry::build(config);
  EXPECT_EQ(registry.as_count(), config.cloud_count + config.isp_count +
                                     config.hosting_count +
                                     config.education_count +
                                     config.content_count);
  EXPECT_EQ(registry.filter(AsType::Cloud).size(), config.cloud_count);
  EXPECT_EQ(registry.filter(AsType::Isp).size(), config.isp_count);
  EXPECT_EQ(registry.countries().size(), config.country_count);
}

TEST(Registry, LookupFindsEveryAllocatedPrefix) {
  const Registry registry = Registry::build(small_config());
  for (const AsRecord& record : registry.records()) {
    for (const net::Prefix& p : record.prefixes) {
      const AsRecord* found = registry.lookup(p.base());
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(found->asn, record.asn);
      EXPECT_EQ(registry.lookup(p.last())->asn, record.asn);
    }
  }
}

TEST(Registry, AllocationsAreDisjointAndAvoidReserved) {
  const RegistryConfig config = small_config();
  const Registry registry = Registry::build(config);
  std::vector<net::Prefix> all;
  for (const AsRecord& record : registry.records()) {
    for (const net::Prefix& p : record.prefixes) all.push_back(p);
  }
  // PrefixSet::add throws on any overlap.
  net::PrefixSet set;
  for (const net::Prefix& p : all) ASSERT_NO_THROW(set.add(p)) << p.to_string();
  for (const net::Prefix& p : all) {
    for (const net::Prefix& reserved : config.reserved) {
      EXPECT_FALSE(reserved.contains(p) || p.contains(reserved))
          << p.to_string() << " overlaps reserved " << reserved.to_string();
    }
  }
}

TEST(Registry, LookupOutsideAllocationsReturnsNull) {
  const Registry registry = Registry::build(small_config());
  // 10/8 is below the allocator's start and 198.18/15 is reserved.
  EXPECT_EQ(registry.lookup(*net::Ipv4Address::parse("10.1.2.3")), nullptr);
  EXPECT_EQ(registry.lookup(*net::Ipv4Address::parse("198.18.5.5")), nullptr);
}

TEST(Registry, FindAsnAndRandomAddress) {
  const Registry registry = Registry::build(small_config());
  const AsRecord& record = registry.records().front();
  EXPECT_EQ(registry.find_asn(record.asn), &record);
  EXPECT_EQ(registry.find_asn(1), nullptr);
  EXPECT_EQ(registry.find_asn(999999), nullptr);

  net::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const net::Ipv4Address a = registry.random_address_in_as(record, rng);
    const AsRecord* found = registry.lookup(a);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->asn, record.asn);
  }
}

TEST(Registry, FilterByCountry) {
  const Registry registry = Registry::build(small_config());
  const auto us_clouds = registry.filter(AsType::Cloud, "US");
  for (const AsRecord* as : us_clouds) {
    EXPECT_EQ(as->type, AsType::Cloud);
    EXPECT_EQ(as->country, "US");
  }
}

TEST(Region, CountryMapping) {
  EXPECT_EQ(region_of_country("US"), Region::NorthAmerica);
  EXPECT_EQ(region_of_country("CA"), Region::NorthAmerica);
  EXPECT_EQ(region_of_country("CN"), Region::Asia);
  EXPECT_EQ(region_of_country("KR"), Region::Asia);
  EXPECT_EQ(region_of_country("TW"), Region::Asia);
  EXPECT_EQ(region_of_country("RU"), Region::Europe);
  EXPECT_EQ(region_of_country("DE"), Region::Europe);
  EXPECT_EQ(region_of_country("BR"), Region::Other);
  EXPECT_EQ(region_of_country("ZZ"), Region::Other);
}

TEST(Registry, RegionsAreConsistentWithCountries) {
  const Registry registry = Registry::build(small_config());
  for (const AsRecord& record : registry.records()) {
    EXPECT_EQ(record.region, region_of_country(record.country));
  }
}

// --------------------------------------------------------------- ReverseDns

TEST(ReverseDns, ExplicitRecordsWin) {
  const Registry registry = Registry::build(small_config());
  ReverseDns rdns(&registry, 1.0);
  const net::Ipv4Address ip = registry.records().front().prefixes.front().base();
  rdns.register_ptr(ip, "probe-1.netcensus.example.org");
  EXPECT_EQ(rdns.lookup(ip), "probe-1.netcensus.example.org");
  EXPECT_EQ(rdns.explicit_records(), 1u);
}

TEST(ReverseDns, GenericHostnamesIncludeOrg) {
  const Registry registry = Registry::build(small_config());
  ReverseDns rdns(&registry, 1.0);
  const AsRecord& as = registry.records().front();
  const net::Ipv4Address ip = as.prefixes.front().base();
  const auto name = rdns.lookup(ip);
  ASSERT_TRUE(name);
  EXPECT_NE(name->find(as.org), std::string::npos);
}

TEST(ReverseDns, CoverageIsDeterministicPerIp) {
  ReverseDns rdns(nullptr, 0.5, 99);
  int covered = 0;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const net::Ipv4Address ip(i * 7919);
    const auto first = rdns.lookup(ip);
    EXPECT_EQ(first.has_value(), rdns.lookup(ip).has_value());
    covered += first.has_value();
  }
  EXPECT_NEAR(covered, 1000, 100);
}

TEST(ReverseDns, ZeroCoverageMeansNoPtr) {
  ReverseDns rdns(nullptr, 0.0);
  EXPECT_FALSE(rdns.lookup(net::Ipv4Address(12345)));
}

}  // namespace
}  // namespace orion::asdb
