#include <gtest/gtest.h>

#include <algorithm>

#include "orion/charact/origins.hpp"
#include "orion/charact/portfig.hpp"
#include "orion/charact/temporal.hpp"
#include "orion/charact/validation.hpp"
#include "orion/detect/detector.hpp"
#include "orion/scangen/event_synth.hpp"
#include "orion/scangen/scenario.hpp"
#include "orion/stats/zipf.hpp"

namespace orion::charact {
namespace {

// Shared fixture: tiny scenario, synthesized 2021 dataset, detection run.
class CharactTest : public testing::Test {
 protected:
  struct World {
    scangen::Scenario scenario{scangen::tiny()};
    telescope::EventDataset dataset;
    detect::DetectionResult detection;

    World()
        : dataset(scangen::synthesize_events(
                      scenario.population_2021(),
                      {.darknet_size = scenario.darknet().total_addresses(),
                       .seed = 55}),
                  scenario.darknet().total_addresses()),
          detection(detect::AggressiveScannerDetector(
                        {.dispersion_threshold = 0.10,
                         .packet_volume_alpha = scenario.config().def2_alpha,
                         .port_count_alpha = scenario.config().def3_alpha})
                        .detect(dataset)) {}
  };

  static const World& world() {
    static const World w;
    return w;
  }
};

// ------------------------------------------------------------------- origins

TEST_F(CharactTest, OriginTableAggregatesByAs) {
  const auto& w = world();
  const detect::IpSet& ah = w.detection.of(detect::Definition::AddressDispersion).ips;
  ASSERT_GT(ah.size(), 10u);
  const OriginTable table =
      origin_table(w.dataset, ah, w.scenario.registry(), nullptr, nullptr, 10);
  ASSERT_FALSE(table.rows.empty());
  EXPECT_LE(table.rows.size(), 10u);
  // Rows are sorted by unique IPs.
  for (std::size_t i = 0; i + 1 < table.rows.size(); ++i) {
    EXPECT_GE(table.rows[i].unique_ips, table.rows[i + 1].unique_ips);
  }
  // /24s never exceed /32s; totals bound the rows.
  std::uint64_t row_ips = 0;
  for (const OriginRow& row : table.rows) {
    EXPECT_LE(row.unique_slash24s, row.unique_ips);
    EXPECT_GT(row.unique_ips, 0u);
    row_ips += row.unique_ips;
  }
  EXPECT_EQ(row_ips, table.top_ips);
  EXPECT_LE(table.top_ips, table.total_ips);
  EXPECT_LE(table.top_packets, table.total_packets);
}

TEST_F(CharactTest, OriginTablePacketsMatchAhEvents) {
  const auto& w = world();
  const detect::IpSet& ah = w.detection.of(detect::Definition::AddressDispersion).ips;
  const OriginTable table = origin_table(w.dataset, ah, w.scenario.registry(),
                                         nullptr, nullptr, 1000000);
  std::uint64_t expected = 0;
  for (const auto& e : w.dataset.events()) {
    if (ah.contains(e.key.src)) expected += e.packets;
  }
  EXPECT_EQ(table.total_packets, expected);
  EXPECT_EQ(table.top_packets, expected);  // top_n covers everything here
}

// ------------------------------------------------------------------ temporal

TEST_F(CharactTest, TemporalSeriesAreConsistent) {
  const auto& w = world();
  const auto trends = temporal_trends(w.dataset, w.detection,
                                      detect::Definition::AddressDispersion, {});
  const std::size_t days = trends.daily_ah.size();
  ASSERT_GT(days, 0u);
  for (std::size_t i = 0; i < days; ++i) {
    // Daily AH <= active AH <= all active; daily AH <= all daily.
    EXPECT_LE(trends.daily_ah[i], trends.active_ah[i]);
    EXPECT_LE(trends.active_ah[i], trends.all_active[i]);
    EXPECT_LE(trends.daily_ah[i], trends.all_daily[i]);
    EXPECT_LE(trends.daily_ah_packets[i], trends.total_packets[i]);
  }
  EXPECT_GT(trends.mean(trends.all_daily), 0.0);
  EXPECT_GT(trends.ah_packet_share(), 0.0);
  EXPECT_LE(trends.ah_packet_share(), 1.0);
  EXPECT_GT(trends.ah_ip_share(), 0.0);
  EXPECT_LT(trends.ah_ip_share(), 1.0);
}

TEST_F(CharactTest, NoiseInflatesTotalsOnly) {
  const auto& w = world();
  const std::size_t days = w.detection.of(detect::Definition::AddressDispersion)
                               .daily.size();
  const std::vector<std::uint64_t> noise(days, 1000);
  const auto quiet = temporal_trends(w.dataset, w.detection,
                                     detect::Definition::AddressDispersion, {});
  const auto noisy = temporal_trends(w.dataset, w.detection,
                                     detect::Definition::AddressDispersion, noise);
  for (std::size_t i = 0; i < days; ++i) {
    EXPECT_EQ(noisy.total_packets[i], quiet.total_packets[i] + 1000);
    EXPECT_EQ(noisy.daily_ah_packets[i], quiet.daily_ah_packets[i]);
  }
  EXPECT_LT(noisy.ah_packet_share(), quiet.ah_packet_share());
}

TEST(Temporal, MismatchedNoiseThrows) {
  const telescope::EventDataset dataset({}, 100);
  const detect::DetectionResult detection =
      detect::AggressiveScannerDetector().detect(dataset);
  EXPECT_NO_THROW(
      temporal_trends(dataset, detection, detect::Definition::AddressDispersion, {}));
}

// ----------------------------------------------------------------- top ports

TEST_F(CharactTest, TopPortsRankedWithToolShares) {
  const auto& w = world();
  const detect::IpSet& ah = w.detection.of(detect::Definition::AddressDispersion).ips;
  const auto rows = top_ports(w.dataset, ah, 25);
  ASSERT_FALSE(rows.empty());
  EXPECT_LE(rows.size(), 25u);
  for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
    EXPECT_GE(rows[i].packets, rows[i + 1].packets);
  }
  for (const PortRow& row : rows) {
    std::uint64_t by_tool = 0;
    double share_sum = 0;
    for (std::size_t t = 0; t < row.by_tool.size(); ++t) {
      by_tool += row.by_tool[t];
      share_sum += row.tool_share(static_cast<pkt::ScanTool>(t));
    }
    EXPECT_EQ(by_tool, row.packets);
    EXPECT_NEAR(share_sum, 1.0, 1e-9);
  }
}

// ---------------------------------------------------------------- validation

TEST_F(CharactTest, AckedValidationMatchesResearchAh) {
  const auto& w = world();
  asdb::ReverseDns rdns(&w.scenario.registry());
  const auto acked = intel::AckedScannerList::from_orgs(
      w.scenario.population_2021().orgs, rdns, intel::AckedConfig{});
  const detect::IpSet& ah = w.detection.of(detect::Definition::AddressDispersion).ips;
  const AckedValidation validation = validate_acked(w.dataset, ah, acked, rdns);
  EXPECT_GT(validation.total_ips, 0u);
  EXPECT_EQ(validation.total_ips, validation.ip_matches + validation.domain_matches);
  EXPECT_GT(validation.org_count, 0u);
  EXPECT_LE(validation.org_count, acked.org_count());
  EXPECT_LE(validation.matched_packets, validation.all_ah_packets);
  EXPECT_GT(validation.packet_share_percent(), 0.0);
  EXPECT_LT(validation.packet_share_percent(), 100.0);
}

TEST_F(CharactTest, IntersectionTableInvariants) {
  const auto& w = world();
  const auto rows = intersection_table(w.detection, w.scenario.registry());
  ASSERT_EQ(rows.size(), 7u);
  const auto& d1 = rows[0];
  const auto& d2 = rows[1];
  const auto& d12 = rows[3];
  const auto& d123 = rows[6];
  EXPECT_LE(d12.ips, std::min(d1.ips, d2.ips));
  EXPECT_LE(d123.ips, d12.ips);
  for (const IntersectionRow& row : rows) {
    EXPECT_LE(row.asns, row.ips);
    EXPECT_LE(row.orgs, row.asns + 1);
    EXPECT_LE(row.countries, row.asns + 1);
  }
}

TEST_F(CharactTest, JaccardD1D2IsHigh) {
  const auto& w = world();
  const double j = definition_jaccard(w.detection,
                                      detect::Definition::AddressDispersion,
                                      detect::Definition::PacketVolume);
  EXPECT_GE(j, 0.0);
  EXPECT_LE(j, 1.0);
}

TEST_F(CharactTest, GnBreakdownAndTags) {
  const auto& w = world();
  asdb::ReverseDns rdns(&w.scenario.registry());
  const auto acked = intel::AckedScannerList::from_orgs(
      w.scenario.population_2021().orgs, rdns, intel::AckedConfig{});
  intel::HoneypotConfig gn_config;
  gn_config.window_start_day = w.scenario.population_2021().config.window_start_day;
  gn_config.window_end_day = w.scenario.population_2021().config.window_end_day;
  intel::HoneypotNetwork gn(w.scenario.honeypots(), gn_config);
  gn.observe(w.scenario.population_2021());

  const detect::IpSet& ah = w.detection.of(detect::Definition::AddressDispersion).ips;
  const GnBreakdown breakdown = gn_breakdown(ah, gn, acked, rdns);
  EXPECT_EQ(breakdown.benign + breakdown.malicious + breakdown.unknown +
                breakdown.not_in_gn + breakdown.acked_removed,
            ah.size());
  // Nearly all non-ACKed AH appear in the honeypots (paper: 99.3%).
  EXPECT_GT(breakdown.overlap_percent(), 90.0);

  const auto tags = gn_tags(ah, gn, acked, rdns);
  EXPECT_GT(tags.distinct(), 2u);
  // The ACKed filter removes research scanners, so no benign-heavy tags top
  // the list by construction of the tiny scenario's categories.
}

TEST_F(CharactTest, PacketWeightsFeedZipfCurve) {
  const auto& w = world();
  const detect::IpSet& ah = w.detection.of(detect::Definition::AddressDispersion).ips;
  const auto weights = ah_packet_weights(w.dataset, ah);
  EXPECT_EQ(weights.size(), ah.size());
  const auto curve = stats::cumulative_contribution_curve(weights);
  ASSERT_FALSE(curve.empty());
  EXPECT_NEAR(curve.back(), 1.0, 1e-9);
  for (std::size_t i = 0; i + 1 < curve.size(); ++i) {
    EXPECT_LE(curve[i], curve[i + 1] + 1e-12);
  }
}

}  // namespace
}  // namespace orion::charact
