// Crash-safety and self-healing properties (DESIGN.md §13). Three layers:
//
//  1. The failpoint I/O seam (net::io): deterministic fail-at-Nth-call
//     injection of ENOSPC / short writes / EINTR / process death at the
//     syscall boundary, and the File wrapper's recovery semantics.
//  2. The archive publication protocol (store::ArchiveDir): the crash
//     MATRIX test re-runs a two-artifact publish cycle killing the
//     process at every counted I/O call and proves the recovered archive
//     is always atomically the pre- or the post-publication state —
//     never a torn mix — with partial files swept and accounted.
//  3. The supervised ParallelPipeline: injected worker deaths heal by
//     snapshot + replay restart and the merged output stays
//     byte-identical to the fault-free serial run; the restart budget,
//     the backpressure escalation ladder (accept → shed-with-accounting
//     → hard stall), and the SpscRing cooperative stop token.
//
// Runs under the `crashsafe` ctest label and the asan-ubsan and tsan
// presets.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "orion/detect/streaming.hpp"
#include "orion/netbase/crc32.hpp"
#include "orion/netbase/io.hpp"
#include "orion/scangen/packet_gen.hpp"
#include "orion/scangen/scenario.hpp"
#include "orion/store/archive.hpp"
#include "orion/store/mapped.hpp"
#include "orion/store/ode2.hpp"
#include "orion/telescope/capture.hpp"
#include "orion/telescope/checkpoint.hpp"
#include "orion/telescope/parallel.hpp"
#include "orion/telescope/spsc_ring.hpp"
#include "orion/telescope/store.hpp"

namespace orion {
namespace {

namespace fs = std::filesystem;
using net::io::FaultFs;
using net::io::FaultKind;
using net::io::IoOp;

/// Every test disarms the global failpoint registry on exit so a failing
/// assertion cannot leak an armed fault into the next test.
class CrashSafeTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultFs::instance().reset(); }
  void TearDown() override { FaultFs::instance().reset(); }

  std::string temp_dir(const std::string& tag) {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string dir =
        (fs::temp_directory_path() /
         ("orion_crashsafe_" + std::string(info->name()) + "_" + tag))
            .string();
    fs::remove_all(dir);
    return dir;
  }
};

using FailpointIo = CrashSafeTest;
using Archive = CrashSafeTest;
using CrashMatrix = CrashSafeTest;

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed + i * 7);
  }
  return out;
}

// ---------------------------------------------------------------------------
// 1. Failpoint I/O seam
// ---------------------------------------------------------------------------

TEST_F(FailpointIo, WriteRoundTripCountsCallsAndTracksCrc) {
  const std::string dir = temp_dir("rt");
  fs::create_directories(dir);
  const std::string path = dir + "/file.bin";
  const std::vector<std::uint8_t> payload = pattern_bytes(1000, 3);

  FaultFs::instance().reset();
  {
    net::io::File f = net::io::File::create(path);
    f.write(payload);
    f.sync();
    EXPECT_EQ(f.bytes_written(), payload.size());
    EXPECT_EQ(f.write_crc(), net::Crc32::of(payload));
    f.close();
  }
  // open + write + fsync + close at minimum — the ledger a crash matrix
  // is sized from.
  EXPECT_GE(FaultFs::instance().calls(), 4u);
  EXPECT_EQ(net::io::read_file(path), payload);
}

TEST_F(FailpointIo, InjectedEnospcSurfacesAsTypedIoError) {
  const std::string dir = temp_dir("enospc");
  fs::create_directories(dir);
  net::io::File f = net::io::File::create(dir + "/file.bin");
  const auto payload = pattern_bytes(64, 1);
  // The op filter suppresses a count-matching call of the wrong kind:
  // call #1 after arming is the Write, not a Fsync, so nothing fires.
  FaultFs::instance().arm(FaultKind::Error, 1, IoOp::Fsync);
  f.write(payload);
  EXPECT_EQ(FaultFs::instance().fired(), 0u);
  // Re-arm (resets the call counter): now call #1 IS the fsync.
  FaultFs::instance().arm(FaultKind::Error, 1, IoOp::Fsync);
  try {
    f.sync();
    FAIL() << "armed fsync fault did not fire";
  } catch (const net::io::IoError& err) {
    EXPECT_EQ(err.op(), IoOp::Fsync);
    EXPECT_EQ(err.errno_value(), 28 /* ENOSPC */);
    EXPECT_NE(std::string(err.what()).find("fsync"), std::string::npos);
  }
  EXPECT_EQ(FaultFs::instance().fired(), 1u);
}

TEST_F(FailpointIo, ArmedErrnoIsInjectedNotHardcoded) {
  const std::string dir = temp_dir("errno");
  fs::create_directories(dir);
  net::io::File f = net::io::File::create(dir + "/file.bin");
  const auto payload = pattern_bytes(32, 4);
  // arm()'s err parameter must reach the thrown IoError — a test arming
  // EIO is probing a different failure mode than ENOSPC.
  FaultFs::instance().arm(FaultKind::Error, 1, IoOp::Write, EIO);
  try {
    f.write(payload);
    FAIL() << "armed write fault did not fire";
  } catch (const net::io::IoError& err) {
    EXPECT_EQ(err.op(), IoOp::Write);
    EXPECT_EQ(err.errno_value(), EIO);
  }
  EXPECT_EQ(FaultFs::instance().fired(), 1u);
}

TEST_F(FailpointIo, ReadsAreCountedAndFailAsTypedReadErrors) {
  const std::string dir = temp_dir("read");
  fs::create_directories(dir);
  const std::string path = dir + "/file.bin";
  const auto payload = pattern_bytes(128, 6);
  {
    net::io::File f = net::io::File::create(path);
    f.write(payload);
    f.close();
  }
  // Reads sit in the failpoint ledger like every other wrapped call:
  // open + at least one data read + the EOF read.
  FaultFs::instance().reset();
  EXPECT_EQ(net::io::read_file(path), payload);
  EXPECT_GE(FaultFs::instance().calls(), 3u);
  // Call #1 is read_file's open; call #2 is the first read.
  FaultFs::instance().arm(FaultKind::Error, 2, IoOp::Read, EIO);
  try {
    net::io::read_file(path);
    FAIL() << "armed read fault did not fire";
  } catch (const net::io::IoError& err) {
    EXPECT_EQ(err.op(), IoOp::Read);
    EXPECT_EQ(err.errno_value(), EIO);
    EXPECT_NE(std::string(err.what()).find("read"), std::string::npos);
  }
  EXPECT_EQ(FaultFs::instance().fired(), 1u);
}

TEST_F(FailpointIo, ShortWriteIsCompletedByTheWrapper) {
  const std::string dir = temp_dir("short");
  fs::create_directories(dir);
  const std::string path = dir + "/file.bin";
  const auto payload = pattern_bytes(4096, 9);
  net::io::File f = net::io::File::create(path);
  FaultFs::instance().arm(FaultKind::ShortWrite, 1, IoOp::Write);
  f.write(payload);
  f.close();
  EXPECT_EQ(FaultFs::instance().fired(), 1u);
  FaultFs::instance().reset();
  // The wrapper's completion loop must hide the short write entirely —
  // full contents on disk and counters over the full span.
  EXPECT_EQ(net::io::read_file(path), payload);
}

TEST_F(FailpointIo, EintrIsRetriedTransparently) {
  const std::string dir = temp_dir("eintr");
  fs::create_directories(dir);
  const std::string path = dir + "/file.bin";
  const auto payload = pattern_bytes(512, 5);
  net::io::File f = net::io::File::create(path);
  FaultFs::instance().arm(FaultKind::Eintr, 1, IoOp::Write);
  f.write(payload);
  f.close();
  EXPECT_EQ(FaultFs::instance().fired(), 1u);
  FaultFs::instance().reset();
  EXPECT_EQ(net::io::read_file(path), payload);
}

TEST_F(FailpointIo, SimulatedCrashIsNotCatchableAsRuntimeError) {
  // Generic catch (std::runtime_error) sites must never swallow a crash:
  // if they could, in-flight cleanup would run and the simulated disk
  // state would diverge from a real crash's.
  static_assert(
      !std::is_base_of_v<std::runtime_error, net::io::SimulatedCrash>);
  const std::string dir = temp_dir("crash");
  fs::create_directories(dir);
  net::io::File f = net::io::File::create(dir + "/file.bin");
  const auto payload = pattern_bytes(16, 2);
  FaultFs::instance().arm(FaultKind::Crash, 1, IoOp::Write);
  EXPECT_THROW(f.write(payload), net::io::SimulatedCrash);
}

TEST_F(FailpointIo, CheckpointWriterPropagatesInjectedFailures) {
  const std::string dir = temp_dir("ckpt");
  fs::create_directories(dir);
  telescope::CheckpointWriter writer;
  writer.tag(telescope::checkpoint_tag('T', 'S', 'T', '1'));
  writer.u64(42);
  net::io::File f = net::io::File::create(dir + "/snap.ocp");
  FaultFs::instance().arm(FaultKind::Error, 1, IoOp::Write);
  EXPECT_THROW(writer.finish(f), net::io::IoError);
}

TEST_F(FailpointIo, StreamWritersThrowInsteadOfSilentlyTruncating) {
  // The satellite fix: a failed ostream must surface as a typed error
  // from every durable writer, not as a short file.
  telescope::EventDataset dataset({}, 16);
  std::ostringstream sink;
  sink.setstate(std::ios::badbit);
  EXPECT_THROW(store::write_events_ode2(dataset, sink), std::runtime_error);
  EXPECT_THROW(telescope::write_events_binary(dataset, sink),
               std::runtime_error);
  telescope::CheckpointWriter writer;
  writer.tag(telescope::checkpoint_tag('T', 'S', 'T', '2'));
  EXPECT_THROW(writer.finish(sink), std::runtime_error);
}

// ---------------------------------------------------------------------------
// 2. Archive publication
// ---------------------------------------------------------------------------

telescope::EventDataset make_dataset(std::uint32_t salt) {
  std::vector<telescope::DarknetEvent> events;
  events.reserve(40);
  for (std::uint32_t i = 0; i < 40; ++i) {
    telescope::DarknetEvent e;
    e.key.src = net::Ipv4Address(0x0A000000u + salt * 4096 + i);
    e.key.dst_port = static_cast<std::uint16_t>((salt * 13 + i * 7) % 1024);
    e.key.type = pkt::TrafficType::TcpSyn;
    e.start = net::SimTime::at(
        net::Duration::nanos(static_cast<std::int64_t>(i) * 1000000));
    e.end = net::SimTime::at(
        net::Duration::nanos(static_cast<std::int64_t>(i) * 1000000 + 500));
    e.packets = 100 + i + salt;
    e.unique_dests = 1 + i % 7;
    for (std::size_t t = 0; t < e.packets_by_tool.size(); ++t) {
      e.packets_by_tool[t] = salt + t;
    }
    events.push_back(e);
  }
  return telescope::EventDataset(std::move(events), 4096);
}

store::ArchiveDir::Writer blob_writer(std::uint64_t salt) {
  return [salt](net::io::File& f) {
    telescope::CheckpointWriter w;
    w.tag(telescope::checkpoint_tag('T', 'S', 'T', '3'));
    for (std::uint64_t i = 0; i < 16; ++i) w.u64(salt * 1000 + i);
    w.finish(f);
  };
}

/// The archive's full live state: logical name -> exact file bytes.
std::map<std::string, std::vector<std::uint8_t>> live_state(
    const std::string& dir) {
  store::ArchiveDir archive(dir);
  std::map<std::string, std::vector<std::uint8_t>> state;
  for (const store::ManifestEntry& e : archive.entries()) {
    state[e.name] = net::io::read_file(archive.path_of(e));
  }
  return state;
}

std::size_t count_files(const std::string& dir, const std::string& infix) {
  std::size_t n = 0;
  for (const auto& it : fs::directory_iterator(dir)) {
    if (it.path().filename().string().find(infix) != std::string::npos) ++n;
  }
  return n;
}

TEST_F(Archive, PublishResolveVerifyRoundTrip) {
  const std::string dir = temp_dir("rt");
  store::ArchiveDir archive(dir);
  EXPECT_EQ(archive.generation(), 0u);
  EXPECT_FALSE(archive.find("events").has_value());

  const telescope::EventDataset dataset = make_dataset(1);
  const store::ManifestEntry entry =
      store::publish_events_ode2(archive, "events", dataset);
  EXPECT_EQ(entry.generation, 1u);
  EXPECT_EQ(entry.file, "events.g1");
  EXPECT_TRUE(archive.verify("events"));

  store::MappedEventStore mapped = store::open_mapped_events(archive, "events");
  EXPECT_EQ(mapped.event_count(), dataset.event_count());

  // Republishing swaps the generation and garbage-collects the old file.
  store::publish_events_ode2(archive, "events", make_dataset(2));
  EXPECT_EQ(archive.generation(), 2u);
  EXPECT_EQ(archive.find("events")->file, "events.g2");
  EXPECT_TRUE(archive.verify("events"));
  EXPECT_FALSE(net::io::path_exists(dir + "/events.g1"));

  // A fresh open through the manifest sees the same state.
  store::ArchiveDir reopened(dir);
  EXPECT_EQ(reopened.generation(), 2u);
  ASSERT_TRUE(reopened.find("events").has_value());
  EXPECT_TRUE(reopened.verify("events"));
}

TEST_F(Archive, PublishManyIsOneAtomicSwap) {
  const std::string dir = temp_dir("many");
  store::ArchiveDir archive(dir);
  const telescope::EventDataset dataset = make_dataset(3);
  const auto entries = archive.publish_many(
      {{"events",
        [&](net::io::File& f) { store::write_events_ode2(dataset, f); }},
       {"checkpoint", blob_writer(3)}});
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].generation, entries[1].generation);
  EXPECT_EQ(archive.generation(), 1u);
  EXPECT_TRUE(archive.verify("events"));
  EXPECT_TRUE(archive.verify("checkpoint"));
}

TEST_F(Archive, RejectsIllegalArtifactNames) {
  store::ArchiveDir archive(temp_dir("names"));
  const auto noop = [](net::io::File&) {};
  EXPECT_THROW(archive.publish("", noop), store::ArchiveError);
  EXPECT_THROW(archive.publish("a/b", noop), store::ArchiveError);
  EXPECT_THROW(archive.publish("MANIFEST", noop), store::ArchiveError);
  EXPECT_THROW(archive.publish("x.tmp.1", noop), store::ArchiveError);
  EXPECT_THROW(archive.publish("x.g3", noop), store::ArchiveError);
  EXPECT_THROW(
      archive.publish_many({{"a", noop}, {"a", noop}}), store::ArchiveError);
}

TEST_F(Archive, RecoverySweepsTemporariesAndOrphansReadersNeverSeeThem) {
  const std::string dir = temp_dir("sweep");
  {
    store::ArchiveDir archive(dir);
    store::publish_events_ode2(archive, "events", make_dataset(4));
  }
  // Plant the debris a crash mid-publication leaves behind: an abandoned
  // temporary and a generation file the manifest never referenced.
  std::ofstream(dir + "/events.tmp.9") << "partial write";
  std::ofstream(dir + "/ghost.g3") << "orphaned generation";

  // Readers resolve through the manifest, so the debris is invisible
  // even before the sweep.
  {
    store::ArchiveDir archive(dir);
    EXPECT_FALSE(archive.find("ghost").has_value());
    EXPECT_TRUE(archive.verify("events"));
  }

  const store::RecoverReport report = store::recover_archive(dir);
  EXPECT_TRUE(report.manifest_valid);
  EXPECT_EQ(report.removed_temporaries, 1u);
  EXPECT_EQ(report.removed_orphans, 1u);
  EXPECT_EQ(report.live_entries, 1u);
  EXPECT_FALSE(net::io::path_exists(dir + "/events.tmp.9"));
  EXPECT_FALSE(net::io::path_exists(dir + "/ghost.g3"));

  // The sweep is idempotent and the live artifact untouched.
  EXPECT_TRUE(store::recover_archive(dir).clean());
  EXPECT_TRUE(store::ArchiveDir(dir).verify("events"));
}

TEST_F(Archive, CorruptManifestIsQuarantinedWithItsGenerations) {
  const std::string dir = temp_dir("corrupt");
  {
    store::ArchiveDir archive(dir);
    store::publish_events_ode2(archive, "events", make_dataset(5));
  }
  // Flip one payload byte: the CRC must reject the whole manifest.
  {
    std::fstream f(dir + "/MANIFEST",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(12);
    const char old = static_cast<char>(f.get());
    f.seekp(12);
    f.put(static_cast<char>(old ^ 0x5A));
  }
  EXPECT_THROW(store::ArchiveDir{dir}, store::ArchiveError);

  const store::RecoverReport report = store::recover_archive(dir);
  EXPECT_TRUE(report.manifest_present);
  EXPECT_FALSE(report.manifest_valid);
  // Manifest + the generation file it named: quarantined, not deleted —
  // they may be the only surviving copies.
  EXPECT_EQ(report.quarantined, 2u);
  EXPECT_EQ(report.live_entries, 0u);
  EXPECT_TRUE(net::io::path_exists(dir + "/MANIFEST.quarantine"));
  EXPECT_TRUE(net::io::path_exists(dir + "/events.g1.quarantine"));

  // The archive serves empty afterwards and a new history can begin.
  store::ArchiveDir archive(dir);
  EXPECT_EQ(archive.generation(), 0u);
  store::publish_events_ode2(archive, "events", make_dataset(6));
  EXPECT_TRUE(archive.verify("events"));
}

TEST_F(Archive, DamagedLiveEntryIsReported) {
  const std::string dir = temp_dir("damaged");
  {
    store::ArchiveDir archive(dir);
    store::publish_events_ode2(archive, "events", make_dataset(7));
  }
  fs::resize_file(dir + "/events.g1", 10);
  const store::RecoverReport report = store::recover_archive(dir);
  EXPECT_EQ(report.damaged_entries, 1u);
  EXPECT_FALSE(report.clean());
  EXPECT_FALSE(store::ArchiveDir(dir).verify("events"));
  EXPECT_THROW(store::open_mapped_events(store::ArchiveDir(dir), "events"),
               std::exception);
}

// ---------------------------------------------------------------------------
// 2b. The crash matrix (acceptance criterion)
// ---------------------------------------------------------------------------

/// One publish cycle: seed the archive with state A, then (optionally
/// crashing at counted call k) publish state B over it via one atomic
/// batch. Returns true when the second publish completed.
bool run_publish_cycle(const std::string& dir, bool arm_crash,
                       std::uint64_t k) {
  fs::remove_all(dir);
  const telescope::EventDataset dataset_a = make_dataset(10);
  const telescope::EventDataset dataset_b = make_dataset(20);
  {
    store::ArchiveDir archive(dir);
    archive.publish_many(
        {{"events",
          [&](net::io::File& f) { store::write_events_ode2(dataset_a, f); }},
         {"checkpoint", blob_writer(10)}});
  }
  FaultFs::instance().reset();
  if (arm_crash) FaultFs::instance().arm(FaultKind::Crash, k);
  bool completed = true;
  try {
    store::ArchiveDir archive(dir);
    archive.publish_many(
        {{"events",
          [&](net::io::File& f) { store::write_events_ode2(dataset_b, f); }},
         {"checkpoint", blob_writer(20)}});
  } catch (const net::io::SimulatedCrash&) {
    completed = false;
  }
  // Disarm only after a crash run: the fault-free run's caller reads
  // calls() to size the matrix, and reset() would zero it.
  if (arm_crash) FaultFs::instance().reset();
  return completed;
}

TEST_F(CrashMatrix, EveryFailpointLeavesPreOrPostStateNeverTorn) {
  const std::string dir = temp_dir("matrix");

  // Fault-free run sizes the matrix and captures both consistent states.
  ASSERT_TRUE(run_publish_cycle(dir, false, 0));
  const std::uint64_t total_calls = FaultFs::instance().calls();
  ASSERT_GE(total_calls, 10u) << "publish cycle too small to be a matrix";
  const auto post_state = live_state(dir);
  ASSERT_EQ(post_state.size(), 2u);

  fs::remove_all(dir);
  {
    store::ArchiveDir archive(dir);
    archive.publish_many(
        {{"events",
          [&](net::io::File& f) {
            store::write_events_ode2(make_dataset(10), f);
          }},
         {"checkpoint", blob_writer(10)}});
  }
  const auto pre_state = live_state(dir);
  ASSERT_EQ(pre_state.size(), 2u);
  ASSERT_NE(pre_state, post_state);

  std::size_t pre_count = 0;
  std::size_t post_count = 0;
  std::size_t swept_something = 0;
  for (std::uint64_t k = 1; k <= total_calls; ++k) {
    const bool completed = run_publish_cycle(dir, true, k);
    ASSERT_FALSE(completed) << "crash armed at call " << k << " never fired";

    // The process "died" at call k. Recovery owns crash consistency.
    const store::RecoverReport report = store::recover_archive(dir);
    if (!report.clean()) ++swept_something;
    EXPECT_EQ(report.quarantined, 0u)
        << "a crash must never corrupt the manifest (k=" << k << ")";
    EXPECT_EQ(report.damaged_entries, 0u) << "torn live entry at k=" << k;

    const auto recovered = live_state(dir);
    const bool is_pre = recovered == pre_state;
    const bool is_post = recovered == post_state;
    EXPECT_TRUE(is_pre || is_post)
        << "torn archive state after crash at call " << k << " of "
        << total_calls;
    if (is_pre) ++pre_count;
    if (is_post) ++post_count;

    // Both artifacts byte-verified, the sweep idempotent, and no debris
    // left for readers to trip on.
    store::ArchiveDir archive(dir);
    EXPECT_TRUE(archive.verify("events")) << "k=" << k;
    EXPECT_TRUE(archive.verify("checkpoint")) << "k=" << k;
    EXPECT_TRUE(store::recover_archive(dir).clean()) << "k=" << k;
    EXPECT_EQ(count_files(dir, ".tmp."), 0u) << "k=" << k;
  }
  // The matrix must actually straddle the commit point: crashes before
  // the manifest rename land pre, crashes after land post, and at least
  // one crash left partial files for the sweep.
  EXPECT_GT(pre_count, 0u);
  EXPECT_GT(post_count, 0u);
  EXPECT_GT(swept_something, 0u);
  EXPECT_EQ(pre_count + post_count, static_cast<std::size_t>(total_calls));
}

// ---------------------------------------------------------------------------
// 3. Supervised pipeline
// ---------------------------------------------------------------------------

const scangen::Scenario& scenario() {
  static const scangen::Scenario s{scangen::tiny()};
  return s;
}

std::vector<pkt::Packet> packet_stream(std::int64_t days) {
  scangen::PacketStreamGenerator generator(
      scenario().population_2021().scanners, scenario().darknet(),
      net::SimTime::epoch(), net::SimTime::epoch() + net::Duration::days(days),
      {.seed = 17, .exact_targets = true, .stable_streams = true});
  std::vector<pkt::Packet> packets;
  while (auto p = generator.next()) packets.push_back(*p);
  return packets;
}

detect::StreamingConfig detector_config() {
  detect::StreamingConfig config;
  config.base = {.dispersion_threshold = scenario().config().def1_dispersion,
                 .packet_volume_alpha = scenario().config().def2_alpha,
                 .port_count_alpha = scenario().config().def3_alpha};
  config.warmup_samples = 500;
  return config;
}

telescope::ParallelConfig supervised_config(std::size_t shards) {
  telescope::ParallelConfig config;
  config.shards = shards;
  config.batch_size = 64;
  config.ring_capacity = 8;
  config.aggregator.timeout = scenario().event_timeout();
  config.detector = detector_config();
  config.supervisor.enabled = true;
  config.supervisor.max_restarts = 5;
  config.supervisor.snapshot_interval = 4;
  config.supervisor.backoff_base = std::chrono::microseconds(1);
  config.supervisor.backoff_cap = std::chrono::microseconds(100);
  return config;
}

TEST_F(CrashSafeTest, SupervisedMergeByteIdenticalAfterWorkerDeaths) {
  const std::vector<pkt::Packet> packets = packet_stream(4);

  // Serial fault-free reference.
  telescope::TelescopeCapture capture(scenario().darknet(),
                                      {.timeout = scenario().event_timeout()});
  for (const pkt::Packet& p : packets) capture.observe(p);
  const telescope::EventDataset serial_dataset = capture.finish();
  detect::StreamingDetector detector(detector_config(),
                                     scenario().darknet().total_addresses());
  std::vector<detect::StreamingDayResult> serial_days;
  for (const telescope::DarknetEvent& e : serial_dataset.events()) {
    for (auto& day : detector.observe(e)) serial_days.push_back(std::move(day));
  }
  if (auto last = detector.finish()) serial_days.push_back(std::move(*last));

  // Supervised run: kill every shard's worker twice at deterministic
  // batch sequence numbers. The exchange() guards make each kill fire
  // exactly once — the replayed batch passes the second time, which is
  // precisely the restart-from-snapshot path under test.
  constexpr std::size_t kShards = 4;
  std::array<std::atomic<bool>, kShards> killed_early{};
  std::array<std::atomic<bool>, kShards> killed_late{};
  telescope::ParallelConfig config = supervised_config(kShards);
  config.supervisor.fault_hook = [&](std::size_t shard, std::uint64_t seq) {
    if (seq == 5 && !killed_early[shard].exchange(true)) {
      throw std::runtime_error("injected early worker death");
    }
    if (seq == 29 && !killed_late[shard].exchange(true)) {
      throw std::runtime_error("injected late worker death");
    }
  };
  telescope::ParallelPipeline pipeline(scenario().darknet(), config);
  for (const pkt::Packet& p : packets) pipeline.observe(p);
  const telescope::ParallelResult result = pipeline.finish();

  // All eight deaths must actually have happened and healed.
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_TRUE(killed_early[s].load()) << "shard " << s;
    EXPECT_TRUE(killed_late[s].load()) << "shard " << s;
  }
  EXPECT_EQ(result.health.worker_restarts, 2u * kShards);

  // Byte-identical merged output: the event dataset serializes to the
  // exact same bytes as the fault-free serial run.
  EXPECT_EQ(result.dataset.events(), serial_dataset.events());
  std::ostringstream serial_bytes;
  std::ostringstream supervised_bytes;
  telescope::write_events_binary(serial_dataset, serial_bytes);
  telescope::write_events_binary(result.dataset, supervised_bytes);
  EXPECT_EQ(serial_bytes.str(), supervised_bytes.str());

  ASSERT_EQ(result.days.size(), serial_days.size());
  for (std::size_t i = 0; i < serial_days.size(); ++i) {
    EXPECT_EQ(result.days[i], serial_days[i]) << "day index " << i;
  }

  // Lossless accounting despite eight worker deaths.
  EXPECT_EQ(result.health.ingested, packets.size());
  EXPECT_EQ(result.health.delivered, packets.size());
  EXPECT_EQ(result.health.dropped(), 0u);
  EXPECT_TRUE(result.health.consistent());
}

// Regression: a supervised pipeline resumed from a checkpoint must seed
// every shard's supervision snapshot from the restored state. A worker
// dying before its first periodic snapshot previously hit the
// empty-snapshot rebuild path and healed to a FRESH shard, silently
// discarding everything the checkpoint carried — the exact combination
// live_monitor --supervise --archive exercises on auto-resume.
TEST_F(CrashSafeTest, SupervisedRestoreHealsDeathBeforeFirstSnapshot) {
  const std::vector<pkt::Packet> packets = packet_stream(4);
  const std::size_t cut = packets.size() / 2;

  // Serial fault-free reference over the whole stream.
  telescope::TelescopeCapture capture(scenario().darknet(),
                                      {.timeout = scenario().event_timeout()});
  for (const pkt::Packet& p : packets) capture.observe(p);
  const telescope::EventDataset serial_dataset = capture.finish();
  detect::StreamingDetector detector(detector_config(),
                                     scenario().darknet().total_addresses());
  std::vector<detect::StreamingDayResult> serial_days;
  for (const telescope::DarknetEvent& e : serial_dataset.events()) {
    for (auto& day : detector.observe(e)) serial_days.push_back(std::move(day));
  }
  if (auto last = detector.finish()) serial_days.push_back(std::move(*last));

  constexpr std::size_t kShards = 4;
  telescope::ParallelConfig config = supervised_config(kShards);
  // So large that no worker ever takes a periodic snapshot: every
  // injected death lands in the restored-but-never-snapshotted window.
  config.supervisor.snapshot_interval = std::size_t{1} << 20;

  std::stringstream snapshot;
  {
    telescope::ParallelPipeline pipeline(scenario().darknet(), config);
    for (std::size_t i = 0; i < cut; ++i) pipeline.observe(packets[i]);
    telescope::CheckpointWriter writer;
    pipeline.checkpoint(writer);
    writer.finish(snapshot);
  }

  // Kill each shard's worker on the very first post-resume batch.
  std::array<std::atomic<bool>, kShards> killed{};
  config.supervisor.fault_hook = [&](std::size_t shard, std::uint64_t seq) {
    if (seq == 0 && !killed[shard].exchange(true)) {
      throw std::runtime_error("injected death before first snapshot");
    }
  };
  telescope::ParallelPipeline resumed(scenario().darknet(), config);
  telescope::CheckpointReader reader(snapshot);
  resumed.restore(reader);
  EXPECT_EQ(resumed.packets_ingested(), cut);
  for (std::size_t i = cut; i < packets.size(); ++i) {
    resumed.observe(packets[i]);
  }
  const telescope::ParallelResult result = resumed.finish();

  std::size_t kills = 0;
  for (const auto& k : killed) kills += k.load() ? 1u : 0u;
  ASSERT_GT(kills, 0u) << "no post-resume batch ever reached a worker";
  EXPECT_EQ(result.health.worker_restarts, kills);

  // Healed + resumed must be byte-identical to the fault-free serial
  // run — including every event only the checkpoint carried.
  EXPECT_EQ(result.dataset.events(), serial_dataset.events());
  std::ostringstream serial_bytes;
  std::ostringstream resumed_bytes;
  telescope::write_events_binary(serial_dataset, serial_bytes);
  telescope::write_events_binary(result.dataset, resumed_bytes);
  EXPECT_EQ(serial_bytes.str(), resumed_bytes.str());
  ASSERT_EQ(result.days.size(), serial_days.size());
  for (std::size_t i = 0; i < serial_days.size(); ++i) {
    EXPECT_EQ(result.days[i], serial_days[i]) << "day index " << i;
  }
  EXPECT_EQ(result.health.ingested, packets.size());
  EXPECT_EQ(result.health.delivered, packets.size());
  EXPECT_TRUE(result.health.consistent());
}

TEST_F(CrashSafeTest, RestartBudgetExhaustionThrowsShardFailure) {
  telescope::ParallelConfig config = supervised_config(2);
  config.supervisor.max_restarts = 2;
  config.supervisor.snapshot_interval = 1;
  config.batch_size = 8;
  // Shard 0's worker dies on every single batch: unhealable.
  config.supervisor.fault_hook = [](std::size_t shard, std::uint64_t) {
    if (shard == 0) throw std::runtime_error("persistent worker fault");
  };
  telescope::ParallelPipeline pipeline(scenario().darknet(), config);
  const std::vector<pkt::Packet> packets = packet_stream(1);
  try {
    for (const pkt::Packet& p : packets) pipeline.observe(p);
    pipeline.finish();
    FAIL() << "restart budget exhaustion did not surface";
  } catch (const telescope::ShardFailure& err) {
    EXPECT_NE(std::string(err.what()).find("persistent worker fault"),
              std::string::npos);
    EXPECT_NE(std::string(err.what()).find("2 restart"), std::string::npos);
  }
  // The pipeline is permanently failed but must not hang: further calls
  // rethrow and the destructor's stop tokens tear it down cleanly (this
  // test completing IS the no-hang assertion).
  EXPECT_THROW(pipeline.finish(), telescope::ShardFailure);
}

TEST_F(CrashSafeTest, UnsupervisedWorkerPanicIsSurfacedNotHung) {
  telescope::ParallelConfig config = supervised_config(2);
  config.supervisor.enabled = false;  // hook still fires: panic, no healing
  config.batch_size = 8;
  std::atomic<bool> killed{false};
  config.supervisor.fault_hook = [&](std::size_t shard, std::uint64_t) {
    if (shard == 0 && !killed.exchange(true)) {
      throw std::runtime_error("unsupervised death");
    }
  };
  telescope::ParallelPipeline pipeline(scenario().darknet(), config);
  const std::vector<pkt::Packet> packets = packet_stream(1);
  EXPECT_THROW(
      {
        for (const pkt::Packet& p : packets) pipeline.observe(p);
        pipeline.finish();
      },
      telescope::ShardFailure);
}

TEST_F(CrashSafeTest, BackpressureLadderShedsWithAccountingThenStalls) {
  telescope::ParallelConfig config;
  config.shards = 1;
  config.batch_size = 1;
  config.ring_capacity = 2;
  config.aggregator.timeout = scenario().event_timeout();
  config.detector = detector_config();
  config.backpressure.escalate_after = 2;
  config.backpressure.shed_budget = 3;
  // Brake the worker so the ring is reliably full when the dispatcher
  // escalates (the hook fires whenever set, supervised or not).
  config.supervisor.fault_hook = [](std::size_t, std::uint64_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  telescope::ParallelPipeline pipeline(scenario().darknet(), config);
  const std::vector<pkt::Packet> packets = packet_stream(1);
  const std::size_t feed = std::min<std::size_t>(packets.size(), 300);
  for (std::size_t i = 0; i < feed; ++i) pipeline.observe(packets[i]);
  const telescope::ParallelResult result = pipeline.finish();

  // The full ladder ran: 3 batches (of 1 packet) shed with accounting,
  // then the exhausted budget forced hard stalls — and every packet is
  // still accounted for.
  EXPECT_EQ(result.health.dropped_shed, 3u);
  EXPECT_GE(result.health.stalls, 1u);
  EXPECT_EQ(result.health.ingested, feed);
  EXPECT_EQ(result.health.delivered, feed - 3);
  EXPECT_EQ(result.health.dropped(), 3u);
  EXPECT_TRUE(result.health.consistent());
}

TEST_F(CrashSafeTest, DefaultPolicyNeverSheds) {
  // Escalation off (the default): tiny ring + slow-ish worker still
  // loses nothing — the deterministic contract of DESIGN.md §9.
  telescope::ParallelConfig config;
  config.shards = 2;
  config.batch_size = 4;
  config.ring_capacity = 2;
  config.aggregator.timeout = scenario().event_timeout();
  config.detector = detector_config();
  telescope::ParallelPipeline pipeline(scenario().darknet(), config);
  const std::vector<pkt::Packet> packets = packet_stream(1);
  for (const pkt::Packet& p : packets) pipeline.observe(p);
  const telescope::ParallelResult result = pipeline.finish();
  EXPECT_EQ(result.health.dropped_shed, 0u);
  EXPECT_EQ(result.health.delivered, packets.size());
  EXPECT_TRUE(result.health.consistent());
}

TEST_F(CrashSafeTest, SpscRingStopTokenUnblocksIdleConsumer) {
  telescope::SpscRing<int> ring(4);
  std::atomic<int> consumed{0};
  std::thread consumer([&] {
    unsigned spins = 0;
    int value = 0;
    for (;;) {
      if (ring.try_pop(value)) {
        consumed.fetch_add(1);
        continue;
      }
      if (ring.stop_requested()) return;
      telescope::spsc_backoff(spins);
    }
  });
  int v = 1;
  ASSERT_TRUE(ring.try_push(v));
  v = 2;
  ASSERT_TRUE(ring.try_push(v));
  // The token is sticky and only honored when idle: both queued items
  // are drained before the consumer exits.
  ring.request_stop();
  consumer.join();
  EXPECT_EQ(consumed.load(), 2);
  EXPECT_TRUE(ring.stop_requested());
}

}  // namespace
}  // namespace orion
