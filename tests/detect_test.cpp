#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include "orion/detect/detector.hpp"
#include "orion/detect/lists.hpp"
#include "orion/detect/port_set.hpp"
#include "orion/netbase/rng.hpp"

namespace orion::detect {
namespace {

constexpr std::uint64_t kDarknetSize = 1000;

telescope::DarknetEvent make_event(const char* src, std::uint16_t port,
                                   std::int64_t day, std::uint64_t packets,
                                   std::uint64_t uniques,
                                   pkt::TrafficType type = pkt::TrafficType::TcpSyn,
                                   std::int64_t end_day = -1) {
  telescope::DarknetEvent e;
  e.key.src = *net::Ipv4Address::parse(src);
  e.key.dst_port = port;
  e.key.type = type;
  e.start = net::SimTime::at(net::Duration::days(day) + net::Duration::hours(6));
  e.end = end_day < 0 ? e.start + net::Duration::hours(2)
                      : net::SimTime::at(net::Duration::days(end_day) +
                                         net::Duration::hours(6));
  e.packets = packets;
  e.unique_dests = uniques;
  e.packets_by_tool[telescope::tool_index(pkt::ScanTool::Other)] = packets;
  return e;
}

telescope::EventDataset background_plus(std::vector<telescope::DarknetEvent> extra) {
  // 200 background sources with 1..5 same-day single-port events each keep
  // both ECDFs (per-event packets, per-day distinct ports) well-populated
  // and non-degenerate.
  std::vector<telescope::DarknetEvent> events;
  for (int s = 0; s < 200; ++s) {
    const std::string src =
        net::Ipv4Address(0x0A000000u + static_cast<std::uint32_t>(s)).to_string();
    for (int k = 0; k <= s % 5; ++k) {
      events.push_back(make_event(src.c_str(),
                                  static_cast<std::uint16_t>(80 + k), s % 5,
                                  5 + static_cast<std::uint64_t>(s % 7), 5));
    }
  }
  for (auto& e : extra) events.push_back(std::move(e));
  return telescope::EventDataset(std::move(events), kDarknetSize);
}

DetectorConfig test_config() {
  DetectorConfig config;
  config.packet_volume_alpha = 0.005;  // top ~5 of 1000 background events
  config.port_count_alpha = 0.005;
  return config;
}

// ------------------------------------------------------------- definition 1

TEST(Detector, Definition1FlagsDispersedEvents) {
  const auto dataset = background_plus({
      make_event("203.0.113.1", 23, 2, 150, 120),  // 12% >= 10% -> AH
      make_event("203.0.113.2", 23, 2, 150, 80),   // 8% -> not AH
  });
  const DetectionResult result = AggressiveScannerDetector(test_config()).detect(dataset);
  const DefinitionResult& d1 = result.of(Definition::AddressDispersion);
  EXPECT_TRUE(d1.ips.contains(*net::Ipv4Address::parse("203.0.113.1")));
  EXPECT_FALSE(d1.ips.contains(*net::Ipv4Address::parse("203.0.113.2")));
  EXPECT_EQ(d1.qualifying_events, 1u);
  EXPECT_EQ(d1.threshold, 0u);
}

TEST(Detector, Definition1BoundaryIsInclusive) {
  const auto dataset = background_plus({
      make_event("203.0.113.1", 23, 2, 100, 100),  // exactly 10%
  });
  const DetectionResult result = AggressiveScannerDetector(test_config()).detect(dataset);
  EXPECT_TRUE(result.of(Definition::AddressDispersion)
                  .ips.contains(*net::Ipv4Address::parse("203.0.113.1")));
}

// ------------------------------------------------------------- definition 2

TEST(Detector, Definition2UsesEcdfTail) {
  const auto dataset = background_plus({
      make_event("203.0.113.1", 23, 2, 100000, 90),  // giant event
  });
  const DetectionResult result = AggressiveScannerDetector(test_config()).detect(dataset);
  const DefinitionResult& d2 = result.of(Definition::PacketVolume);
  EXPECT_TRUE(d2.ips.contains(*net::Ipv4Address::parse("203.0.113.1")));
  EXPECT_GE(d2.threshold, 11u);     // at/above every background event
  EXPECT_LT(d2.threshold, 100000u); // below the giant
  // Background sources stay out (qualification is strictly greater).
  EXPECT_LT(d2.ips.size(), 10u);
}

// ------------------------------------------------------------- definition 3

TEST(Detector, Definition3CountsDailyDistinctPorts) {
  std::vector<telescope::DarknetEvent> sweep;
  for (std::uint16_t p = 1; p <= 60; ++p) {
    sweep.push_back(make_event("203.0.113.3", p, 2, 2, 2));
  }
  const auto dataset = background_plus(std::move(sweep));
  const DetectionResult result = AggressiveScannerDetector(test_config()).detect(dataset);
  const DefinitionResult& d3 = result.of(Definition::DistinctPorts);
  EXPECT_TRUE(d3.ips.contains(*net::Ipv4Address::parse("203.0.113.3")));
  EXPECT_GT(d3.threshold, 3u);
  EXPECT_LE(d3.threshold, 60u);
  // Sources with a single daily port never qualify.
  EXPECT_FALSE(d3.ips.contains(net::Ipv4Address(0x0A000000u)));
}

TEST(Detector, Definition3SplitsAcrossDays) {
  // 30 ports on each of two days — each day's count is 30, not 60.
  std::vector<telescope::DarknetEvent> sweep;
  for (std::uint16_t p = 1; p <= 30; ++p) {
    sweep.push_back(make_event("203.0.113.3", p, 2, 2, 2));
    sweep.push_back(make_event("203.0.113.3", static_cast<std::uint16_t>(100 + p),
                               3, 2, 2));
  }
  const auto dataset = background_plus(std::move(sweep));
  DetectorConfig config = test_config();
  config.port_count_alpha = 0.0005;  // threshold lands above 30
  const DetectionResult result = AggressiveScannerDetector(config).detect(dataset);
  const DefinitionResult& d3 = result.of(Definition::DistinctPorts);
  if (d3.threshold > 30) {
    EXPECT_FALSE(d3.ips.contains(*net::Ipv4Address::parse("203.0.113.3")));
  }
}

TEST(Detector, IcmpEventsDoNotCountAsPorts) {
  std::vector<telescope::DarknetEvent> events;
  for (int i = 0; i < 50; ++i) {
    events.push_back(make_event("203.0.113.4", 0, 2, 3, 3,
                                pkt::TrafficType::IcmpEchoReq));
  }
  const auto dataset = background_plus(std::move(events));
  const DetectionResult result = AggressiveScannerDetector(test_config()).detect(dataset);
  EXPECT_FALSE(result.of(Definition::DistinctPorts)
                   .ips.contains(*net::Ipv4Address::parse("203.0.113.4")));
}

// ------------------------------------------------------- daily / active sets

TEST(Detector, DailyAndActiveAccounting) {
  const auto dataset = background_plus({
      // Qualifying D1 event spanning days 1..3.
      make_event("203.0.113.1", 23, 1, 400, 400, pkt::TrafficType::TcpSyn, 3),
  });
  const DetectionResult result = AggressiveScannerDetector(test_config()).detect(dataset);
  const DefinitionResult& d1 = result.of(Definition::AddressDispersion);
  const net::Ipv4Address src = *net::Ipv4Address::parse("203.0.113.1");
  const auto day_index = [&](std::int64_t day) {
    return static_cast<std::size_t>(day - result.first_day);
  };
  const auto in = [&](const std::vector<net::Ipv4Address>& v) {
    return std::binary_search(v.begin(), v.end(), src);
  };
  EXPECT_TRUE(in(d1.daily[day_index(1)]));
  EXPECT_FALSE(in(d1.daily[day_index(2)]));
  EXPECT_TRUE(in(d1.active[day_index(1)]));
  EXPECT_TRUE(in(d1.active[day_index(2)]));
  EXPECT_TRUE(in(d1.active[day_index(3)]));
  EXPECT_FALSE(in(d1.active[day_index(4)]));
}

TEST(Detector, DailyAhPacketsIncludeAllTheirEvents) {
  const auto dataset = background_plus({
      make_event("203.0.113.1", 23, 2, 400, 400),  // qualifying
      make_event("203.0.113.1", 80, 2, 7, 7),      // small event, same src+day
  });
  const DetectionResult result = AggressiveScannerDetector(test_config()).detect(dataset);
  const DefinitionResult& d1 = result.of(Definition::AddressDispersion);
  const auto index = static_cast<std::size_t>(2 - result.first_day);
  EXPECT_EQ(d1.daily_ah_packets[index], 407u);
}

TEST(Detector, TotalPacketsPerDayCoverEverything) {
  const auto dataset = background_plus({});
  const DetectionResult result = AggressiveScannerDetector(test_config()).detect(dataset);
  std::uint64_t total = 0;
  for (const std::uint64_t day : result.total_event_packets_per_day) total += day;
  EXPECT_EQ(total, dataset.total_packets());
}

TEST(Detector, EmptyDatasetYieldsEmptyResult) {
  const telescope::EventDataset dataset({}, kDarknetSize);
  const DetectionResult result = AggressiveScannerDetector(test_config()).detect(dataset);
  for (const Definition d : kAllDefinitions) {
    EXPECT_TRUE(result.of(d).ips.empty());
    EXPECT_TRUE(result.of(d).daily.empty());
  }
}

TEST(Detector, ConfigValidation) {
  DetectorConfig config;
  config.dispersion_threshold = 0;
  EXPECT_THROW(AggressiveScannerDetector{config}, std::invalid_argument);
  config = {};
  config.packet_volume_alpha = 1.0;
  EXPECT_THROW(AggressiveScannerDetector{config}, std::invalid_argument);
  config = {};
  config.port_count_alpha = 0.0;
  EXPECT_THROW(AggressiveScannerDetector{config}, std::invalid_argument);
}

// -------------------------------------------------------------------- lists

TEST(Lists, BuildMergesDefinitions) {
  const auto dataset = background_plus({
      make_event("203.0.113.1", 23, 2, 100000, 400),  // D1 + D2
  });
  const DetectionResult result = AggressiveScannerDetector(test_config()).detect(dataset);
  const auto entries = build_daily_lists(result);
  const net::Ipv4Address src = *net::Ipv4Address::parse("203.0.113.1");
  const auto it = std::find_if(entries.begin(), entries.end(),
                               [&](const DailyListEntry& e) { return e.ip == src; });
  ASSERT_NE(it, entries.end());
  EXPECT_TRUE(it->matches(Definition::AddressDispersion));
  EXPECT_TRUE(it->matches(Definition::PacketVolume));
  EXPECT_EQ(it->day, 2);
}

TEST(Lists, CsvRoundTrip) {
  std::vector<DailyListEntry> entries = {
      {5, *net::Ipv4Address::parse("203.0.113.1"), 0b011},
      {6, *net::Ipv4Address::parse("203.0.113.2"), 0b100},
  };
  std::stringstream stream;
  EXPECT_EQ(write_daily_lists_csv(entries, stream), 2u);
  const auto read = read_daily_lists_csv(stream);
  ASSERT_EQ(read.size(), 2u);
  EXPECT_EQ(read[0], entries[0]);
  EXPECT_EQ(read[1], entries[1]);
}

TEST(Lists, CsvRejectsMalformedInput) {
  const auto expect_throw = [](const std::string& content) {
    std::istringstream in(content);
    EXPECT_THROW(read_daily_lists_csv(in), std::runtime_error) << content;
  };
  expect_throw("wrong,header,row\n");
  expect_throw("date,ip,definitions\nnot-a-date,1.2.3.4,1\n");
  expect_throw("date,ip,definitions\n2021-01-05,999.2.3.4,1\n");
  expect_throw("date,ip,definitions\n2021-01-05,1.2.3.4,9\n");
  expect_throw("date,ip,definitions\n2021-01-05,1.2.3.4,\n");
  expect_throw("date,ip,definitions\n2021-01-05\n");
}

TEST(Lists, CsvErrorsCarryLineNumberAndReason) {
  // Corpus of malformed files: every rejection must name the offending
  // line and the reason, so an operator can fix a multi-megabyte list
  // without bisecting it.
  const auto message_of = [](const std::string& content) -> std::string {
    std::istringstream in(content);
    try {
      read_daily_lists_csv(in);
    } catch (const std::runtime_error& err) {
      return err.what();
    }
    return "";
  };
  const std::string good = "2021-01-05,1.2.3.4,1\n";
  const struct {
    std::string content;
    const char* line;
    const char* reason;
  } corpus[] = {
      {"definitions,ip,date\n", "line 1", "header"},
      {"date,ip,definitions\n" + good + "2021-01,5.6.7.8,1\n", "line 3",
       "bad date"},
      // Numeric-looking but non-digit date: must not slip through via a
      // partial integer parse.
      {"date,ip,definitions\n" + good + good + "abcd-ef-gh,5.6.7.8,1\n",
       "line 4", "bad date"},
      {"date,ip,definitions\n" + good + "20x1-01-05,5.6.7.8,1\n", "line 3",
       "bad date"},
      {"date,ip,definitions\n" + good + "2021-01-05,999.1.2.3,1\n", "line 3",
       "bad IP"},
      {"date,ip,definitions\n" + good + "2021-01-05,5.6.7.8,4\n", "line 3",
       "bad definition"},
      {"date,ip,definitions\n" + good + "2021-01-05,5.6.7.8,+\n", "line 3",
       "empty definition"},
      {"date,ip,definitions\n" + good + "2021-01-05,5.6.7.8\n", "line 3",
       "3 fields"},
  };
  for (const auto& expectation : corpus) {
    const std::string message = message_of(expectation.content);
    EXPECT_NE(message.find(expectation.line), std::string::npos)
        << expectation.content << " -> " << message;
    EXPECT_NE(message.find(expectation.reason), std::string::npos)
        << expectation.content << " -> " << message;
  }
}

TEST(Lists, CsvUsesCalendarDates) {
  std::vector<DailyListEntry> entries = {
      {365, *net::Ipv4Address::parse("1.2.3.4"), 1}};
  std::stringstream stream;
  write_daily_lists_csv(entries, stream);
  EXPECT_NE(stream.str().find("2022-01-01"), std::string::npos);
}

}  // namespace
}  // namespace orion::detect

// NOTE: appended suite — online/streaming detection.
#include "orion/detect/streaming.hpp"

namespace orion::detect {
namespace {

StreamingConfig streaming_config() {
  StreamingConfig config;
  config.base = test_config();
  config.warmup_samples = 100;
  return config;
}

TEST(StreamingDetector, EmitsDayResultsAtBoundaries) {
  StreamingDetector detector(streaming_config(), kDarknetSize);
  // Day 0: background; day 1: one big dispersed event; day 3: trigger.
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE(detector.observe(make_event("10.0.0.1", 80, 0, 5, 5)).empty());
  }
  const auto none = detector.observe(make_event("203.0.113.1", 23, 1, 400, 400));
  ASSERT_EQ(none.size(), 1u);  // day 0 closed
  EXPECT_EQ(none[0].day, 0);

  const auto results = detector.observe(make_event("10.0.0.2", 80, 3, 5, 5));
  ASSERT_EQ(results.size(), 2u);  // days 1 and 2 closed
  EXPECT_EQ(results[0].day, 1);
  EXPECT_TRUE(results[0].calibrated);
  const auto& d1_list = results[0].daily[0];
  EXPECT_TRUE(std::binary_search(d1_list.begin(), d1_list.end(),
                                 *net::Ipv4Address::parse("203.0.113.1")));
  // Day 2 had no events at all.
  EXPECT_TRUE(results[1].daily[0].empty());

  const auto last = detector.finish();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->day, 3);
  EXPECT_FALSE(detector.finish().has_value());
}

TEST(StreamingDetector, WithholdsListsDuringWarmup) {
  StreamingConfig config = streaming_config();
  config.warmup_samples = 1000000;  // never warm
  StreamingDetector detector(config, kDarknetSize);
  detector.observe(make_event("203.0.113.1", 23, 0, 400, 400));
  const auto results = detector.observe(make_event("10.0.0.1", 80, 1, 5, 5));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].calibrated);
  EXPECT_TRUE(results[0].daily[0].empty());  // even D1 withheld pre-warmup
}

TEST(StreamingDetector, RejectsOutOfOrderDays) {
  StreamingDetector detector(streaming_config(), kDarknetSize);
  detector.observe(make_event("10.0.0.1", 80, 5, 5, 5));
  EXPECT_THROW(detector.observe(make_event("10.0.0.1", 80, 4, 5, 5)),
               std::invalid_argument);
}

TEST(StreamingDetector, AgreesWithBatchOnDefinition1) {
  // D1 is threshold-free, so streaming and batch must match exactly.
  std::vector<telescope::DarknetEvent> events;
  for (int s = 0; s < 200; ++s) {
    const std::string src =
        net::Ipv4Address(0x0A000000u + static_cast<std::uint32_t>(s)).to_string();
    events.push_back(make_event(src.c_str(), 80, s % 5, 5, s % 3 == 0 ? 150 : 5));
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) { return a.start < b.start; });
  const telescope::EventDataset dataset(events, kDarknetSize);
  const DetectionResult batch =
      AggressiveScannerDetector(test_config()).detect(dataset);

  StreamingConfig config = streaming_config();
  config.warmup_samples = 0;
  StreamingDetector streaming(config, kDarknetSize);
  for (const auto& e : dataset.events()) streaming.observe(e);
  streaming.finish();
  EXPECT_EQ(streaming.ips(Definition::AddressDispersion),
            batch.of(Definition::AddressDispersion).ips);
}

TEST(StreamingDetector, RejectsZeroDarknet) {
  EXPECT_THROW(StreamingDetector(streaming_config(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace orion::detect

// NOTE: appended suite — spoofing/misconfiguration filter.
#include "orion/detect/spoof_filter.hpp"
#include "orion/scangen/noise.hpp"

namespace orion::detect {
namespace {

net::PrefixSet filter_dark_space() {
  return net::PrefixSet({*net::Prefix::parse("198.18.0.0/22")});
}

TEST(SpoofFilter, BogonDetection) {
  EXPECT_TRUE(SpoofFilter::is_bogon(*net::Ipv4Address::parse("10.1.2.3")));
  EXPECT_TRUE(SpoofFilter::is_bogon(*net::Ipv4Address::parse("192.168.1.1")));
  EXPECT_TRUE(SpoofFilter::is_bogon(*net::Ipv4Address::parse("127.0.0.1")));
  EXPECT_TRUE(SpoofFilter::is_bogon(*net::Ipv4Address::parse("224.0.0.5")));
  EXPECT_TRUE(SpoofFilter::is_bogon(*net::Ipv4Address::parse("255.255.255.255")));
  EXPECT_TRUE(SpoofFilter::is_bogon(*net::Ipv4Address::parse("100.64.0.1")));
  EXPECT_FALSE(SpoofFilter::is_bogon(*net::Ipv4Address::parse("8.8.8.8")));
  EXPECT_FALSE(SpoofFilter::is_bogon(*net::Ipv4Address::parse("203.0.113.1")));
}

TEST(SpoofFilter, FlagsBogonAndOwnSpaceSources) {
  SpoofFilter filter({}, filter_dark_space());
  SpoofFilterStats stats;
  const auto clean = filter.run(
      {
          make_event("11.1.1.1", 23, 0, 100, 100),     // clean
          make_event("192.168.0.7", 23, 0, 100, 100),  // bogon
          make_event("198.18.1.9", 23, 0, 100, 100),   // inside the darknet
      },
      stats);
  EXPECT_EQ(clean.size(), 1u);
  EXPECT_EQ(stats.clean, 1u);
  EXPECT_EQ(stats.bogon, 1u);
  EXPECT_EQ(stats.own_space, 1u);
  EXPECT_EQ(stats.total(), 3u);
}

TEST(SpoofFilter, FlagsMisconfiguration) {
  // Long-lived, chatty, single-destination event.
  auto misconfig = make_event("11.1.1.1", 443, 0, 2000, 1);
  misconfig.end = misconfig.start + net::Duration::days(2);
  // A real (short) small scan with one destination stays clean.
  const auto small_scan = make_event("11.1.1.2", 443, 0, 3, 1);
  SpoofFilter filter({}, filter_dark_space());
  SpoofFilterStats stats;
  const auto clean = filter.run({misconfig, small_scan}, stats);
  ASSERT_EQ(clean.size(), 1u);
  EXPECT_EQ(clean[0].key.src, small_scan.key.src);
  EXPECT_EQ(stats.misconfiguration, 1u);
}

TEST(SpoofFilter, FlagsSpoofedBurstsButNotScatteredSingles) {
  std::vector<telescope::DarknetEvent> events;
  // Burst: 100 distinct sources, one packet each, same port, same minute.
  for (int i = 0; i < 100; ++i) {
    auto e = make_event(
        net::Ipv4Address(0x0B000000u + static_cast<std::uint32_t>(i)).to_string().c_str(),
        8080, 0, 1, 1);
    events.push_back(e);
  }
  // Scattered singles: different ports, spread over days -> clean.
  for (int i = 0; i < 20; ++i) {
    events.push_back(make_event(
        net::Ipv4Address(0x0C000000u + static_cast<std::uint32_t>(i)).to_string().c_str(),
        static_cast<std::uint16_t>(1000 + i), i % 5, 1, 1));
  }
  SpoofFilter filter({}, filter_dark_space());
  SpoofFilterStats stats;
  const auto clean = filter.run(events, stats);
  EXPECT_EQ(stats.backscatter, 100u);
  EXPECT_EQ(clean.size(), 20u);
}

TEST(SpoofFilter, CleansSynthesizedNoiseWithoutTouchingScans) {
  // Inject generator noise into a legitimate-scan background; the filter
  // must remove nearly all noise while keeping every real scan.
  scangen::NoiseEventsConfig noise_config;
  noise_config.window_start_day = 0;
  noise_config.window_end_day = 14;
  noise_config.spoofed_bursts = 6;
  noise_config.sources_per_burst = 200;
  noise_config.misconfigured_hosts = 25;
  const auto noise = scangen::synthesize_noise_events(noise_config);

  std::vector<telescope::DarknetEvent> events;
  std::unordered_set<net::Ipv4Address> scan_sources;
  for (int s = 0; s < 300; ++s) {
    auto e = make_event(
        net::Ipv4Address(0xCB000000u + static_cast<std::uint32_t>(s)).to_string().c_str(),
        static_cast<std::uint16_t>(20 + s % 40), s % 14, 40 + s % 200,
        20 + static_cast<std::uint64_t>(s % 100));
    scan_sources.insert(e.key.src);
    events.push_back(e);
  }
  const std::size_t scan_count = events.size();
  events.insert(events.end(), noise.begin(), noise.end());

  SpoofFilter filter({}, filter_dark_space());
  SpoofFilterStats stats;
  const auto clean = filter.run(events, stats);

  // All legitimate scans survive.
  std::size_t surviving_scans = 0;
  for (const auto& e : clean) surviving_scans += scan_sources.contains(e.key.src);
  EXPECT_EQ(surviving_scans, scan_count);
  // >90% of noise events are removed.
  const double noise_removed =
      static_cast<double>(stats.bogon + stats.misconfiguration + stats.backscatter) /
      static_cast<double>(noise.size());
  EXPECT_GT(noise_removed, 0.90);
}

TEST(SpoofFilter, NoiseSourcesWouldOtherwisePolluteD3) {
  // Without the filter, a spoofed burst inflates nothing for D1/D2 (one
  // packet, one dest) but the misconfigured hosts can reach high packet
  // counts; verify the filter keeps them out of the detector's D2 set.
  scangen::NoiseEventsConfig noise_config;
  noise_config.spoofed_bursts = 2;
  noise_config.misconfigured_hosts = 30;
  const auto noise = scangen::synthesize_noise_events(noise_config);
  auto dataset_events = noise;
  for (int s = 0; s < 500; ++s) {
    dataset_events.push_back(make_event(
        net::Ipv4Address(0xCB100000u + static_cast<std::uint32_t>(s)).to_string().c_str(),
        80, s % 14, 10 + s % 20, 10));
  }

  SpoofFilter filter({}, filter_dark_space());
  SpoofFilterStats stats;
  const auto clean = filter.run(dataset_events, stats);
  const telescope::EventDataset filtered(clean, 1000);
  const DetectionResult result =
      AggressiveScannerDetector(test_config()).detect(filtered);
  for (const auto& e : noise) {
    EXPECT_FALSE(result.of(Definition::PacketVolume).ips.contains(e.key.src));
  }
}

}  // namespace
}  // namespace orion::detect

// NOTE: appended suite — daily-list diffing.
#include "orion/detect/list_diff.hpp"

namespace orion::detect {
namespace {

DailyListEntry entry(std::int64_t day, const char* ip) {
  return {day, *net::Ipv4Address::parse(ip), 1};
}

TEST(ListDiff, AddedRemovedStable) {
  const std::vector<DailyListEntry> yesterday = {
      entry(5, "1.1.1.1"), entry(5, "2.2.2.2"), entry(5, "3.3.3.3")};
  const std::vector<DailyListEntry> today = {
      entry(6, "2.2.2.2"), entry(6, "3.3.3.3"), entry(6, "4.4.4.4"),
      entry(6, "5.5.5.5")};
  const ListDiff diff = diff_daily_lists(yesterday, today);
  ASSERT_EQ(diff.added.size(), 2u);
  EXPECT_EQ(diff.added[0], *net::Ipv4Address::parse("4.4.4.4"));
  ASSERT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.removed[0], *net::Ipv4Address::parse("1.1.1.1"));
  EXPECT_EQ(diff.stable, 2u);
  EXPECT_GT(diff.churn(), 0.0);
}

TEST(ListDiff, IdenticalListsHaveZeroChurn) {
  const std::vector<DailyListEntry> list = {entry(1, "1.1.1.1"),
                                            entry(1, "2.2.2.2")};
  const ListDiff diff = diff_daily_lists(list, list);
  EXPECT_TRUE(diff.added.empty());
  EXPECT_TRUE(diff.removed.empty());
  EXPECT_DOUBLE_EQ(diff.churn(), 0.0);
}

TEST(ListDiff, ChurnSeriesWalksConsecutiveDays) {
  std::vector<DailyListEntry> entries = {
      entry(1, "1.1.1.1"), entry(1, "2.2.2.2"),
      entry(2, "2.2.2.2"), entry(2, "3.3.3.3"),
      entry(4, "3.3.3.3"),  // day 3 missing: diff is day2 -> day4
  };
  const auto series = churn_series(entries);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].first, 2);
  EXPECT_EQ(series[0].second.added.size(), 1u);
  EXPECT_EQ(series[0].second.removed.size(), 1u);
  EXPECT_EQ(series[1].first, 4);
  EXPECT_EQ(series[1].second.stable, 1u);
}

// ------------------------------------------------------------------ PortSet

// Model check across the small-vector -> bitmap promotion boundary: the
// flat set must agree with std::set<uint16_t> on every operation.
TEST(PortSet, AgreesWithSetModelAcrossPromotion) {
  PortSet flat;
  std::set<std::uint16_t> model;
  net::Rng rng(4);
  for (int step = 0; step < 4000; ++step) {
    const auto port = static_cast<std::uint16_t>(rng.bounded(200));
    EXPECT_EQ(flat.insert(port), model.insert(port).second);
    ASSERT_EQ(flat.size(), model.size());
  }
  for (std::uint16_t p = 0; p < 200; ++p) {
    EXPECT_EQ(flat.contains(p), model.count(p) > 0);
  }
  // for_each must visit in ascending order, same as the model.
  std::vector<std::uint16_t> visited;
  flat.for_each([&](std::uint16_t p) { visited.push_back(p); });
  EXPECT_EQ(visited, std::vector<std::uint16_t>(model.begin(), model.end()));
}

TEST(PortSet, SmallSetsStayInline) {
  PortSet set;
  for (std::uint16_t p : {80, 443, 22, 8080, 80, 443}) set.insert(p);
  EXPECT_EQ(set.size(), 4u);
  EXPECT_TRUE(set.contains(22));
  EXPECT_FALSE(set.contains(23));
  std::vector<std::uint16_t> visited;
  set.for_each([&](std::uint16_t p) { visited.push_back(p); });
  EXPECT_EQ(visited, (std::vector<std::uint16_t>{22, 80, 443, 8080}));
}

TEST(PortSet, CopiesAreIndependent) {
  PortSet a;
  for (std::uint16_t p = 0; p < 100; ++p) a.insert(p);  // promoted to bitmap
  PortSet b = a;
  EXPECT_EQ(a, b);
  b.insert(60000);
  EXPECT_NE(a, b);
  EXPECT_FALSE(a.contains(60000));
  EXPECT_TRUE(b.contains(60000));
  EXPECT_EQ(b.size(), 101u);
}

TEST(PortSet, HandlesExtremePortValues) {
  PortSet set;
  EXPECT_TRUE(set.insert(0));
  EXPECT_TRUE(set.insert(65535));
  EXPECT_FALSE(set.insert(65535));
  for (std::uint16_t p = 1; p <= 30; ++p) set.insert(p);  // force promotion
  EXPECT_TRUE(set.contains(0));
  EXPECT_TRUE(set.contains(65535));
  EXPECT_EQ(set.size(), 32u);
}

}  // namespace
}  // namespace orion::detect
