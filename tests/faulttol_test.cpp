// Fault-tolerance suite: the OCP1 checkpoint container, the bounded
// reorder buffer, the deterministic fault injector, and the end-to-end
// hardening properties — crash-resume equivalence (byte-identical
// results) and 100% fault accounting under injected failures.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "orion/detect/streaming.hpp"
#include "orion/netbase/crc32.hpp"
#include "orion/packet/builder.hpp"
#include "orion/scangen/fault.hpp"
#include "orion/telescope/capture.hpp"
#include "orion/telescope/checkpoint.hpp"
#include "orion/telescope/ingest.hpp"
#include "orion/telescope/store.hpp"

namespace orion {
namespace {

using telescope::CheckpointReader;
using telescope::CheckpointWriter;
using telescope::checkpoint_tag;

net::Ipv4Address ip(const char* text) { return *net::Ipv4Address::parse(text); }

net::PrefixSet dark_space() {
  return net::PrefixSet({*net::Prefix::parse("198.18.0.0/24")});
}

telescope::AggregatorConfig fast_config() {
  telescope::AggregatorConfig config;
  config.timeout = net::Duration::minutes(10);
  config.sweep_interval = net::Duration::minutes(1);
  return config;
}

// A deterministic in-order capture workload: 8 sources rotating through
// ports (so keys go idle and events split by timeout), one packet per
// second into the /24 dark space, tool mix included.
std::vector<pkt::Packet> make_stream(std::size_t n) {
  const pkt::ScanTool tools[] = {pkt::ScanTool::ZMap, pkt::ScanTool::Masscan,
                                 pkt::ScanTool::Mirai, pkt::ScanTool::Other};
  std::vector<pkt::ProbeBuilder> builders;
  for (std::uint32_t s = 0; s < 8; ++s) {
    builders.emplace_back(net::Ipv4Address(0xCB007100u + s), tools[s % 4],
                          net::Rng(1000 + s));
  }
  std::vector<pkt::Packet> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const net::SimTime t =
        net::SimTime::epoch() + net::Duration::seconds(static_cast<std::int64_t>(i));
    const std::uint16_t port = static_cast<std::uint16_t>(80 + (i / 500) % 4);
    const net::Ipv4Address dst(ip("198.18.0.0").value() +
                               static_cast<std::uint32_t>(i % 256));
    out.push_back(builders[i % 8].tcp_syn(t, dst, port));
  }
  return out;
}

// Canonical form of a dataset: events sorted by every field, then
// serialized — two runs are equivalent iff these bytes are identical
// (unordered_map iteration order must not leak into the comparison).
std::string canonical_bytes(const telescope::EventDataset& dataset) {
  std::vector<telescope::DarknetEvent> events = dataset.events();
  const auto key_of = [](const telescope::DarknetEvent& e) {
    return std::tuple(e.key.src.value(), e.key.dst_port,
                      static_cast<int>(e.key.type),
                      e.start.since_epoch().total_nanos(),
                      e.end.since_epoch().total_nanos(), e.packets,
                      e.unique_dests, e.packets_by_tool);
  };
  std::sort(events.begin(), events.end(),
            [&](const auto& a, const auto& b) { return key_of(a) < key_of(b); });
  std::stringstream out;
  telescope::write_events_binary(
      telescope::EventDataset(std::move(events), dataset.darknet_size()), out);
  return out.str();
}

// ------------------------------------------------------------------- CRC-32

TEST(Crc32, KnownAnswers) {
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(net::Crc32::of(check), 0xCBF43926u);  // the standard check value
  EXPECT_EQ(net::Crc32::of({}), 0x00000000u);
}

TEST(Crc32, StreamingMatchesOneShot) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<std::uint8_t>(i * 7));
  net::Crc32 crc;
  crc.update(std::span(data.data(), 300));
  crc.update(std::span(data.data() + 300, 700));
  EXPECT_EQ(crc.value(), net::Crc32::of(data));
  EXPECT_NE(net::Crc32::of(data), 0u);
}

// -------------------------------------------------------- OCP1 container

constexpr std::uint64_t kTestTag = checkpoint_tag('T', 'S', 'T', '1');

std::string sample_container() {
  CheckpointWriter writer;
  writer.tag(kTestTag);
  writer.u64(42);
  writer.i64(-7);
  writer.f64(3.25);
  writer.u8(200);
  const std::uint8_t blob[] = {1, 2, 3, 4, 5};
  writer.bytes(blob);
  std::stringstream out;
  writer.finish(out);
  return out.str();
}

TEST(Checkpoint, ContainerRoundTrip) {
  std::stringstream in(sample_container());
  CheckpointReader reader(in);
  reader.expect_tag(kTestTag, "test");
  EXPECT_EQ(reader.u64("a"), 42u);
  EXPECT_EQ(reader.i64("b"), -7);
  EXPECT_DOUBLE_EQ(reader.f64("c"), 3.25);
  EXPECT_EQ(reader.u8("d"), 200);
  EXPECT_EQ(reader.bytes(5, "e"), (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(reader.done());
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(Checkpoint, RejectsBadMagic) {
  std::string bytes = sample_container();
  bytes[0] = 'X';
  std::stringstream in(bytes);
  EXPECT_THROW(CheckpointReader reader(in), std::runtime_error);
}

TEST(Checkpoint, RejectsUnknownVersion) {
  std::string bytes = sample_container();
  bytes[4] = 9;  // low byte of the version u64
  std::stringstream in(bytes);
  EXPECT_THROW(CheckpointReader reader(in), std::runtime_error);
}

TEST(Checkpoint, RejectsPayloadCorruption) {
  // Flip one payload bit: the CRC trailer must catch it, wherever it is.
  const std::string bytes = sample_container();
  for (const std::size_t offset :
       {std::size_t{20}, std::size_t{28}, std::size_t{36}, bytes.size() - 5}) {
    std::string bad = bytes;
    bad[offset] = static_cast<char>(bad[offset] ^ 0x01);
    std::stringstream in(bad);
    EXPECT_THROW(CheckpointReader reader(in), std::runtime_error)
        << "flip at " << offset;
  }
}

TEST(Checkpoint, RejectsCrcCorruption) {
  std::string bytes = sample_container();
  bytes.back() = static_cast<char>(bytes.back() ^ 0x40);
  std::stringstream in(bytes);
  EXPECT_THROW(CheckpointReader reader(in), std::runtime_error);
}

TEST(Checkpoint, RejectsTruncation) {
  const std::string bytes = sample_container();
  // A torn write can cut the file anywhere; every prefix must be rejected
  // up front, never half-restored.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::stringstream in(bytes.substr(0, cut));
    EXPECT_THROW(CheckpointReader reader(in), std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(Checkpoint, RejectsWrongSectionTag) {
  std::stringstream in(sample_container());
  CheckpointReader reader(in);
  EXPECT_THROW(reader.expect_tag(checkpoint_tag('T', 'S', 'T', '2'), "other"),
               std::runtime_error);
}

TEST(Checkpoint, RejectsReadPastPayload) {
  CheckpointWriter writer;
  writer.u64(1);
  std::stringstream out;
  writer.finish(out);
  CheckpointReader reader(out);
  EXPECT_EQ(reader.u64("only"), 1u);
  EXPECT_THROW(reader.u64("past end"), std::runtime_error);
}

TEST(Checkpoint, WriterReportsStreamFailure) {
  CheckpointWriter writer;
  writer.u64(1);
  std::stringstream out;
  out.setstate(std::ios::badbit);
  EXPECT_THROW(writer.finish(out), std::runtime_error);
}

// -------------------------------------------------------- reorder buffer

pkt::Packet at_seconds(double s) {
  pkt::Packet p;
  p.timestamp = net::SimTime::epoch() +
                net::Duration::nanos(static_cast<std::int64_t>(s * 1e9));
  return p;
}

struct BufferHarness {
  std::vector<net::SimTime> delivered;
  std::vector<net::SimTime> late;
  telescope::ReorderBuffer buffer;

  explicit BufferHarness(telescope::ReorderConfig config)
      : buffer(
            config,
            [this](const pkt::Packet& p) {
              if (!delivered.empty()) {
                EXPECT_GE(p.timestamp, delivered.back()) << "order violation";
              }
              delivered.push_back(p.timestamp);
            },
            [this](const pkt::Packet& p) { late.push_back(p.timestamp); }) {}
};

TEST(ReorderBuffer, AbsorbsJitterWithinWindow) {
  BufferHarness h({.window = net::Duration::seconds(5), .max_buffered = 64});
  using Outcome = telescope::ReorderBuffer::Outcome;
  EXPECT_EQ(h.buffer.push(at_seconds(10)), Outcome::Buffered);
  EXPECT_EQ(h.buffer.push(at_seconds(13)), Outcome::Buffered);
  EXPECT_EQ(h.buffer.push(at_seconds(11)), Outcome::Reordered);  // 2s of jitter
  EXPECT_EQ(h.buffer.push(at_seconds(12)), Outcome::Reordered);
  EXPECT_EQ(h.buffer.push(at_seconds(20)), Outcome::Buffered);  // releases <=15
  EXPECT_EQ(h.delivered.size(), 4u);
  h.buffer.flush();
  ASSERT_EQ(h.delivered.size(), 5u);
  EXPECT_TRUE(std::is_sorted(h.delivered.begin(), h.delivered.end()));
  EXPECT_TRUE(h.late.empty());
  EXPECT_EQ(h.buffer.watermark(), at_seconds(20).timestamp);
}

TEST(ReorderBuffer, QuarantinesBeyondWindow) {
  BufferHarness h({.window = net::Duration::seconds(1), .max_buffered = 64});
  using Outcome = telescope::ReorderBuffer::Outcome;
  h.buffer.push(at_seconds(100));
  h.buffer.push(at_seconds(102));  // releases 100, watermark = 100
  EXPECT_EQ(h.buffer.push(at_seconds(99.5)), Outcome::Late);
  EXPECT_EQ(h.late.size(), 1u);
  h.buffer.flush();
  EXPECT_EQ(h.delivered.size(), 2u);  // the late packet was never delivered
}

TEST(ReorderBuffer, AcceptsArbitrarilyOldFirstPacket) {
  // Before any delivery the watermark must not reject pre-epoch stamps.
  BufferHarness h({.window = net::Duration::seconds(1), .max_buffered = 64});
  EXPECT_EQ(h.buffer.push(at_seconds(-1000)),
            telescope::ReorderBuffer::Outcome::Buffered);
  h.buffer.flush();
  EXPECT_EQ(h.delivered.size(), 1u);
}

TEST(ReorderBuffer, OverflowForceDeliversOldest) {
  BufferHarness h({.window = net::Duration::seconds(10), .max_buffered = 2});
  using Outcome = telescope::ReorderBuffer::Outcome;
  h.buffer.push(at_seconds(100));
  h.buffer.push(at_seconds(101));
  h.buffer.push(at_seconds(102));  // third held packet breaches the bound
  EXPECT_EQ(h.buffer.overflow_releases(), 1u);
  EXPECT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.buffer.watermark(), at_seconds(100).timestamp);
  // 99.8s is inside the 10s jitter window, but the forced release raised
  // the watermark past it — the distinct overflow-pressure reason.
  EXPECT_EQ(h.buffer.push(at_seconds(99.8)), Outcome::LateOverflow);
  EXPECT_EQ(h.late.size(), 1u);
  h.buffer.flush();
  EXPECT_EQ(h.delivered.size(), 3u);
  EXPECT_TRUE(std::is_sorted(h.delivered.begin(), h.delivered.end()));
}

TEST(ReorderBuffer, BufferedCountTracksHeap) {
  BufferHarness h({.window = net::Duration::seconds(5), .max_buffered = 64});
  for (int i = 0; i < 4; ++i) h.buffer.push(at_seconds(100 + i));
  EXPECT_EQ(h.buffer.buffered(), 4u);
  h.buffer.flush();
  EXPECT_EQ(h.buffer.buffered(), 0u);
}

// -------------------------------------------------------- fault injector

scangen::FaultConfig all_faults(std::uint64_t seed) {
  scangen::FaultConfig config;
  config.seed = seed;
  config.drop_prob = 0.05;
  config.duplicate_prob = 0.05;
  config.reorder_prob = 0.10;
  config.regression_prob = 0.02;
  config.corrupt_prob = 0.05;
  config.reorder_hold = net::Duration::seconds(2);
  config.regression_jump = net::Duration::seconds(30);
  return config;
}

std::vector<pkt::Packet> drain(scangen::FaultInjector& injector) {
  std::vector<pkt::Packet> out;
  while (auto p = injector.next()) out.push_back(*p);
  return out;
}

TEST(FaultInjector, NoFaultsIsPassthrough) {
  const auto packets = make_stream(200);
  scangen::FaultInjector injector(packets, {.seed = 5});
  const auto out = drain(injector);
  ASSERT_EQ(out.size(), packets.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].timestamp, packets[i].timestamp);
    EXPECT_EQ(out[i].tuple.src, packets[i].tuple.src);
    EXPECT_EQ(out[i].tcp_seq, packets[i].tcp_seq);
  }
  EXPECT_TRUE(injector.stats().conserved());
  EXPECT_EQ(injector.stats().dropped + injector.stats().duplicated +
                injector.stats().reordered + injector.stats().regressed +
                injector.stats().corrupted,
            0u);
}

TEST(FaultInjector, SameSeedSameFaults) {
  const auto packets = make_stream(800);
  scangen::FaultInjector a(packets, all_faults(7));
  scangen::FaultInjector b(packets, all_faults(7));
  const auto out_a = drain(a);
  const auto out_b = drain(b);
  ASSERT_EQ(out_a.size(), out_b.size());
  for (std::size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_EQ(out_a[i].timestamp, out_b[i].timestamp);
    EXPECT_EQ(out_a[i].tuple.src, out_b[i].tuple.src);
    EXPECT_EQ(out_a[i].tcp_seq, out_b[i].tcp_seq);
    EXPECT_EQ(out_a[i].tcp_flags, out_b[i].tcp_flags);
  }
  EXPECT_EQ(a.stats().dropped, b.stats().dropped);
  EXPECT_EQ(a.stats().corrupted, b.stats().corrupted);
}

TEST(FaultInjector, DifferentSeedDifferentFaults) {
  const auto packets = make_stream(800);
  scangen::FaultInjector a(packets, all_faults(7));
  scangen::FaultInjector b(packets, all_faults(8));
  const auto out_a = drain(a);
  const auto out_b = drain(b);
  const bool same_shape =
      out_a.size() == out_b.size() &&
      std::equal(out_a.begin(), out_a.end(), out_b.begin(),
                 [](const auto& x, const auto& y) {
                   return x.timestamp == y.timestamp && x.tcp_seq == y.tcp_seq;
                 });
  EXPECT_FALSE(same_shape);
}

TEST(FaultInjector, ConservationUnderAllFaults) {
  const auto packets = make_stream(2000);
  scangen::FaultInjector injector(packets, all_faults(21));
  const auto out = drain(injector);
  const scangen::FaultStats& stats = injector.stats();
  EXPECT_EQ(stats.input, packets.size());
  EXPECT_TRUE(stats.conserved());
  EXPECT_EQ(out.size(), stats.emitted);
  // Every fault type actually fired at these rates and stream length.
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.duplicated, 0u);
  EXPECT_GT(stats.reordered, 0u);
  EXPECT_GT(stats.regressed, 0u);
  EXPECT_GT(stats.corrupted, 0u);
}

TEST(FaultInjector, ReorderDisplacementIsBounded) {
  scangen::FaultConfig config;
  config.seed = 3;
  config.reorder_prob = 0.3;
  config.reorder_hold = net::Duration::seconds(2);
  const auto packets = make_stream(1000);
  scangen::FaultInjector injector(packets, config);
  const auto out = drain(injector);
  ASSERT_EQ(out.size(), packets.size());
  net::SimTime max_seen = out.front().timestamp;
  for (const pkt::Packet& p : out) {
    // A withheld packet reappears after newer packets, but never after
    // the stream clock has advanced more than hold + one inter-arrival
    // gap (1s in this stream) past its own timestamp.
    EXPECT_GE(p.timestamp + config.reorder_hold + net::Duration::seconds(1),
              max_seen);
    if (p.timestamp > max_seen) max_seen = p.timestamp;
  }
  EXPECT_GT(injector.stats().reordered, 0u);
}

// ------------------------------------------- hardened ingest: properties

// Acceptance: with all five fault types enabled the hardened path never
// throws, and PipelineHealth accounts for 100% of the injected stream.
TEST(FaultTolerance, PipelineSurvivesAllFiveFaultsFullyAccounted) {
  const auto packets = make_stream(4000);
  scangen::FaultInjector injector(packets, all_faults(1234));

  telescope::TelescopeCapture capture(dark_space(), fast_config());
  std::uint64_t quarantined = 0;
  telescope::ResilientIngest ingest(
      {.window = net::Duration::seconds(5), .max_buffered = 65536},
      [&](const pkt::Packet& p) { capture.observe(p); },
      [&](const pkt::Packet&) { ++quarantined; });

  EXPECT_NO_THROW({
    while (auto p = injector.next()) ingest.observe(*p);
    ingest.finish();
  });

  const telescope::PipelineHealth& health = ingest.health();
  const scangen::FaultStats& stats = injector.stats();
  // Injector-side conservation, then ingest-side conservation, then the
  // seam between them: nothing appears or vanishes unaccounted.
  EXPECT_TRUE(stats.conserved());
  EXPECT_EQ(health.ingested, stats.emitted);
  EXPECT_TRUE(health.consistent());
  EXPECT_EQ(health.buffered, 0u);
  EXPECT_EQ(health.ingested, health.delivered + health.dropped());
  EXPECT_EQ(quarantined, health.dropped());
  // 30s regressions far exceed the 5s window: the late path was exercised.
  EXPECT_GT(stats.regressed, 0u);
  EXPECT_GT(health.dropped_late, 0u);
  EXPECT_GT(health.reordered, 0u);
  // The capture saw exactly the delivered packets, in order, no throw.
  EXPECT_EQ(capture.packets_captured(), health.delivered);
  EXPECT_GT(capture.finish().event_count(), 0u);
}

TEST(FaultTolerance, WindowAbsorbsBoundedReorderingExactly) {
  // Reordering alone (hold <= window, no gaps beyond window - hold):
  // the hardened pipeline must drop nothing and reproduce the clean
  // run's dataset byte for byte.
  const auto packets = make_stream(2000);
  telescope::TelescopeCapture clean(dark_space(), fast_config());
  for (const pkt::Packet& p : packets) clean.observe(p);
  const std::string clean_bytes = canonical_bytes(clean.finish());

  scangen::FaultConfig config;
  config.seed = 77;
  config.reorder_prob = 0.25;
  config.reorder_hold = net::Duration::seconds(2);
  scangen::FaultInjector injector(packets, config);

  telescope::TelescopeCapture hardened(dark_space(), fast_config());
  telescope::ResilientIngest ingest(
      {.window = net::Duration::seconds(5), .max_buffered = 65536},
      [&](const pkt::Packet& p) { hardened.observe(p); });
  while (auto p = injector.next()) ingest.observe(*p);
  ingest.finish();

  EXPECT_EQ(ingest.health().dropped(), 0u);
  EXPECT_GT(ingest.health().reordered, 0u);
  EXPECT_EQ(canonical_bytes(hardened.finish()), clean_bytes);
}

TEST(FaultTolerance, OverflowBoundHoldsUnderPressure) {
  // A tiny buffer under heavy reordering: memory stays bounded, packets
  // drop for the overflow reason, the books still balance.
  const auto packets = make_stream(1500);
  scangen::FaultConfig config;
  config.seed = 9;
  config.reorder_prob = 0.5;
  config.reorder_hold = net::Duration::seconds(2);
  scangen::FaultInjector injector(packets, config);

  std::uint64_t delivered = 0;
  telescope::ResilientIngest ingest(
      {.window = net::Duration::seconds(5), .max_buffered = 4},
      [&](const pkt::Packet&) { ++delivered; });
  std::size_t peak = 0;
  while (auto p = injector.next()) {
    ingest.observe(*p);
    peak = std::max(peak, static_cast<std::size_t>(ingest.health().buffered));
  }
  ingest.finish();
  EXPECT_LE(peak, 4u);
  EXPECT_TRUE(ingest.health().consistent());
  EXPECT_EQ(ingest.health().delivered, delivered);
  EXPECT_EQ(ingest.health().dropped_late + ingest.health().dropped_overflow +
                delivered,
            ingest.health().ingested);
}

TEST(PipelineHealth, ToStringSummarizesCounters) {
  telescope::PipelineHealth health;
  health.ingested = 10;
  health.delivered = 8;
  health.dropped_late = 2;
  EXPECT_TRUE(health.consistent());
  const std::string text = health.to_string();
  EXPECT_NE(text.find("10"), std::string::npos);
  EXPECT_NE(text.find("late"), std::string::npos);
}

// -------------------------------------------- crash-resume equivalence

TEST(CrashResume, CaptureResumesToIdenticalDataset) {
  const auto packets = make_stream(3000);

  telescope::TelescopeCapture uninterrupted(dark_space(), fast_config());
  for (const pkt::Packet& p : packets) uninterrupted.observe(p);
  const std::string want = canonical_bytes(uninterrupted.finish());

  // Run to the midpoint — live events open, earlier events already
  // emitted — snapshot, then "crash" (drop the object).
  std::stringstream snapshot;
  {
    telescope::TelescopeCapture first(dark_space(), fast_config());
    for (std::size_t i = 0; i < packets.size() / 2; ++i) first.observe(packets[i]);
    EXPECT_GT(first.aggregator().live_events(), 0u);
    EXPECT_GT(first.aggregator().events_emitted(), 0u);
    CheckpointWriter writer;
    first.checkpoint(writer);
    writer.finish(snapshot);
  }

  telescope::TelescopeCapture resumed(dark_space(), fast_config());
  CheckpointReader reader(snapshot);
  resumed.restore(reader);
  EXPECT_TRUE(reader.done());
  for (std::size_t i = packets.size() / 2; i < packets.size(); ++i) {
    resumed.observe(packets[i]);
  }
  EXPECT_EQ(resumed.packets_captured(), packets.size());
  EXPECT_EQ(resumed.unique_sources(), uninterrupted.unique_sources());
  EXPECT_EQ(canonical_bytes(resumed.finish()), want);
}

TEST(CrashResume, CaptureRejectsConfigMismatch) {
  std::stringstream snapshot;
  {
    telescope::TelescopeCapture capture(dark_space(), fast_config());
    for (const pkt::Packet& p : make_stream(100)) capture.observe(p);
    CheckpointWriter writer;
    capture.checkpoint(writer);
    writer.finish(snapshot);
  }
  telescope::AggregatorConfig other = fast_config();
  other.timeout = net::Duration::minutes(20);
  telescope::TelescopeCapture capture(dark_space(), other);
  CheckpointReader reader(snapshot);
  EXPECT_THROW(capture.restore(reader), std::runtime_error);
}

TEST(CrashResume, CaptureRejectsDarkSpaceMismatch) {
  std::stringstream snapshot;
  {
    telescope::TelescopeCapture capture(dark_space(), fast_config());
    CheckpointWriter writer;
    capture.checkpoint(writer);
    writer.finish(snapshot);
  }
  telescope::TelescopeCapture capture(
      net::PrefixSet({*net::Prefix::parse("198.18.0.0/23")}), fast_config());
  CheckpointReader reader(snapshot);
  EXPECT_THROW(capture.restore(reader), std::runtime_error);
}

// Streaming-detector workload: multi-day background + aggressive sources,
// sorted by start time (as the capture layer guarantees).
std::vector<telescope::DarknetEvent> streaming_events() {
  std::vector<telescope::DarknetEvent> events;
  for (int s = 0; s < 150; ++s) {
    for (int day = 0; day < 6; ++day) {
      telescope::DarknetEvent e;
      e.key.src = net::Ipv4Address(0x0A000000u + static_cast<std::uint32_t>(s));
      e.key.dst_port = static_cast<std::uint16_t>(80 + s % 5);
      e.key.type = pkt::TrafficType::TcpSyn;
      e.start = net::SimTime::at(net::Duration::days(day) +
                                 net::Duration::minutes(3 * s));
      e.end = e.start + net::Duration::hours(1);
      e.packets = 5 + static_cast<std::uint64_t>((s * 13 + day * 7) % 400);
      e.unique_dests = 1 + static_cast<std::uint64_t>((s * 11 + day) % 300);
      e.packets_by_tool[telescope::tool_index(pkt::ScanTool::Other)] = e.packets;
      events.push_back(e);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) { return a.start < b.start; });
  return events;
}

detect::StreamingConfig streaming_config() {
  detect::StreamingConfig config;
  config.base.packet_volume_alpha = 0.01;
  config.base.port_count_alpha = 0.01;
  config.warmup_samples = 100;
  config.ecdf_reservoir = 512;  // small: forces reservoir eviction + RNG use
  return config;
}

std::string render_day(const detect::StreamingDayResult& day) {
  std::ostringstream out;
  out << day.day << '|' << day.calibrated << '|' << day.packet_threshold << '|'
      << day.port_threshold;
  for (const auto& list : day.daily) {
    out << '[';
    for (const net::Ipv4Address ip : list) out << ip.to_string() << ',';
    out << ']';
  }
  out << '\n';
  return out.str();
}

constexpr std::uint64_t kStreamingDarknet = 1000;

TEST(CrashResume, StreamingDetectorEmitsByteIdenticalDailyLists) {
  const auto events = streaming_events();

  detect::StreamingDetector uninterrupted(streaming_config(), kStreamingDarknet);
  std::string want;
  for (const auto& e : events) {
    for (const auto& day : uninterrupted.observe(e)) want += render_day(day);
  }
  if (const auto last = uninterrupted.finish()) want += render_day(*last);

  // Checkpoint mid-day (not at a boundary): open-day working sets, both
  // reservoirs and their RNG positions all have to survive.
  const std::size_t half = events.size() / 2;
  std::string got;
  std::stringstream snapshot;
  {
    detect::StreamingDetector first(streaming_config(), kStreamingDarknet);
    for (std::size_t i = 0; i < half; ++i) {
      for (const auto& day : first.observe(events[i])) got += render_day(day);
    }
    CheckpointWriter writer;
    first.checkpoint(writer);
    writer.finish(snapshot);
  }
  detect::StreamingDetector resumed(streaming_config(), kStreamingDarknet);
  CheckpointReader reader(snapshot);
  resumed.restore(reader);
  EXPECT_TRUE(reader.done());
  EXPECT_EQ(resumed.events_seen(), half);
  for (std::size_t i = half; i < events.size(); ++i) {
    for (const auto& day : resumed.observe(events[i])) got += render_day(day);
  }
  if (const auto last = resumed.finish()) got += render_day(*last);

  EXPECT_EQ(got, want);
  EXPECT_EQ(resumed.events_seen(), events.size());
  for (const auto d :
       {detect::Definition::AddressDispersion, detect::Definition::PacketVolume,
        detect::Definition::DistinctPorts}) {
    EXPECT_EQ(resumed.ips(d), uninterrupted.ips(d));
  }
}

TEST(CrashResume, StreamingDetectorRejectsConfigMismatch) {
  std::stringstream snapshot;
  {
    detect::StreamingDetector detector(streaming_config(), kStreamingDarknet);
    detector.observe(streaming_events().front());
    CheckpointWriter writer;
    detector.checkpoint(writer);
    writer.finish(snapshot);
  }
  detect::StreamingConfig other = streaming_config();
  other.warmup_samples = 999;
  detect::StreamingDetector detector(other, kStreamingDarknet);
  CheckpointReader reader(snapshot);
  EXPECT_THROW(detector.restore(reader), std::runtime_error);
}

TEST(CrashResume, StreamingDetectorRejectsDarknetMismatch) {
  std::stringstream snapshot;
  {
    detect::StreamingDetector detector(streaming_config(), kStreamingDarknet);
    CheckpointWriter writer;
    detector.checkpoint(writer);
    writer.finish(snapshot);
  }
  detect::StreamingDetector detector(streaming_config(), kStreamingDarknet * 2);
  CheckpointReader reader(snapshot);
  EXPECT_THROW(detector.restore(reader), std::runtime_error);
}

TEST(CrashResume, IngestResumesWithNonEmptyBuffer) {
  // Jitter the stream so the reorder buffer is never empty mid-run, then
  // snapshot with packets in flight: the resumed ingest must deliver the
  // exact same suffix and end with the same health books.
  auto packets = make_stream(1200);
  for (std::size_t i = 0; i + 1 < packets.size(); i += 7) {
    std::swap(packets[i], packets[i + 1]);  // 1s of jitter, inside the window
  }
  const telescope::ReorderConfig config{.window = net::Duration::seconds(5),
                                        .max_buffered = 256};
  const std::size_t half = packets.size() / 2;

  std::vector<pkt::Packet> full_out;
  telescope::ResilientIngest full(
      config, [&](const pkt::Packet& p) { full_out.push_back(p); });
  std::size_t checkpoint_mark = 0;
  std::stringstream snapshot;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (i == half) {
      EXPECT_GT(full.health().buffered, 0u);
      CheckpointWriter writer;
      full.checkpoint(writer);
      writer.finish(snapshot);
      checkpoint_mark = full_out.size();
    }
    full.observe(packets[i]);
  }
  full.finish();
  EXPECT_TRUE(full.health().consistent());

  std::vector<pkt::Packet> resumed_out;
  telescope::ResilientIngest resumed(
      config, [&](const pkt::Packet& p) { resumed_out.push_back(p); });
  CheckpointReader reader(snapshot);
  resumed.restore(reader);
  EXPECT_TRUE(reader.done());
  for (std::size_t i = half; i < packets.size(); ++i) resumed.observe(packets[i]);
  resumed.finish();

  ASSERT_EQ(resumed_out.size() + checkpoint_mark, full_out.size());
  for (std::size_t i = 0; i < resumed_out.size(); ++i) {
    const pkt::Packet& a = full_out[checkpoint_mark + i];
    const pkt::Packet& b = resumed_out[i];
    EXPECT_EQ(a.timestamp, b.timestamp);
    EXPECT_EQ(a.tuple.src, b.tuple.src);
    EXPECT_EQ(a.tuple.dst, b.tuple.dst);
    EXPECT_EQ(a.tcp_seq, b.tcp_seq);
  }
  const telescope::PipelineHealth& ha = full.health();
  const telescope::PipelineHealth& hb = resumed.health();
  EXPECT_EQ(ha.ingested, hb.ingested);
  EXPECT_EQ(ha.delivered, hb.delivered);
  EXPECT_EQ(ha.reordered, hb.reordered);
  EXPECT_EQ(ha.dropped_late, hb.dropped_late);
  EXPECT_EQ(ha.dropped_overflow, hb.dropped_overflow);
}

TEST(CrashResume, IngestRejectsConfigMismatch) {
  telescope::ResilientIngest ingest({.window = net::Duration::seconds(5)},
                                    [](const pkt::Packet&) {});
  std::stringstream snapshot;
  CheckpointWriter writer;
  ingest.checkpoint(writer);
  writer.finish(snapshot);
  telescope::ResilientIngest other({.window = net::Duration::seconds(9)},
                                   [](const pkt::Packet&) {});
  CheckpointReader reader(snapshot);
  EXPECT_THROW(other.restore(reader), std::runtime_error);
}

}  // namespace
}  // namespace orion
