// Columnar flow-impact engine (DESIGN.md §12): the batched join must be
// byte-identical to the pinned scalar reference for every input, the
// FlowBatch bridge must be lossless, and the unified query() API must
// return exactly what the four legacy one-table calls returned.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "orion/flowsim/flow_batch.hpp"
#include "orion/flowsim/netflow5.hpp"
#include "orion/flowsim/netflow_bridge.hpp"
#include "orion/flowsim/sampler.hpp"
#include "orion/impact/flow_join.hpp"
#include "orion/scangen/scenario.hpp"

// The equivalence half of this suite pins query() against the scalar
// reference join (query_scalar) on every router-day — the one test that
// keeps the batched probe honest now that the legacy one-table-per-call
// wrappers are gone.

namespace orion::impact {
namespace {

net::Ipv4Address ip(const char* text) { return *net::Ipv4Address::parse(text); }

/// A simulated multi-day flow dataset over the tiny scenario — hash-map
/// iteration order, binomial sampling, oversized flows and empty
/// router-days all occur naturally.
flowsim::FlowDataset tiny_flows() {
  const scangen::Scenario scenario{scangen::tiny()};
  flowsim::FlowSimConfig config;
  config.isp_space = scenario.merit();
  config.start_day = 2;
  config.end_day = 7;
  config.sampling_rate = 100;
  config.seed = 77;
  config.user.base_pps = 2000;
  return generate_flows(scenario.population_2021(), scenario.registry(),
                        flowsim::PeeringPolicy::merit_like(), config);
}

/// AH-ish source list: every cloud scanner of the tiny population plus a
/// few addresses that never appear in the flows (visibility misses).
detect::IpSet tiny_sources() {
  const scangen::Scenario scenario{scangen::tiny()};
  detect::IpSet set;
  for (const auto& s : scenario.population_2021().scanners) {
    if (s.category == scangen::Category::CloudScanner) set.insert(s.source);
  }
  set.insert(ip("192.0.2.1"));
  set.insert(ip("192.0.2.200"));
  return set;
}

void expect_same_report(const RouterDayReport& a, const RouterDayReport& b) {
  EXPECT_EQ(a.impact.router, b.impact.router);
  EXPECT_EQ(a.impact.day, b.impact.day);
  EXPECT_EQ(a.impact.matched_packets, b.impact.matched_packets);
  EXPECT_EQ(a.impact.total_packets, b.impact.total_packets);
  EXPECT_EQ(a.impact.matched_sources, b.impact.matched_sources);
  EXPECT_EQ(a.protocols, b.protocols);
  EXPECT_EQ(a.ports.counts(), b.ports.counts());
  EXPECT_EQ(a.probed_sources, b.probed_sources);
}

// ------------------------------------------------------ FlowBatch bridge

TEST(FlowBatch, RecordRoundTripIsLossless) {
  std::mt19937_64 rng(11);
  flowsim::FlowBatch batch;
  std::vector<flowsim::FlowRecord> records;
  for (int i = 0; i < 200; ++i) {
    flowsim::FlowRecord r;
    r.ts_ns = static_cast<std::int64_t>(rng());
    r.src = net::Ipv4Address(static_cast<std::uint32_t>(rng()));
    r.dst = net::Ipv4Address(static_cast<std::uint32_t>(rng()));
    r.src_port = static_cast<std::uint16_t>(rng());
    r.dst_port = static_cast<std::uint16_t>(rng());
    r.proto = static_cast<std::uint8_t>(rng());
    r.packets = rng();
    r.bytes = rng();
    r.router = static_cast<std::uint16_t>(rng() % 3);
    records.push_back(r);
    batch.push_back(r);
  }
  ASSERT_EQ(batch.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(batch.record_at(i), records[i]);
  }
}

TEST(FlowBatch, ClearKeepsCapacityAndZeroesSize) {
  flowsim::FlowBatch batch(16);
  flowsim::FlowRecord r;
  r.src = ip("10.0.0.1");
  batch.push_back(r);
  ASSERT_EQ(batch.size(), 1u);
  batch.clear();
  EXPECT_EQ(batch.size(), 0u);
  EXPECT_TRUE(batch.empty());
  EXPECT_GE(batch.src_col().capacity(), 1u);
}

TEST(FlowBatch, ProtocolNumberRoundTrip) {
  for (const auto type :
       {pkt::TrafficType::TcpSyn, pkt::TrafficType::Udp,
        pkt::TrafficType::IcmpEchoReq}) {
    EXPECT_EQ(flowsim::traffic_type_of(flowsim::protocol_number_of(type)), type);
  }
  EXPECT_EQ(flowsim::traffic_type_of(47), pkt::TrafficType::Other);
}

// ------------------------------------------------ batched NetFlow decode

flowsim::RouterDay hand_router_day() {
  flowsim::RouterDay rd;
  rd.total_packets = 1'000'000;
  rd.sampled[{ip("203.0.113.1"), 23, pkt::TrafficType::TcpSyn}] = 300;
  rd.sampled[{ip("203.0.113.1"), 53, pkt::TrafficType::Udp}] = 100;
  rd.sampled[{ip("203.0.113.2"), 80, pkt::TrafficType::TcpSyn}] = 50;
  rd.sampled[{ip("203.0.113.9"), 443, pkt::TrafficType::IcmpEchoReq}] = 7;
  // Oversized flow: forces the exporter to split across v5 records.
  rd.sampled[{ip("203.0.113.5"), 123, pkt::TrafficType::Udp}] =
      (std::uint64_t{1} << 32) + 5;
  return rd;
}

TEST(NetflowBatch, DecodeIntoMatchesScalarDecode) {
  const auto packets = flowsim::export_router_day(hand_router_day(), 100, 1);
  ASSERT_FALSE(packets.empty());
  for (const auto& wire : packets) {
    const auto scalar = flowsim::decode_netflow_v5(wire);
    ASSERT_TRUE(scalar.has_value());
    flowsim::FlowBatch batch;
    const auto header = flowsim::decode_netflow_v5_into(wire, batch, 2, 555);
    ASSERT_TRUE(header.has_value());
    ASSERT_EQ(batch.size(), scalar->records.size());
    EXPECT_EQ(header->flow_sequence, scalar->header.flow_sequence);
    EXPECT_EQ(header->sampling_interval, scalar->header.sampling_interval);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const flowsim::NetflowV5Record& r = scalar->records[i];
      EXPECT_EQ(batch.src(i), r.src);
      EXPECT_EQ(batch.dst(i), r.dst);
      EXPECT_EQ(batch.src_port(i), r.src_port);
      EXPECT_EQ(batch.dst_port(i), r.dst_port);
      EXPECT_EQ(batch.proto(i), r.protocol);
      EXPECT_EQ(batch.packets(i), r.packets);
      EXPECT_EQ(batch.bytes(i), r.octets);
      EXPECT_EQ(batch.router(i), 2u);
      EXPECT_EQ(batch.ts_ns(i), 555);
    }
  }
}

TEST(NetflowBatch, RejectedPacketAppendsNothing) {
  auto packets = flowsim::export_router_day(hand_router_day(), 100, 1);
  ASSERT_FALSE(packets.empty());
  flowsim::FlowBatch batch;
  // Truncated packet: decode must fail without partial rows.
  std::vector<std::uint8_t> truncated(packets[0].begin(),
                                      packets[0].end() - 10);
  EXPECT_FALSE(flowsim::decode_netflow_v5_into(truncated, batch));
  EXPECT_TRUE(batch.empty());
  // Wrong version.
  std::vector<std::uint8_t> bad = packets[0];
  bad[1] = 9;
  EXPECT_FALSE(flowsim::decode_netflow_v5_into(bad, batch));
  EXPECT_TRUE(batch.empty());
}

TEST(NetflowBatch, IngestBatchRoundTripsRouterDayTable) {
  const flowsim::RouterDay original = hand_router_day();
  const auto packets = flowsim::export_router_day(original, 100, 1);

  std::size_t rejected_scalar = 0;
  const flowsim::RouterDay scalar =
      flowsim::ingest_router_day(packets, rejected_scalar);

  std::size_t rejected_batch = 0;
  const flowsim::FlowBatch batch =
      flowsim::ingest_flow_batch(packets, rejected_batch);
  const flowsim::RouterDay folded = flowsim::router_day_from_batch(batch);

  EXPECT_EQ(rejected_scalar, 0u);
  EXPECT_EQ(rejected_batch, 0u);
  EXPECT_EQ(folded.sampled, scalar.sampled);
  EXPECT_EQ(folded.sampled, original.sampled);
}

TEST(NetflowBatch, FlowBatchOfIsSortedAndComplete) {
  const flowsim::RouterDay rd = hand_router_day();
  const flowsim::FlowBatch batch = flowsim::flow_batch_of(rd, 1, 42);
  ASSERT_EQ(batch.size(), rd.sampled.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch.router(i), 1u);
    EXPECT_EQ(batch.ts_ns(i), 42 * std::int64_t{86'400} * 1'000'000'000);
    if (i > 0) {
      const auto prev = std::tuple(batch.src(i - 1), batch.dst_port(i - 1),
                                   batch.proto(i - 1));
      const auto cur = std::tuple(batch.src(i), batch.dst_port(i),
                                  batch.proto(i));
      EXPECT_LT(prev, cur);
    }
  }
  EXPECT_EQ(flowsim::router_day_from_batch(batch).sampled, rd.sampled);
}

// -------------------------------------------------------- FlowSourceIndex

/// Builds an index from `batch` re-chunked into the given span sizes
/// (cycled); a trailing remainder chunk absorbs the tail.
FlowSourceIndex chunked_index(const flowsim::FlowBatch& batch,
                              const std::vector<std::size_t>& sizes) {
  FlowSourceIndex index;
  flowsim::FlowBatch chunk;
  std::size_t i = 0;
  std::size_t size_at = 0;
  while (i < batch.size()) {
    const std::size_t take =
        std::min(sizes[size_at++ % sizes.size()], batch.size() - i);
    chunk.clear();
    for (std::size_t j = 0; j < take; ++j) chunk.append_record(batch, i + j);
    index.append(chunk);
    i += take;
  }
  index.finalize();
  return index;
}

TEST(FlowSourceIndex, ChunkingInvariance) {
  const auto flows = tiny_flows();
  const detect::IpSet ips = tiny_sources();
  const SourceSet sources(ips);
  const flowsim::RouterDay& rd = flows.at(0, 3);
  const flowsim::FlowBatch batch = flowsim::flow_batch_of(rd, 0, 3);
  ASSERT_GT(batch.size(), 8u);

  FlowSourceIndex whole;
  whole.append(batch);
  whole.finalize();
  const RouterDayReport ref =
      join_flow_index(whole, sources, 100, rd.total_packets, 0, 3);
  EXPECT_GT(ref.impact.matched_sources, 0u);

  // Size-1 spans, ragged mixes, and a random chunking all build the same
  // index and thus the same report.
  std::mt19937 rng(5);
  std::vector<std::size_t> random_sizes;
  for (int i = 0; i < 17; ++i) random_sizes.push_back(1 + rng() % 13);
  for (const auto& sizes :
       {std::vector<std::size_t>{1}, std::vector<std::size_t>{3, 1, 7, 2},
        random_sizes}) {
    const FlowSourceIndex index = chunked_index(batch, sizes);
    expect_same_report(
        join_flow_index(index, sources, 100, rd.total_packets, 0, 3), ref);
  }
}

TEST(FlowSourceIndex, OutOfOrderRowsThrow) {
  flowsim::FlowBatch batch;
  flowsim::FlowRecord r;
  r.src = ip("10.0.0.2");
  r.dst_port = 80;
  batch.push_back(r);
  r.src = ip("10.0.0.1");  // descending src: violates the sorted contract
  batch.push_back(r);
  FlowSourceIndex index;
  EXPECT_THROW(index.append(batch), std::invalid_argument);
}

TEST(FlowSourceIndex, AppendAfterFinalizeThrows) {
  FlowSourceIndex index;
  index.finalize();
  EXPECT_THROW(index.append(flowsim::FlowBatch{}), std::logic_error);
}

TEST(FlowSourceIndex, DuplicateKeysMergeLikeSplitV5Records) {
  // The wire round trip splits the oversized flow into multiple adjacent
  // v5 records; the index must fold them back into one entry.
  const flowsim::RouterDay rd = hand_router_day();
  const auto packets = flowsim::export_router_day(rd, 100, 1);
  std::size_t rejected = 0;
  const flowsim::FlowBatch wire_batch =
      flowsim::ingest_flow_batch(packets, rejected);
  ASSERT_EQ(rejected, 0u);
  ASSERT_GT(wire_batch.size(), rd.sampled.size());  // the split happened

  FlowSourceIndex from_wire;
  from_wire.append(wire_batch);
  from_wire.finalize();
  FlowSourceIndex from_table;
  from_table.append(flowsim::flow_batch_of(rd, 0, 0));
  from_table.finalize();

  const SourceSet sources(detect::IpSet{ip("203.0.113.5")});
  expect_same_report(
      join_flow_index(from_wire, sources, 100, rd.total_packets, 0, 0),
      join_flow_index(from_table, sources, 100, rd.total_packets, 0, 0));
}

// ------------------------------------------------- batched vs scalar join

TEST(FlowJoin, BatchedMatchesScalarOnEveryRouterDay) {
  const auto flows = tiny_flows();
  const detect::IpSet ips = tiny_sources();
  FlowImpactAnalyzer analyzer(&flows);
  for (std::size_t router = 0; router < flowsim::kRouterCount; ++router) {
    for (std::int64_t day = flows.start_day(); day < flows.end_day(); ++day) {
      expect_same_report(analyzer.query(router, day, ips),
                         analyzer.query_scalar(router, day, ips));
    }
  }
}

TEST(FlowJoin, EmptyRouterDayAndEmptySources) {
  // A router-day with no sampled flows at all.
  flowsim::FlowSimConfig config;
  config.isp_space = net::PrefixSet({*net::Prefix::parse("20.0.0.0/16")});
  config.start_day = 0;
  config.end_day = 1;
  std::vector<std::vector<flowsim::RouterDay>> days(flowsim::kRouterCount);
  for (auto& router : days) router.resize(1);
  days[0][0].total_packets = 500;
  const flowsim::FlowDataset flows(std::move(config), std::move(days));

  FlowImpactAnalyzer analyzer(&flows);
  const detect::IpSet some = {ip("203.0.113.1")};
  expect_same_report(analyzer.query(0, 0, some), analyzer.query_scalar(0, 0, some));
  const RouterDayReport empty_day = analyzer.query(0, 0, some);
  EXPECT_EQ(empty_day.impact.matched_packets, 0u);
  EXPECT_EQ(empty_day.impact.total_packets, 500u);
  EXPECT_DOUBLE_EQ(empty_day.visibility_percent(), 0.0);

  // Empty source set against a populated day.
  const auto tiny = tiny_flows();
  FlowImpactAnalyzer tiny_analyzer(&tiny);
  const detect::IpSet none;
  expect_same_report(tiny_analyzer.query(0, 2, none),
                     tiny_analyzer.query_scalar(0, 2, none));
  EXPECT_DOUBLE_EQ(tiny_analyzer.query(0, 2, none).visibility_percent(), 0.0);
}

TEST(FlowJoin, SourceSetCollapsesDuplicates) {
  const std::vector<net::Ipv4Address> with_dupes = {
      ip("203.0.113.1"), ip("203.0.113.1"), ip("203.0.113.9")};
  const SourceSet set(with_dupes);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(std::is_sorted(set.values().begin(), set.values().end()));
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(set.hash(i), FlowSourceIndex::hash_of(set.value(i)));
  }
}

// ------------------------------------------------ cache-key regression

TEST(FlowJoin, AdversarialRouterDayKeysNeverAliasTheCache) {
  const auto flows = tiny_flows();
  FlowImpactAnalyzer analyzer(&flows);
  const detect::IpSet ips = tiny_sources();

  // Warm the cache for every valid router-day.
  for (std::size_t router = 0; router < flowsim::kRouterCount; ++router) {
    for (std::int64_t day = flows.start_day(); day < flows.end_day(); ++day) {
      analyzer.query(router, day, ips);
    }
  }

  // The old uint64 key was (router << 32) | (day - start_day), consulted
  // before range validation: (0, start_day + 2^32) aliased (1, start_day)
  // and silently answered from the wrong router's index. Every
  // out-of-range probe must throw, warm cache or not.
  const std::int64_t start = flows.start_day();
  EXPECT_THROW(analyzer.query(0, start + (std::int64_t{1} << 32), ips),
               std::out_of_range);
  EXPECT_THROW(analyzer.query(1, start + (std::int64_t{1} << 32), ips),
               std::out_of_range);
  if constexpr (sizeof(std::size_t) > 4) {
    // router = 2^32 aliased router 0 under the packed key.
    EXPECT_THROW(
        analyzer.query(std::size_t{1} << 32, start, ips), std::out_of_range);
    EXPECT_THROW(analyzer.query((std::size_t{1} << 32) + 1, start, ips),
                 std::out_of_range);
  }
  EXPECT_THROW(analyzer.query(0, start - 1, ips), std::out_of_range);
  EXPECT_THROW(analyzer.query(flowsim::kRouterCount, start, ips),
               std::out_of_range);

  // The warm entries still answer correctly after the failed probes.
  expect_same_report(analyzer.query(1, start, ips),
                     analyzer.query_scalar(1, start, ips));
}

// ------------------------------------------------------ batched sampler

TEST(Sampler, SampleNMatchesScalarUnderAnyChunking) {
  for (const std::uint32_t rate : {1u, 3u, 100u}) {
    flowsim::PacketSampler scalar(flowsim::SamplingMode::Deterministic, rate, 9);
    flowsim::PacketSampler batched(flowsim::SamplingMode::Deterministic, rate, 9);
    std::mt19937 rng(21);
    std::uint64_t scalar_hits = 0;
    std::uint64_t batched_hits = 0;
    std::uint64_t fed = 0;
    while (fed < 10'000) {
      const std::uint64_t chunk = 1 + rng() % 257;
      for (std::uint64_t i = 0; i < chunk; ++i) {
        scalar_hits += scalar.sample() ? 1 : 0;
      }
      batched_hits += batched.sample_n(chunk);
      fed += chunk;
      // Phases stay in lockstep, so equality holds at every boundary.
      EXPECT_EQ(batched_hits, scalar_hits);
    }
    // And huge batches cannot overflow the phase arithmetic.
    flowsim::PacketSampler huge(flowsim::SamplingMode::Deterministic, rate, 9);
    const std::uint64_t big = (std::uint64_t{1} << 40) + 123;
    EXPECT_LE(huge.sample_n(big) * rate, big + rate);
  }
}

TEST(Sampler, SampleNRandomModeIsDeterministicPerSeed) {
  flowsim::PacketSampler a(flowsim::SamplingMode::Random, 100, 4242);
  flowsim::PacketSampler b(flowsim::SamplingMode::Random, 100, 4242);
  for (int i = 0; i < 32; ++i) {
    const std::uint64_t hits = a.sample_n(1000);
    EXPECT_EQ(hits, b.sample_n(1000));
    EXPECT_LE(hits, 1000u);
  }
}

}  // namespace
}  // namespace orion::impact
