#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "orion/flowsim/flows.hpp"
#include "orion/flowsim/routing.hpp"
#include "orion/flowsim/sampler.hpp"
#include "orion/flowsim/stream.hpp"
#include "orion/flowsim/user_traffic.hpp"
#include "orion/scangen/scenario.hpp"

namespace orion::flowsim {
namespace {

// ------------------------------------------------------------- user traffic

TEST(UserTrafficModel, WeekendsAreQuieter) {
  UserTrafficConfig config;
  config.base_pps = 1000;
  config.weekend_factor = 0.7;
  config.growth_per_year = 0.0;
  const UserTrafficModel model(config);
  // Day 1 (2021-01-02) is a Saturday, day 4 a Tuesday.
  EXPECT_LT(model.packets_on_day(1), model.packets_on_day(4));
  const double ratio = static_cast<double>(model.packets_on_day(1)) /
                       static_cast<double>(model.packets_on_day(4));
  EXPECT_NEAR(ratio, 0.7, 0.08);
}

TEST(UserTrafficModel, CacheFractionShrinksBorderTraffic) {
  UserTrafficConfig merit;
  merit.base_pps = 1000;
  merit.cache_fraction = 0.6;
  UserTrafficConfig campus = merit;
  campus.cache_fraction = 0.0;
  EXPECT_NEAR(static_cast<double>(UserTrafficModel(merit).packets_on_day(4)),
              0.4 * static_cast<double>(UserTrafficModel(campus).packets_on_day(4)),
              1.0);
}

TEST(UserTrafficModel, DiurnalPeaksMidDay) {
  UserTrafficConfig config;
  config.base_pps = 1000;
  config.diurnal_amplitude = 0.4;
  const UserTrafficModel model(config);
  const net::SimTime afternoon =
      net::SimTime::at(net::Duration::days(4) + net::Duration::hours(15));
  const net::SimTime night =
      net::SimTime::at(net::Duration::days(4) + net::Duration::hours(3));
  EXPECT_GT(model.rate_pps(afternoon), model.rate_pps(night));
}

TEST(UserTrafficModel, DayTotalIntegratesRate) {
  UserTrafficConfig config;
  config.base_pps = 500;
  const UserTrafficModel model(config);
  double integral = 0;
  for (int hour = 0; hour < 24; ++hour) {
    integral += model.rate_pps(net::SimTime::at(net::Duration::days(4) +
                                                net::Duration::hours(hour))) *
                3600;
  }
  EXPECT_NEAR(integral, static_cast<double>(model.packets_on_day(4)),
              0.02 * integral);
}

TEST(UserTrafficModel, GrowthRaisesLaterDays) {
  UserTrafficConfig config;
  config.base_pps = 1000;
  config.growth_per_year = 0.2;
  const UserTrafficModel model(config);
  // Compare same weekday a year apart (day 4 and day 368 are both Tuesdays).
  EXPECT_GT(model.packets_on_day(368), model.packets_on_day(4));
}

// ------------------------------------------------------------------ routing

TEST(PeeringPolicy, RowsMustSumToOne) {
  PeeringPolicy::Matrix bad{{{{0.5, 0.2, 0.2}},
                             {{0.55, 0.30, 0.15}},
                             {{0.62, 0.25, 0.13}},
                             {{0.40, 0.35, 0.25}}}};
  EXPECT_THROW(PeeringPolicy{bad}, std::invalid_argument);
}

TEST(PeeringPolicy, RouteIsStablePerSource) {
  const PeeringPolicy policy = PeeringPolicy::merit_like();
  const net::Ipv4Address src = *net::Ipv4Address::parse("77.1.2.3");
  const std::size_t router = policy.route(src, asdb::Region::Europe);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(policy.route(src, asdb::Region::Europe), router);
  }
}

TEST(PeeringPolicy, DistributionMatchesMatrix) {
  // Full-reach policy: per-source routes follow the matrix row exactly.
  const PeeringPolicy policy(PeeringPolicy::Matrix{{
      {{0.42, 0.32, 0.26}},
      {{0.62, 0.24, 0.14}},
      {{0.68, 0.20, 0.12}},
      {{0.45, 0.32, 0.23}},
  }});
  std::array<int, kRouterCount> counts{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[policy.route(net::Ipv4Address(static_cast<std::uint32_t>(i * 2654435761u)),
                          asdb::Region::Asia)];
  }
  const auto& asia = policy.row(asdb::Region::Asia);
  EXPECT_NEAR(counts[0], asia[0] * n, 0.02 * n);
  EXPECT_NEAR(counts[1], asia[1] * n, 0.02 * n);
  EXPECT_NEAR(counts[2], asia[2] * n, 0.02 * n);
}

TEST(PeeringPolicy, SplitSumsAndRespectsReachability) {
  const PeeringPolicy policy = PeeringPolicy::merit_like();
  net::Rng rng(77);
  int reach_r3 = 0;
  const int sources = 2000;
  for (int i = 0; i < sources; ++i) {
    const net::Ipv4Address src(static_cast<std::uint32_t>(0x50000000u + i * 977));
    const auto parts = policy.split(src, 10000, asdb::Region::Asia, rng);
    EXPECT_EQ(parts[0] + parts[1] + parts[2], 10000u);
    const bool r3_reachable = policy.reachable(src, asdb::Region::Asia, 2);
    if (!r3_reachable) {
      EXPECT_EQ(parts[2], 0u);
    }
    reach_r3 += r3_reachable;
    // Reachability is deterministic.
    EXPECT_EQ(policy.reachable(src, asdb::Region::Asia, 2), r3_reachable);
    EXPECT_TRUE(policy.reachable(src, asdb::Region::Asia, 0));
  }
  // Asia reach at router-3 is 0.45 in the merit-like policy.
  EXPECT_NEAR(reach_r3, 0.45 * sources, 0.05 * sources);
}

TEST(PeeringPolicy, RoutePacketVariesByDestinationButIsStable) {
  const PeeringPolicy policy = PeeringPolicy::merit_like();
  const net::Ipv4Address src = *net::Ipv4Address::parse("88.1.2.3");
  std::array<int, kRouterCount> counts{};
  for (int i = 0; i < 3000; ++i) {
    const net::Ipv4Address dst(static_cast<std::uint32_t>(0x14000000u + i * 256));
    const std::size_t router = policy.route_packet(src, dst, asdb::Region::Europe);
    EXPECT_EQ(policy.route_packet(src, dst, asdb::Region::Europe), router);
    ++counts[router];
  }
  // One source's packets reach several routers (destination-dependent paths).
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[1], 0);
}

// ------------------------------------------------------------------ sampler

TEST(PacketSampler, DeterministicSamplesExactlyOnePerN) {
  PacketSampler sampler(SamplingMode::Deterministic, 100, 1);
  int sampled = 0;
  for (int i = 0; i < 100000; ++i) sampled += sampler.sample();
  EXPECT_EQ(sampled, 1000);
}

TEST(PacketSampler, RandomSamplesApproximatelyOnePerN) {
  PacketSampler sampler(SamplingMode::Random, 100, 2);
  int sampled = 0;
  for (int i = 0; i < 100000; ++i) sampled += sampler.sample();
  EXPECT_NEAR(sampled, 1000, 150);
}

TEST(PacketSampler, BatchSamplingMatchesMean) {
  net::Rng rng(3);
  for (const SamplingMode mode :
       {SamplingMode::Deterministic, SamplingMode::Random}) {
    PacketSampler sampler(mode, 100, 4);
    double total = 0;
    for (int i = 0; i < 2000; ++i) {
      total += static_cast<double>(sampler.sample_batch(5000, rng));
    }
    EXPECT_NEAR(total / 2000, 50.0, 2.0);
  }
}

TEST(PacketSampler, ZeroRateThrows) {
  EXPECT_THROW(PacketSampler(SamplingMode::Random, 0, 1), std::invalid_argument);
}

// -------------------------------------------------------------------- flows

class FlowsTest : public testing::Test {
 protected:
  static const scangen::Scenario& scenario() {
    static const scangen::Scenario s{scangen::tiny()};
    return s;
  }

  static FlowSimConfig config() {
    FlowSimConfig c;
    c.isp_space = scenario().merit();
    c.start_day = 2;
    c.end_day = 5;
    c.sampling_rate = 100;
    c.user.base_pps = 2000;
    c.user.cache_fraction = 0.5;
    return c;
  }
};

TEST_F(FlowsTest, TotalsDecompose) {
  const FlowDataset flows =
      generate_flows(scenario().population_2021(), scenario().registry(),
                     PeeringPolicy::merit_like(), config());
  for (std::size_t router = 0; router < kRouterCount; ++router) {
    for (std::int64_t day = 2; day < 5; ++day) {
      const RouterDay& rd = flows.at(router, day);
      EXPECT_EQ(rd.total_packets, rd.user_packets + rd.scanner_packets);
      EXPECT_GT(rd.user_packets, 0u);
    }
  }
  EXPECT_THROW(flows.at(0, 5), std::out_of_range);
  EXPECT_THROW(flows.at(3, 2), std::out_of_range);
}

TEST_F(FlowsTest, SampledEstimatesTrackGroundTruth) {
  const FlowDataset flows =
      generate_flows(scenario().population_2021(), scenario().registry(),
                     PeeringPolicy::merit_like(), config());
  std::uint64_t truth = 0, estimate = 0;
  for (std::size_t router = 0; router < kRouterCount; ++router) {
    for (std::int64_t day = 2; day < 5; ++day) {
      const RouterDay& rd = flows.at(router, day);
      truth += rd.scanner_packets;
      for (const auto& [key, sampled] : rd.sampled) {
        estimate += sampled * flows.sampling_rate();
      }
    }
  }
  ASSERT_GT(truth, 0u);
  EXPECT_NEAR(static_cast<double>(estimate), static_cast<double>(truth),
              0.15 * static_cast<double>(truth));
}

TEST_F(FlowsTest, FlowKeysBelongToPopulation) {
  const FlowDataset flows =
      generate_flows(scenario().population_2021(), scenario().registry(),
                     PeeringPolicy::merit_like(), config());
  std::unordered_set<net::Ipv4Address> sources;
  for (const auto& s : scenario().population_2021().scanners) {
    sources.insert(s.source);
  }
  for (std::size_t router = 0; router < kRouterCount; ++router) {
    for (std::int64_t day = 2; day < 5; ++day) {
      for (const auto& [key, sampled] : flows.at(router, day).sampled) {
        EXPECT_TRUE(sources.contains(key.src)) << key.src.to_string();
        EXPECT_GT(sampled, 0u);
      }
    }
  }
}

TEST_F(FlowsTest, EmptyWindowThrows) {
  FlowSimConfig c = config();
  c.end_day = c.start_day;
  EXPECT_THROW(generate_flows(scenario().population_2021(), scenario().registry(),
                              PeeringPolicy::merit_like(), c),
               std::invalid_argument);
}

// ------------------------------------------------------------------- stream

TEST(StreamMonitor, SeriesMathIsConsistent) {
  StreamMonitorConfig config;
  config.start = net::SimTime::epoch();
  config.bin_width = net::Duration::seconds(1);
  config.bin_count = 10;
  UserTrafficConfig user_config;
  user_config.base_pps = 100;
  user_config.diurnal_amplitude = 0;
  StreamMonitor monitor(config, UserTrafficModel(user_config));

  // 5 AH packets in bin 0; 5 non-AH in bin 1.
  for (int i = 0; i < 5; ++i) {
    monitor.observe_scanner_packet(net::SimTime::at(net::Duration::millis(100 * i)),
                                   true);
    monitor.observe_scanner_packet(
        net::SimTime::at(net::Duration::millis(1000 + 100 * i)), false);
  }
  EXPECT_THROW(monitor.user_bins(), std::logic_error);
  monitor.finalize();
  EXPECT_THROW(monitor.finalize(), std::logic_error);

  EXPECT_EQ(monitor.ah_bins().total(), 5u);
  EXPECT_EQ(monitor.other_scanner_bins().total(), 5u);

  const auto inst = monitor.instantaneous_impact();
  ASSERT_EQ(inst.size(), 10u);
  const double denom0 = static_cast<double>(monitor.total_bins().bin(0));
  EXPECT_DOUBLE_EQ(inst[0], 5.0 / denom0);
  EXPECT_DOUBLE_EQ(inst[2], 0.0);

  const auto cumulative = monitor.cumulative_impact();
  // Cumulative share never exceeds the max instantaneous share.
  EXPECT_LE(cumulative.back(), *std::max_element(inst.begin(), inst.end()));

  const auto per24 = monitor.ah_rate_per_slash24(5);
  EXPECT_DOUBLE_EQ(per24[0], 1.0);  // 5 pkts/s over 5 /24s
}

}  // namespace
}  // namespace orion::flowsim

// NOTE: appended suite — NetFlow v5 wire codec.
#include "orion/flowsim/netflow5.hpp"

namespace orion::flowsim {
namespace {

NetflowV5Record sample_record(std::uint32_t i) {
  NetflowV5Record r;
  r.src = net::Ipv4Address(0xC0000200u + i);
  r.dst = net::Ipv4Address(0x14000000u + i);
  r.packets = 100 + i;
  r.octets = 4000 + i;
  r.first_uptime_ms = 1000 * i;
  r.last_uptime_ms = 1000 * i + 500;
  r.src_port = static_cast<std::uint16_t>(40000 + i);
  r.dst_port = 6379;
  r.tcp_flags = 0x02;
  r.protocol = 6;
  r.src_as = static_cast<std::uint16_t>(1001 + i);
  r.dst_as = 64512;
  return r;
}

TEST(NetflowV5, EncodeDecodeRoundTrip) {
  std::vector<NetflowV5Record> records;
  for (std::uint32_t i = 0; i < 30; ++i) records.push_back(sample_record(i));
  NetflowV5Header header;
  header.sys_uptime_ms = 123456;
  header.unix_secs = 1664582400;
  header.flow_sequence = 42;
  header.engine_id = 7;
  header.sampling_interval = 1000;

  const auto wire = encode_netflow_v5(header, records);
  EXPECT_EQ(wire.size(), kNetflowV5HeaderSize + 30 * kNetflowV5RecordSize);

  const auto decoded = decode_netflow_v5(wire);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->header.sys_uptime_ms, header.sys_uptime_ms);
  EXPECT_EQ(decoded->header.unix_secs, header.unix_secs);
  EXPECT_EQ(decoded->header.flow_sequence, header.flow_sequence);
  EXPECT_EQ(decoded->header.engine_id, header.engine_id);
  EXPECT_EQ(decoded->header.sampling_interval, header.sampling_interval);
  ASSERT_EQ(decoded->records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded->records[i], records[i]) << i;
  }
}

TEST(NetflowV5, RejectsOversizedExport) {
  std::vector<NetflowV5Record> records(31);
  EXPECT_THROW(encode_netflow_v5({}, records), std::invalid_argument);
}

TEST(NetflowV5, DecodeRejectsMalformedInput) {
  const auto wire = encode_netflow_v5({}, std::vector<NetflowV5Record>{sample_record(1)});
  // Truncated.
  EXPECT_FALSE(decode_netflow_v5({wire.data(), wire.size() - 1}));
  EXPECT_FALSE(decode_netflow_v5({wire.data(), 10}));
  // Wrong version.
  auto bad = wire;
  bad[1] = 9;
  EXPECT_FALSE(decode_netflow_v5(bad));
  // Count exceeding the packet size.
  bad = wire;
  bad[3] = 30;
  EXPECT_FALSE(decode_netflow_v5(bad));
}

TEST(NetflowV5, EmptyExportIsValid) {
  const auto wire = encode_netflow_v5({}, {});
  const auto decoded = decode_netflow_v5(wire);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->records.empty());
}

}  // namespace
}  // namespace orion::flowsim

// NOTE: appended suite — NetFlow v5 <-> flow-table bridge.
#include "orion/flowsim/netflow_bridge.hpp"

namespace orion::flowsim {
namespace {

TEST(NetflowBridge, RouterDayRoundTrips) {
  RouterDay day;
  net::Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    const FlowKey key{net::Ipv4Address(0x0B000000u + static_cast<std::uint32_t>(i)),
                      static_cast<std::uint16_t>(1 + rng.bounded(65000)),
                      static_cast<pkt::TrafficType>(rng.bounded(3))};
    day.sampled[key] += 1 + rng.bounded(100000);
  }

  const auto packets = export_router_day(day, 100, 3);
  // 500 flows at 30 records per export packet.
  EXPECT_EQ(packets.size(), (500 + 29) / 30);

  std::size_t rejected = 0;
  const RouterDay rebuilt = ingest_router_day(packets, rejected);
  EXPECT_EQ(rejected, 0u);
  ASSERT_EQ(rebuilt.sampled.size(), day.sampled.size());
  for (const auto& [key, count] : day.sampled) {
    const auto it = rebuilt.sampled.find(key);
    ASSERT_NE(it, rebuilt.sampled.end());
    EXPECT_EQ(it->second, count);
  }
}

TEST(NetflowBridge, SequenceNumbersChain) {
  RouterDay day;
  for (int i = 0; i < 70; ++i) {
    day.sampled[{net::Ipv4Address(static_cast<std::uint32_t>(i)),
                 80, pkt::TrafficType::TcpSyn}] = 1;
  }
  const auto packets = export_router_day(day, 1000, 1);
  ASSERT_EQ(packets.size(), 3u);
  std::uint32_t expected_sequence = 0;
  for (const auto& wire : packets) {
    const auto decoded = decode_netflow_v5(wire);
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->header.flow_sequence, expected_sequence);
    EXPECT_EQ(decoded->header.sampling_interval, 1000);
    expected_sequence += static_cast<std::uint32_t>(decoded->records.size());
  }
  EXPECT_EQ(expected_sequence, 70u);
}

TEST(NetflowBridge, CorruptPacketsAreCountedNotFatal) {
  RouterDay day;
  day.sampled[{net::Ipv4Address(1), 80, pkt::TrafficType::TcpSyn}] = 5;
  auto packets = export_router_day(day, 100, 1);
  packets.push_back({0xDE, 0xAD});  // garbage
  std::size_t rejected = 0;
  const RouterDay rebuilt = ingest_router_day(packets, rejected);
  EXPECT_EQ(rejected, 1u);
  EXPECT_EQ(rebuilt.sampled.size(), 1u);
}

}  // namespace
}  // namespace orion::flowsim
