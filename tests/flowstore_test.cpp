// FDE1 columnar flow archive (DESIGN.md §15): byte-identical round trips
// at any block size, CRC/salvage behavior mirroring ODE2's corpus, and
// the zero-copy query() contract — FlowImpactAnalyzer over a mapped FDE1
// archive must return byte-identical RouterDayReports to the in-memory
// path, for every cell, at any block size and prebuild thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unistd.h>
#include <vector>

#include "orion/flowsim/netflow5.hpp"
#include "orion/flowsim/netflow_bridge.hpp"
#include "orion/impact/flow_join.hpp"
#include "orion/scangen/scenario.hpp"
#include "orion/store/fde1.hpp"
#include "orion/store/mapped_flow.hpp"

namespace orion::store {
namespace {

net::Ipv4Address ip(const char* text) { return *net::Ipv4Address::parse(text); }

/// A simulated multi-day flow dataset over the tiny scenario (same feed
/// as tests/flowjoin_test.cpp): binomial sampling, oversized flows and
/// empty router-days all occur naturally.
flowsim::FlowDataset tiny_flows() {
  const scangen::Scenario scenario{scangen::tiny()};
  flowsim::FlowSimConfig config;
  config.isp_space = scenario.merit();
  config.start_day = 2;
  config.end_day = 7;
  config.sampling_rate = 100;
  config.seed = 77;
  config.user.base_pps = 2000;
  return generate_flows(scenario.population_2021(), scenario.registry(),
                        flowsim::PeeringPolicy::merit_like(), config);
}

detect::IpSet tiny_sources() {
  const scangen::Scenario scenario{scangen::tiny()};
  detect::IpSet set;
  for (const auto& s : scenario.population_2021().scanners) {
    if (s.category == scangen::Category::CloudScanner) set.insert(s.source);
  }
  set.insert(ip("192.0.2.1"));
  set.insert(ip("192.0.2.200"));
  return set;
}

/// RAII temp file seeded with the given bytes (PID in the path: gtest
/// tests run as separate concurrent ctest processes).
class TempFile {
 public:
  explicit TempFile(const std::string& bytes, const char* tag = "fde1") {
    static int counter = 0;
    path_ = (std::filesystem::temp_directory_path() /
             ("orion_flowstore_test_" + std::to_string(::getpid()) + "_" +
              std::to_string(++counter) + "_" + tag))
                .string();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string fde1_bytes(const flowsim::FlowDataset& flows,
                       std::uint64_t block_flows = kFde1DefaultBlockFlows) {
  std::stringstream stream;
  write_flows_fde1(flows, stream, block_flows);
  return stream.str();
}

/// The expected global row stream: flow_batch_of per cell, router-major.
flowsim::FlowBatch expected_rows(const flowsim::FlowDataset& flows) {
  flowsim::FlowBatch all;
  for (std::size_t router = 0; router < flowsim::kRouterCount; ++router) {
    for (std::int64_t day = flows.start_day(); day < flows.end_day(); ++day) {
      const flowsim::FlowBatch cell = flowsim::flow_batch_of(
          flows.at(router, day), static_cast<std::uint16_t>(router), day);
      for (std::size_t i = 0; i < cell.size(); ++i) {
        all.append_record(cell, i);
      }
    }
  }
  return all;
}

void expect_same_report(const impact::RouterDayReport& a,
                        const impact::RouterDayReport& b) {
  EXPECT_EQ(a.impact.router, b.impact.router);
  EXPECT_EQ(a.impact.day, b.impact.day);
  EXPECT_EQ(a.impact.matched_packets, b.impact.matched_packets);
  EXPECT_EQ(a.impact.total_packets, b.impact.total_packets);
  EXPECT_EQ(a.impact.matched_sources, b.impact.matched_sources);
  EXPECT_EQ(a.protocols, b.protocols);
  EXPECT_EQ(a.ports.counts(), b.ports.counts());
  EXPECT_EQ(a.ports.spilled_weight(), b.ports.spilled_weight());
  EXPECT_EQ(a.probed_sources, b.probed_sources);
}

// ------------------------------------------------------------ round trip

TEST(Fde1, RoundTripsAtAnyBlockSize) {
  const flowsim::FlowDataset flows = tiny_flows();
  const flowsim::FlowBatch expected = expected_rows(flows);
  ASSERT_GT(expected.size(), 0u);

  for (const std::uint64_t block_flows : {std::uint64_t{1}, std::uint64_t{3},
                                          std::uint64_t{64}, std::uint64_t{1024},
                                          std::uint64_t{1} << 20}) {
    const TempFile file(fde1_bytes(flows, block_flows));
    const MappedFlowStore store(file.path());

    EXPECT_EQ(store.sampling_rate(), flows.sampling_rate());
    EXPECT_EQ(store.flow_count(), expected.size());
    EXPECT_EQ(store.start_day(), flows.start_day());
    EXPECT_EQ(store.end_day(), flows.end_day());
    EXPECT_EQ(store.block_flows(), block_flows);
    EXPECT_EQ(store.verify_blocks(), store.block_count());

    const flowsim::FlowBatch all = store.to_batch();
    ASSERT_EQ(all.size(), expected.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(all.record_at(i), expected.record_at(i)) << "row " << i;
    }

    // Segment index: one cell per (router, day), row ranges that tile
    // [0, flow_count), totals matching the simulator's ground truth.
    const auto window =
        static_cast<std::size_t>(flows.end_day() - flows.start_day());
    ASSERT_EQ(store.segments().size(), flowsim::kRouterCount * window);
    std::uint64_t cursor = 0;
    for (const FlowSegment& seg : store.segments()) {
      const flowsim::RouterDay& rd = flows.at(seg.router, seg.day);
      EXPECT_EQ(seg.row_begin, cursor);
      EXPECT_EQ(seg.row_end - seg.row_begin, rd.sampled.size());
      EXPECT_EQ(seg.total_packets, rd.total_packets);
      EXPECT_EQ(seg.user_packets, rd.user_packets);
      EXPECT_EQ(seg.scanner_packets, rd.scanner_packets);
      cursor = seg.row_end;
    }
    EXPECT_EQ(cursor, store.flow_count());
  }
}

TEST(Fde1, StreamAndFileWritersProduceIdenticalBytes) {
  const flowsim::FlowDataset flows = tiny_flows();
  const std::string via_stream = fde1_bytes(flows, 64);
  const TempFile file("", "filewriter");
  const std::uint64_t bytes = write_flows_fde1_file(flows, file.path(), 64);
  EXPECT_EQ(bytes, via_stream.size());
  std::ifstream in(file.path(), std::ios::binary);
  const std::string via_file{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
  EXPECT_EQ(via_file, via_stream);
}

TEST(Fde1, EmptySegmentsAndEmptyArchiveRoundTrip) {
  // A window whose cells sampled nothing still archives its counters.
  std::vector<Fde1Segment> segments(2);
  segments[0].router = 0;
  segments[0].day = 10;
  segments[0].total_packets = 777;
  segments[1].router = 2;
  segments[1].day = 12;
  segments[1].user_packets = 5;
  std::stringstream stream;
  write_flows_fde1(50, 10, 13, segments, stream);
  const TempFile file(stream.str());
  const MappedFlowStore store(file.path());
  EXPECT_EQ(store.flow_count(), 0u);
  EXPECT_EQ(store.block_count(), 0u);
  ASSERT_EQ(store.segments().size(), 2u);
  EXPECT_EQ(store.segments()[0].total_packets, 777u);
  EXPECT_EQ(store.row_range(0, 10), (std::pair<std::uint64_t, std::uint64_t>{0, 0}));
  EXPECT_EQ(store.segment(1, 10), nullptr);
  EXPECT_EQ(store.segment(0, 11), nullptr);

  // And the fully empty window.
  std::stringstream empty;
  write_flows_fde1(50, 0, 0, {}, empty);
  const TempFile empty_file(empty.str());
  const MappedFlowStore empty_store(empty_file.path());
  EXPECT_EQ(empty_store.flow_count(), 0u);
  EXPECT_TRUE(empty_store.segments().empty());
}

TEST(Fde1, WriterValidatesSegmentsAndRowOrder) {
  std::stringstream out;

  // Segments out of (router, day) order.
  std::vector<Fde1Segment> unordered(2);
  unordered[0].router = 1;
  unordered[0].day = 3;
  unordered[1].router = 1;
  unordered[1].day = 3;
  EXPECT_THROW(write_flows_fde1(10, 0, 5, unordered, out),
               std::invalid_argument);

  // Segment day outside the declared window.
  std::vector<Fde1Segment> outside(1);
  outside[0].day = 9;
  EXPECT_THROW(write_flows_fde1(10, 0, 5, outside, out),
               std::invalid_argument);

  // Row carrying the wrong router for its segment.
  std::vector<Fde1Segment> wrong_router(1);
  wrong_router[0].router = 1;
  wrong_router[0].day = 0;
  flowsim::FlowRecord r;
  r.router = 2;
  wrong_router[0].rows.push_back(r);
  EXPECT_THROW(write_flows_fde1(10, 0, 5, wrong_router, out),
               std::invalid_argument);

  // Rows out of (src, dst_port, type) order.
  std::vector<Fde1Segment> disorder(1);
  disorder[0].router = 0;
  disorder[0].day = 0;
  flowsim::FlowRecord a;
  a.src = ip("10.0.0.9");
  flowsim::FlowRecord b;
  b.src = ip("10.0.0.1");
  disorder[0].rows.push_back(a);
  disorder[0].rows.push_back(b);
  EXPECT_THROW(write_flows_fde1(10, 0, 5, disorder, out),
               std::invalid_argument);

  // Bad block size.
  EXPECT_THROW(write_flows_fde1(10, 0, 5, {}, out, 0), std::invalid_argument);
}

// ------------------------------------------------------------- sniffing

TEST(Fde1, SniffsFlowInputFormats) {
  const flowsim::FlowDataset flows = tiny_flows();
  const TempFile fde1(fde1_bytes(flows, 64));
  EXPECT_EQ(sniff_flow_format(fde1.path()), "FDE1");

  const auto packet = flowsim::encode_netflow_v5(
      flowsim::NetflowV5Header{}, std::vector<flowsim::NetflowV5Record>(2));
  const TempFile nfv5(std::string(packet.begin(), packet.end()), "nfv5");
  EXPECT_EQ(sniff_flow_format(nfv5.path()), "NFV5");

  const TempFile csv("router,ts_ns,src,dst,src_port,dst_port,proto,packets,bytes\n",
                     "csv");
  EXPECT_EQ(sniff_flow_format(csv.path()), "CSV");

  const TempFile junk(std::string("\x7f\x45\x4c\x46\x02\x01", 6), "junk");
  EXPECT_EQ(sniff_flow_format(junk.path()), "?");
}

// ---------------------------------------------------- strict-open checks

TEST(MappedFlowStore, RejectsCorruptHeaderAndFooter) {
  const flowsim::FlowDataset flows = tiny_flows();
  const std::string clean = fde1_bytes(flows, 32);

  {  // magic
    std::string bytes = clean;
    bytes[0] = 'X';
    const TempFile file(bytes);
    EXPECT_THROW(MappedFlowStore{file.path()}, std::runtime_error);
  }
  {  // header field bit flip breaks the header CRC
    std::string bytes = clean;
    bytes[17] = static_cast<char>(bytes[17] ^ 0x40);
    const TempFile file(bytes);
    EXPECT_THROW(MappedFlowStore{file.path()}, std::runtime_error);
  }
  {  // footer CRC (last 4 bytes)
    std::string bytes = clean;
    bytes.back() = static_cast<char>(bytes.back() ^ 1);
    const TempFile file(bytes);
    EXPECT_THROW(MappedFlowStore{file.path()}, std::runtime_error);
  }
  {  // truncation
    const TempFile file(clean.substr(0, clean.size() / 2));
    EXPECT_THROW(MappedFlowStore{file.path()}, std::runtime_error);
  }
  {  // block payload corruption is lazy: open succeeds, verify catches it
    std::string bytes = clean;
    bytes[kFde1HeaderBytes + 3] = static_cast<char>(bytes[kFde1HeaderBytes + 3] ^ 0x10);
    const TempFile file(bytes);
    const MappedFlowStore store(file.path());
    EXPECT_EQ(store.verify_blocks(), 0u);
  }
}

// -------------------------------------------------------------- salvage

TEST(Fde1Salvage, CleanArchiveIsComplete) {
  const flowsim::FlowDataset flows = tiny_flows();
  const TempFile file(fde1_bytes(flows, 16));
  const Fde1SalvageResult result = read_flows_fde1_salvage(file.path());
  EXPECT_TRUE(result.footer_intact);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.error.empty());
  EXPECT_EQ(result.recovered_count, result.declared_count);
  EXPECT_EQ(result.sampling_rate, flows.sampling_rate());
  EXPECT_EQ(result.start_day, flows.start_day());
  EXPECT_EQ(result.end_day, flows.end_day());
  EXPECT_FALSE(result.segments.empty());
}

TEST(Fde1Salvage, BitFlippedBlockRecoversPrecedingBlocks) {
  const flowsim::FlowDataset flows = tiny_flows();
  const std::string clean = fde1_bytes(flows, 16);
  const TempFile clean_file(clean);
  const MappedFlowStore store(clean_file.path());
  ASSERT_GE(store.block_count(), 3u);

  // Flip one byte inside block 2's payload.
  std::string bytes = clean;
  const std::size_t at = static_cast<std::size_t>(store.blocks()[2].offset) + 5;
  bytes[at] = static_cast<char>(bytes[at] ^ 0x20);
  const TempFile file(bytes);

  const Fde1SalvageResult result = read_flows_fde1_salvage(file.path());
  EXPECT_TRUE(result.footer_intact);  // footer survived; block 2 did not
  EXPECT_FALSE(result.complete);
  EXPECT_NE(result.error.find("block 2"), std::string::npos);
  EXPECT_EQ(result.recovered_count, 2 * 16u);
  // The recovered prefix is byte-identical to the original rows.
  const flowsim::FlowBatch expected = expected_rows(flows);
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    EXPECT_EQ(result.rows.record_at(i), expected.record_at(i));
  }
  // Footer-intact salvage still reports the segment index.
  EXPECT_EQ(result.segments.size(), store.segments().size());
}

TEST(Fde1Salvage, TruncationCorpusRecoversEveryCompletePrefix) {
  const flowsim::FlowDataset flows = tiny_flows();
  const std::string clean = fde1_bytes(flows, 16);
  const TempFile clean_file(clean);
  const MappedFlowStore store(clean_file.path());
  const std::uint64_t n = store.flow_count();

  // Cut the file at a spread of lengths from "nothing" to "all but one
  // byte": salvage must never throw, never fabricate rows, and always
  // recover exactly the complete blocks that fit (footer gone -> order-
  // validated geometry walk).
  for (std::size_t cut = 0; cut < clean.size(); cut += 97) {
    const TempFile file(clean.substr(0, cut));
    const Fde1SalvageResult result = read_flows_fde1_salvage(file.path());
    EXPECT_FALSE(result.complete);
    if (cut < kFde1HeaderBytes) {
      EXPECT_EQ(result.recovered_count, 0u);
      continue;
    }
    EXPECT_EQ(result.declared_count, n);
    EXPECT_FALSE(result.footer_intact);
    std::uint64_t fit = 0;
    std::uint64_t offset = kFde1HeaderBytes;
    while (fit < n) {
      const std::uint64_t rows = std::min<std::uint64_t>(16, n - fit);
      if (offset + fde1_block_bytes(rows) > cut) break;
      offset += fde1_block_bytes(rows);
      fit += rows;
    }
    EXPECT_EQ(result.recovered_count, fit) << "cut " << cut;
  }
  {  // all but the final CRC byte: footer fails, every block recovers
    const TempFile file(clean.substr(0, clean.size() - 1));
    const Fde1SalvageResult result = read_flows_fde1_salvage(file.path());
    EXPECT_FALSE(result.footer_intact);
    EXPECT_EQ(result.recovered_count, n);
  }
}

TEST(Fde1Salvage, FooterlessSalvageStopsAtDisorderedBlock) {
  const flowsim::FlowDataset flows = tiny_flows();
  const std::string clean = fde1_bytes(flows, 16);
  const TempFile clean_file(clean);
  const MappedFlowStore store(clean_file.path());
  ASSERT_GE(store.block_count(), 3u);  // block 1 is full (16 rows)

  // Wreck the footer AND set block 1's first router to 0xFFFF so row 0
  // outranks row 1 in the global order. Structural salvage must keep
  // block 0 and stop at the disorder (the footer can't arbitrate).
  std::string bytes = clean;
  bytes.back() = static_cast<char>(bytes.back() ^ 1);
  const std::size_t router_col_off =
      static_cast<std::size_t>(store.blocks()[1].offset) + 36 * 16;
  bytes[router_col_off + 0] = static_cast<char>(0xFF);
  bytes[router_col_off + 1] = static_cast<char>(0xFF);
  const TempFile file(bytes);

  const Fde1SalvageResult result = read_flows_fde1_salvage(file.path());
  EXPECT_FALSE(result.footer_intact);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.recovered_count, 16u);
  EXPECT_NE(result.error.find("out of order"), std::string::npos);
}

// ------------------------------------------------------------- zone maps

TEST(MappedFlowStore, ZoneMapsPruneWithoutChangingResults) {
  const flowsim::FlowDataset flows = tiny_flows();
  const TempFile file(fde1_bytes(flows, 8));
  const MappedFlowStore store(file.path());

  // Pick a real source from the middle of the archive.
  const std::uint32_t target = store.record(store.flow_count() / 2).src.value();

  std::uint64_t full_hits = 0;
  std::size_t pruned_blocks = 0;
  store.for_each_block(0, 0xFFFFFFFFu, [&](const FlowView& view) {
    ++pruned_blocks;
    for (std::size_t i = 0; i < view.rows(); ++i) {
      if (view.src[i] == target) ++full_hits;
    }
  });
  EXPECT_EQ(pruned_blocks, store.block_count());

  std::uint64_t zone_hits = 0;
  std::size_t visited = 0;
  store.for_each_block(target, target, [&](const FlowView& view) {
    ++visited;
    for (std::size_t i = 0; i < view.rows(); ++i) {
      if (view.src[i] == target) ++zone_hits;
    }
  });
  EXPECT_EQ(zone_hits, full_hits);
  EXPECT_GT(full_hits, 0u);
  EXPECT_LT(visited, store.block_count());  // the maps actually pruned
}

// ------------------------------------- zero-copy query() equivalence

TEST(FlowImpactAnalyzer, Fde1QueryIsByteIdenticalToMemoryAtAnyBlockSize) {
  const flowsim::FlowDataset flows = tiny_flows();
  const detect::IpSet ips = tiny_sources();
  const impact::SourceSet sources(ips);
  const impact::FlowImpactAnalyzer memory(&flows);

  for (const std::uint64_t block_flows :
       {std::uint64_t{1}, std::uint64_t{64}, std::uint64_t{1024}}) {
    const TempFile file(fde1_bytes(flows, block_flows));
    const MappedFlowStore store(file.path());
    const impact::FlowImpactAnalyzer cold(&store);

    for (std::size_t router = 0; router < flowsim::kRouterCount; ++router) {
      for (std::int64_t day = flows.start_day(); day < flows.end_day();
           ++day) {
        const impact::RouterDayReport a = memory.query(router, day, sources);
        const impact::RouterDayReport b = cold.query(router, day, sources);
        expect_same_report(a, b);
        expect_same_report(b, cold.query_scalar(router, day, ips));
      }
    }
    // Out-of-range cells throw exactly like FlowDataset::at.
    EXPECT_THROW(cold.query(flowsim::kRouterCount, flows.start_day(), sources),
                 std::out_of_range);
    EXPECT_THROW(cold.query(0, flows.end_day(), sources), std::out_of_range);

    // impact_table walks the same cells in the same order.
    const auto mem_table = memory.impact_table(ips);
    const auto cold_table = cold.impact_table(ips);
    ASSERT_EQ(mem_table.size(), cold_table.size());
    for (std::size_t i = 0; i < mem_table.size(); ++i) {
      EXPECT_EQ(mem_table[i].matched_packets, cold_table[i].matched_packets);
      EXPECT_EQ(mem_table[i].total_packets, cold_table[i].total_packets);
      EXPECT_EQ(mem_table[i].matched_sources, cold_table[i].matched_sources);
    }
  }
}

TEST(FlowImpactAnalyzer, ParallelPrebuildIsInvariantAcrossThreadCounts) {
  const flowsim::FlowDataset flows = tiny_flows();
  const detect::IpSet ips = tiny_sources();
  const impact::SourceSet sources(ips);
  const TempFile file(fde1_bytes(flows, 64));
  const MappedFlowStore store(file.path());

  const impact::FlowImpactAnalyzer lazy(&store);
  for (const std::size_t n_threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{3}, std::size_t{8}}) {
    const impact::FlowImpactAnalyzer parallel(&store);
    parallel.prebuild_indexes(n_threads);
    parallel.prebuild_indexes(n_threads);  // idempotent
    for (std::size_t router = 0; router < flowsim::kRouterCount; ++router) {
      for (std::int64_t day = flows.start_day(); day < flows.end_day();
           ++day) {
        expect_same_report(parallel.query(router, day, sources),
                           lazy.query(router, day, sources));
      }
    }
  }

  // The in-memory analyzer accepts prebuild too.
  const impact::FlowImpactAnalyzer memory(&flows);
  memory.prebuild_indexes(4);
  expect_same_report(memory.query(0, flows.start_day(), sources),
                     lazy.query(0, flows.start_day(), sources));
}

TEST(MappedFlowStore, ToDatasetReproducesQueries) {
  const flowsim::FlowDataset flows = tiny_flows();
  const detect::IpSet ips = tiny_sources();
  const impact::SourceSet sources(ips);
  const TempFile file(fde1_bytes(flows));
  const MappedFlowStore store(file.path());

  const flowsim::FlowDataset round = store.to_dataset();
  EXPECT_EQ(round.sampling_rate(), flows.sampling_rate());
  const impact::FlowImpactAnalyzer a(&flows);
  const impact::FlowImpactAnalyzer b(&round);
  for (std::size_t router = 0; router < flowsim::kRouterCount; ++router) {
    for (std::int64_t day = flows.start_day(); day < flows.end_day(); ++day) {
      expect_same_report(a.query(router, day, sources),
                         b.query(router, day, sources));
    }
  }
}

TEST(MappedFlowStore, RecordAccessorMatchesBatchAndBoundsChecks) {
  const flowsim::FlowDataset flows = tiny_flows();
  const TempFile file(fde1_bytes(flows, 8));
  const MappedFlowStore store(file.path());
  const flowsim::FlowBatch all = store.to_batch();
  for (std::uint64_t row = 0; row < store.flow_count();
       row += 1 + store.flow_count() / 17) {
    EXPECT_EQ(store.record(row), all.record_at(static_cast<std::size_t>(row)));
  }
  EXPECT_THROW(store.record(store.flow_count()), std::runtime_error);
}

}  // namespace
}  // namespace orion::store
