// Batched-hot-path equivalence suite (DESIGN.md §11): the columnar
// PacketBatch bridge must be lossless, and every batched engine —
// EventAggregator::observe_batch, TelescopeCapture::observe_batch,
// ParallelPipeline::observe_batch, the SpscRing span operations, the
// slicing-by-8 CRC-32 and the 8-byte-fold Internet checksum — must be
// pinned byte-identical to its scalar reference for ANY batch size
// (including 1 and ragged tails), across day rollovers, sweep-heavy
// expiry storms, and checkpoint/resume cuts that land mid-batch. Runs
// under the `hotpath` ctest label and the asan-ubsan + tsan presets.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "orion/netbase/checksum.hpp"
#include "orion/netbase/crc32.hpp"
#include "orion/packet/batch.hpp"
#include "orion/scangen/packet_gen.hpp"
#include "orion/scangen/scenario.hpp"
#include "orion/stats/hyperloglog.hpp"
#include "orion/telescope/capture.hpp"
#include "orion/telescope/checkpoint.hpp"
#include "orion/telescope/parallel.hpp"
#include "orion/telescope/spsc_ring.hpp"

namespace orion {
namespace {

// ------------------------------------------------------------ fixtures

const scangen::Scenario& scenario() {
  static const scangen::Scenario s{scangen::tiny()};
  return s;
}

/// Multi-day scangen stream: realistic tool mix, day rollovers inside.
std::vector<pkt::Packet> scangen_stream(std::int64_t days) {
  scangen::PacketStreamGenerator generator(
      scenario().population_2021().scanners, scenario().darknet(),
      net::SimTime::epoch(), net::SimTime::epoch() + net::Duration::days(days),
      {.seed = 17, .exact_targets = true, .stable_streams = true});
  std::vector<pkt::Packet> packets;
  while (auto p = generator.next()) packets.push_back(*p);
  return packets;
}

net::PrefixSet small_dark_space() {
  return net::PrefixSet({*net::Prefix::parse("198.18.0.0/24")});
}

/// Aggressive expiry settings so sweeps fire constantly and events churn.
telescope::AggregatorConfig sweep_heavy_config() {
  telescope::AggregatorConfig config;
  config.timeout = net::Duration::minutes(10);
  config.sweep_interval = net::Duration::minutes(1);
  return config;
}

/// Synthetic stream built for expiry storms: waves of sources hammer the
/// /24, then all go idle past the timeout together, so one sweep expires
/// a whole cohort at once — the case where the batch path's wheel-ordered
/// emission must reproduce the scalar erase_if scan order exactly.
std::vector<pkt::Packet> expiry_storm_stream() {
  std::vector<pkt::Packet> out;
  std::int64_t t = 0;
  std::mt19937 rng(7);
  for (int wave = 0; wave < 12; ++wave) {
    // Burst: 48 sources, a handful of packets each, seconds apart.
    for (int step = 0; step < 240; ++step) {
      pkt::Packet p;
      p.timestamp = net::SimTime::epoch() + net::Duration::seconds(t++);
      p.tuple.src = net::Ipv4Address(0xCB007100u + rng() % 48);
      p.tuple.dst = net::Ipv4Address(0xC6120000u + rng() % 256);
      p.tuple.src_port = static_cast<std::uint16_t>(1024 + rng() % 60000);
      p.tuple.dst_port = static_cast<std::uint16_t>(rng() % 3 ? 23 : 2323);
      p.tuple.proto = net::IpProto::Tcp;
      p.tcp_flags = pkt::TcpFlags::kSyn;
      pkt::apply_fingerprint(
          p, static_cast<pkt::ScanTool>(rng() % 4));
      out.push_back(p);
    }
    // Silence well past the timeout, so the next packet's sweep expires
    // every event of the wave in one batch_sweep call.
    t += 25 * 60;
  }
  return out;
}

struct CaptureState {
  std::uint32_t checkpoint_crc = 0;
  std::vector<telescope::DarknetEvent> events;
  std::uint64_t packets = 0;
  std::size_t sources = 0;

  bool operator==(const CaptureState&) const = default;
};

std::uint32_t checkpoint_crc(const telescope::TelescopeCapture& capture) {
  telescope::CheckpointWriter writer;
  capture.checkpoint(writer);
  std::ostringstream snapshot;
  writer.finish(snapshot);
  const std::string bytes = snapshot.str();
  return net::Crc32::of(
      {reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()});
}

/// Full-run state: checkpoint bytes are hashed BEFORE finish() so the
/// comparison covers live (mid-stream) aggregator state, not just output.
CaptureState drain(telescope::TelescopeCapture& capture) {
  CaptureState state;
  state.checkpoint_crc = checkpoint_crc(capture);
  state.packets = capture.packets_captured();
  state.sources = capture.unique_sources();
  state.events = capture.finish().events();
  return state;
}

CaptureState scalar_run(const std::vector<pkt::Packet>& packets,
                        const net::PrefixSet& dark,
                        const telescope::AggregatorConfig& config) {
  telescope::TelescopeCapture capture(dark, config);
  for (const pkt::Packet& p : packets) capture.observe(p);
  return drain(capture);
}

/// Chunks `packets` with the given sequence of batch sizes (cycled) and
/// feeds them through observe_batch on a single reused arena.
CaptureState batched_run(const std::vector<pkt::Packet>& packets,
                         const net::PrefixSet& dark,
                         const telescope::AggregatorConfig& config,
                         const std::vector<std::size_t>& sizes) {
  telescope::TelescopeCapture capture(dark, config);
  pkt::PacketBatch batch;
  std::size_t i = 0, cycle = 0;
  while (i < packets.size()) {
    const std::size_t size = sizes[cycle++ % sizes.size()];
    batch.clear();
    for (std::size_t j = 0; j < size && i < packets.size(); ++j, ++i) {
      batch.push_back(packets[i]);
    }
    capture.observe_batch(batch);
  }
  return drain(capture);
}

pkt::Packet random_packet(std::mt19937_64& rng) {
  pkt::Packet p;
  p.timestamp = net::SimTime::epoch() +
                net::Duration::nanos(static_cast<std::int64_t>(rng() >> 16));
  p.tuple.src = net::Ipv4Address(static_cast<std::uint32_t>(rng()));
  p.tuple.dst = net::Ipv4Address(static_cast<std::uint32_t>(rng()));
  p.tuple.src_port = static_cast<std::uint16_t>(rng());
  p.tuple.dst_port = static_cast<std::uint16_t>(rng());
  const net::IpProto protos[] = {net::IpProto::Tcp, net::IpProto::Udp,
                                 net::IpProto::Icmp};
  p.tuple.proto = protos[rng() % 3];
  p.ip_id = static_cast<std::uint16_t>(rng());
  p.ttl = static_cast<std::uint8_t>(rng());
  p.tcp_flags = static_cast<std::uint8_t>(rng());
  p.tcp_seq = static_cast<std::uint32_t>(rng());
  p.tcp_window = static_cast<std::uint16_t>(rng());
  p.icmp_type = static_cast<std::uint8_t>(rng() % 16);
  p.wire_length = static_cast<std::uint16_t>(40 + rng() % 1400);
  return p;
}

bool same_packet(const pkt::Packet& a, const pkt::Packet& b) {
  return a.timestamp == b.timestamp && a.tuple == b.tuple &&
         a.ip_id == b.ip_id && a.ttl == b.ttl && a.tcp_flags == b.tcp_flags &&
         a.tcp_seq == b.tcp_seq && a.tcp_window == b.tcp_window &&
         a.icmp_type == b.icmp_type && a.wire_length == b.wire_length;
}

// ---------------------------------------------------------- PacketBatch

TEST(PacketBatch, RoundTripIsLossless) {
  std::mt19937_64 rng(1);
  std::vector<pkt::Packet> packets;
  pkt::PacketBatch batch;
  for (int i = 0; i < 1000; ++i) {
    packets.push_back(random_packet(rng));
    batch.push_back(packets.back());
  }
  ASSERT_EQ(batch.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_TRUE(same_packet(batch.packet_at(i), packets[i])) << "record " << i;
  }
}

TEST(PacketBatch, AppendRecordCopiesAllColumns) {
  std::mt19937_64 rng(2);
  pkt::PacketBatch source;
  for (int i = 0; i < 64; ++i) source.push_back(random_packet(rng));
  pkt::PacketBatch scattered;
  // Scatter in a shuffled order, the way the pipeline dispatcher does.
  std::vector<std::size_t> order(source.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng);
  for (const std::size_t i : order) scattered.append_record(source, i);
  for (std::size_t j = 0; j < order.size(); ++j) {
    EXPECT_TRUE(same_packet(scattered.packet_at(j), source.packet_at(order[j])));
  }
}

TEST(PacketBatch, ColumnClassifiersMatchScalar) {
  std::mt19937_64 rng(3);
  pkt::PacketBatch batch;
  std::vector<pkt::Packet> packets;
  for (int i = 0; i < 4000; ++i) {
    pkt::Packet p = random_packet(rng);
    // Half the stream carries genuine tool artifacts so every ScanTool
    // branch of the classifier is exercised, not just Other.
    if (i % 2 == 0) {
      pkt::apply_fingerprint(p, static_cast<pkt::ScanTool>(rng() % 4));
    }
    packets.push_back(p);
    batch.push_back(p);
  }
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(batch.traffic_type(i), packets[i].traffic_type());
    EXPECT_EQ(batch.tool(i), pkt::fingerprint_of(packets[i]));
  }
  // clear() keeps capacity but drops every record.
  batch.clear();
  EXPECT_TRUE(batch.empty());
}

// ------------------------------------------------------------ checksums

TEST(Crc32, SlicedMatchesScalarOneShotFuzz) {
  std::mt19937_64 rng(11);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> data(rng() % 4096);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    EXPECT_EQ(net::Crc32::of(data), net::Crc32::of_scalar(data))
        << "length " << data.size();
  }
  // Every length near the 8-byte slicing boundary, deterministically.
  for (std::size_t len = 0; len <= 33; ++len) {
    std::vector<std::uint8_t> data(len);
    for (std::size_t i = 0; i < len; ++i) data[i] = static_cast<std::uint8_t>(i * 37);
    EXPECT_EQ(net::Crc32::of(data), net::Crc32::of_scalar(data)) << "length " << len;
  }
}

TEST(Crc32, SlicedMatchesScalarUnderArbitraryChunking) {
  std::mt19937_64 rng(12);
  std::vector<std::uint8_t> data(1 << 16);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  const std::uint32_t reference = net::Crc32::of_scalar(data);
  for (int round = 0; round < 30; ++round) {
    net::Crc32 sliced;
    net::Crc32 mixed;  // randomly alternates the two forms on one stream
    std::size_t i = 0;
    while (i < data.size()) {
      const std::size_t n = std::min<std::size_t>(1 + rng() % 777, data.size() - i);
      const std::span<const std::uint8_t> chunk(data.data() + i, n);
      sliced.update(chunk);
      if (rng() % 2) {
        mixed.update(chunk);
      } else {
        mixed.update_scalar(chunk);
      }
      i += n;
    }
    EXPECT_EQ(sliced.value(), reference);
    EXPECT_EQ(mixed.value(), reference);
  }
}

TEST(InternetChecksum, FoldedMatchesScalarOneShotFuzz) {
  std::mt19937_64 rng(13);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> data(rng() % 4096);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    EXPECT_EQ(net::InternetChecksum::of(data),
              net::InternetChecksum::of_scalar(data))
        << "length " << data.size();
  }
  for (std::size_t len = 0; len <= 33; ++len) {
    std::vector<std::uint8_t> data(len, 0xFF);  // saturating carries
    EXPECT_EQ(net::InternetChecksum::of(data),
              net::InternetChecksum::of_scalar(data))
        << "length " << len;
  }
}

TEST(InternetChecksum, FoldedMatchesScalarOnIdenticalCallSequences) {
  // The accumulator contract is per-call-sequence (an odd-length chunk
  // pads, exactly like the scalar form), so both accumulators must see
  // the same chunking — and then agree for ANY chunking.
  std::mt19937_64 rng(14);
  std::vector<std::uint8_t> data(1 << 15);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  for (int round = 0; round < 30; ++round) {
    net::InternetChecksum folded;
    net::InternetChecksum scalar;
    folded.add_word(static_cast<std::uint16_t>(round * 9176));  // pseudo-header
    scalar.add_word(static_cast<std::uint16_t>(round * 9176));
    std::size_t i = 0;
    while (i < data.size()) {
      const std::size_t n = std::min<std::size_t>(1 + rng() % 513, data.size() - i);
      folded.add_bytes({data.data() + i, n});
      scalar.add_bytes_scalar({data.data() + i, n});
      i += n;
    }
    EXPECT_EQ(folded.finalize(), scalar.finalize());
  }
}

// ------------------------------------------------------- SpscRing spans

TEST(SpscRing, SpanPushPopPartialAcceptance) {
  telescope::SpscRing<int> ring(8);
  std::vector<int> values = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(ring.try_push_n(std::span<int>(values)), 6u);
  // Only 2 slots left: a 6-wide push takes 2 and reports it.
  EXPECT_EQ(ring.try_push_n(std::span<int>(values)), 2u);
  EXPECT_EQ(ring.try_push_n(std::span<int>(values)), 0u);  // full

  std::vector<int> out(5, 0);
  EXPECT_EQ(ring.try_pop_n(std::span<int>(out)), 5u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
  std::vector<int> rest(8, 0);
  EXPECT_EQ(ring.try_pop_n(std::span<int>(rest)), 3u);  // 6, then 1, 2 again
  EXPECT_EQ(rest[0], 6);
  EXPECT_EQ(rest[1], 1);
  EXPECT_EQ(rest[2], 2);
  EXPECT_EQ(ring.try_pop_n(std::span<int>(rest)), 0u);  // empty
}

TEST(SpscRing, SpanOpsTwoThreadStressPreserveFifo) {
  constexpr std::uint64_t kCount = 50000;
  telescope::SpscRing<std::uint64_t> ring(64);
  std::thread producer([&ring] {
    std::mt19937 rng(21);
    std::uint64_t next = 0;
    std::vector<std::uint64_t> span;
    while (next < kCount) {
      const std::size_t want =
          std::min<std::uint64_t>(1 + rng() % 7, kCount - next);
      span.resize(want);
      for (std::size_t i = 0; i < want; ++i) span[i] = next + i;
      std::size_t pushed = 0;
      while (pushed < want) {
        const std::size_t n = ring.try_push_n(
            std::span<std::uint64_t>(span.data() + pushed, want - pushed));
        if (n == 0) std::this_thread::yield();  // 1-core CI friendliness
        pushed += n;
      }
      next += want;
    }
  });
  std::mt19937 rng(22);
  std::uint64_t expected = 0;
  std::vector<std::uint64_t> out;
  while (expected < kCount) {
    out.resize(1 + rng() % 9);
    const std::size_t n = ring.try_pop_n(std::span<std::uint64_t>(out));
    if (n == 0) std::this_thread::yield();
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], expected) << "FIFO order violated";
      ++expected;
    }
  }
  producer.join();
}

// ------------------------------------- scangen batched emission

TEST(ScangenBatch, NextBatchMatchesNextExactly) {
  const scangen::PacketGenConfig options{
      .seed = 17, .exact_targets = true, .stable_streams = true};
  scangen::PacketStreamGenerator scalar(
      scenario().population_2021().scanners, scenario().darknet(),
      net::SimTime::epoch(), net::SimTime::epoch() + net::Duration::days(1),
      options);
  scangen::PacketStreamGenerator batched(
      scenario().population_2021().scanners, scenario().darknet(),
      net::SimTime::epoch(), net::SimTime::epoch() + net::Duration::days(1),
      options);
  std::mt19937 rng(31);
  pkt::PacketBatch batch;
  for (;;) {
    const auto peek = batched.peek_time();
    batch.clear();
    const std::size_t n = batched.next_batch(batch, 1 + rng() % 97);
    if (n == 0) {
      EXPECT_FALSE(peek.has_value());
      EXPECT_FALSE(scalar.next().has_value());
      break;
    }
    ASSERT_TRUE(peek.has_value());
    EXPECT_EQ(*peek, batch.timestamp_nanos(0));
    for (std::size_t i = 0; i < n; ++i) {
      const auto reference = scalar.next();
      ASSERT_TRUE(reference.has_value());
      EXPECT_TRUE(same_packet(batch.packet_at(i), *reference));
    }
  }
  EXPECT_EQ(scalar.packets_emitted(), batched.packets_emitted());
}

// ------------------------------------- aggregator batch equivalence

TEST(BatchEquivalence, FixedAndRaggedBatchSizesMatchScalar) {
  const auto packets = scangen_stream(2);
  const auto dark = scenario().darknet();
  telescope::AggregatorConfig config;
  config.timeout = scenario().event_timeout();
  const CaptureState reference = scalar_run(packets, dark, config);
  ASSERT_FALSE(reference.events.empty());

  for (const std::size_t size : {std::size_t{1}, std::size_t{3},
                                 std::size_t{64}, std::size_t{256},
                                 std::size_t{1024}}) {
    EXPECT_EQ(batched_run(packets, dark, config, {size}), reference)
        << "batch size " << size;
  }
  // Ragged mixes, including size-1 batches and a tail that never fills.
  EXPECT_EQ(batched_run(packets, dark, config, {1, 513, 2, 64, 7}), reference);
  std::mt19937 rng(41);
  std::vector<std::size_t> random_sizes;
  for (int i = 0; i < 100; ++i) random_sizes.push_back(1 + rng() % 512);
  EXPECT_EQ(batched_run(packets, dark, config, random_sizes), reference);
}

TEST(BatchEquivalence, ExpiryStormSweepOrderMatchesScalar) {
  const auto packets = expiry_storm_stream();
  const auto dark = small_dark_space();
  const auto config = sweep_heavy_config();
  const CaptureState reference = scalar_run(packets, dark, config);
  ASSERT_GT(reference.events.size(), 100u);  // the storm must churn events
  for (const std::size_t size :
       {std::size_t{1}, std::size_t{17}, std::size_t{240}, std::size_t{4096}}) {
    EXPECT_EQ(batched_run(packets, dark, config, {size}), reference)
        << "batch size " << size;
  }
}

TEST(BatchEquivalence, MixedScalarAndBatchCallsMatchScalar) {
  // Alternating observe() and observe_batch() on one capture exercises the
  // aux-wheel invalidate/rebuild seam both ways.
  const auto packets = expiry_storm_stream();
  const auto dark = small_dark_space();
  const auto config = sweep_heavy_config();
  const CaptureState reference = scalar_run(packets, dark, config);

  std::mt19937 rng(43);
  telescope::TelescopeCapture capture(dark, config);
  pkt::PacketBatch batch;
  std::size_t i = 0;
  while (i < packets.size()) {
    if (rng() % 2) {
      capture.observe(packets[i++]);
    } else {
      const std::size_t size = 1 + rng() % 300;
      batch.clear();
      for (std::size_t j = 0; j < size && i < packets.size(); ++j, ++i) {
        batch.push_back(packets[i]);
      }
      capture.observe_batch(batch);
    }
  }
  EXPECT_EQ(drain(capture), reference);
}

TEST(BatchEquivalence, AdvanceToAtDayRolloversMatchesScalar) {
  // The longitudinal driver closes days with advance_to(); batch ingest
  // that cuts batches at UTC day edges must land in the same state.
  const auto packets = scangen_stream(3);
  const auto dark = scenario().darknet();
  telescope::AggregatorConfig config;
  config.timeout = scenario().event_timeout();
  constexpr std::int64_t kDayNanos = 86400000000000LL;

  const auto day_of = [&](const pkt::Packet& p) {
    return p.timestamp.since_epoch().total_nanos() / kDayNanos;
  };

  telescope::EventCollector scalar_events;
  telescope::EventAggregator scalar(dark, config, scalar_events.sink());
  std::int64_t open_day = day_of(packets.front());
  for (const pkt::Packet& p : packets) {
    if (day_of(p) != open_day) {
      scalar.advance_to(net::SimTime::epoch() +
                        net::Duration::nanos(day_of(p) * kDayNanos));
      open_day = day_of(p);
    }
    scalar.observe(p);
  }
  scalar.finish();

  telescope::EventCollector batch_events;
  telescope::EventAggregator batched(dark, config, batch_events.sink());
  pkt::PacketBatch batch;
  std::size_t i = 0;
  std::mt19937 rng(44);
  while (i < packets.size()) {
    const std::int64_t day = day_of(packets[i]);
    if (i > 0 && day != day_of(packets[i - 1])) {
      batched.advance_to(net::SimTime::epoch() +
                         net::Duration::nanos(day * kDayNanos));
    }
    const std::size_t size = 1 + rng() % 200;
    batch.clear();
    while (batch.size() < size && i < packets.size() &&
           day_of(packets[i]) == day) {
      batch.push_back(packets[i++]);
    }
    batched.observe_batch(batch);
  }
  batched.finish();

  EXPECT_EQ(batch_events.events(), scalar_events.events());
  EXPECT_EQ(batched.packets_seen(), scalar.packets_seen());
  EXPECT_EQ(batched.events_emitted(), scalar.events_emitted());
}

TEST(BatchEquivalence, CheckpointResumeMidBatchMatchesUninterrupted) {
  const auto packets = expiry_storm_stream();
  const auto dark = small_dark_space();
  const auto config = sweep_heavy_config();
  const CaptureState reference = scalar_run(packets, dark, config);

  std::mt19937 rng(45);
  for (int round = 0; round < 4; ++round) {
    // A cut point deliberately NOT aligned to the batch size, so the
    // checkpoint lands mid-way through what would have been one batch.
    const std::size_t cut = 1 + rng() % (packets.size() - 1);
    const std::size_t batch_size = 64;

    telescope::TelescopeCapture first(dark, config);
    pkt::PacketBatch batch;
    std::size_t i = 0;
    while (i < cut) {
      batch.clear();
      for (std::size_t j = 0; j < batch_size && i < cut; ++j, ++i) {
        batch.push_back(packets[i]);
      }
      first.observe_batch(batch);
    }
    telescope::CheckpointWriter writer;
    first.checkpoint(writer);
    std::stringstream snapshot;
    writer.finish(snapshot);

    telescope::TelescopeCapture resumed(dark, config);
    telescope::CheckpointReader reader(snapshot);
    resumed.restore(reader);
    while (i < packets.size()) {
      batch.clear();
      for (std::size_t j = 0; j < batch_size && i < packets.size(); ++j, ++i) {
        batch.push_back(packets[i]);
      }
      resumed.observe_batch(batch);
    }
    EXPECT_EQ(drain(resumed), reference) << "cut at " << cut;
  }
}

TEST(BatchEquivalence, TimestampRegressionThrowsBeforeAnyRecordApplies) {
  const auto dark = small_dark_space();
  const auto config = sweep_heavy_config();
  const auto packets = expiry_storm_stream();

  telescope::TelescopeCapture capture(dark, config);
  pkt::PacketBatch prefix;
  for (std::size_t i = 0; i < 100; ++i) prefix.push_back(packets[i]);
  capture.observe_batch(prefix);
  const std::uint32_t before = checkpoint_crc(capture);

  // Valid head, regressing tail: the batch contract is all-or-nothing, so
  // the valid head must NOT be applied (stronger than the scalar loop).
  pkt::PacketBatch bad;
  bad.push_back(packets[100]);
  pkt::Packet regressed = packets[101];
  regressed.timestamp = packets[0].timestamp;
  bad.push_back(regressed);
  EXPECT_THROW(capture.observe_batch(bad), std::invalid_argument);
  EXPECT_EQ(checkpoint_crc(capture), before);

  // The capture stays usable and convergent afterwards.
  pkt::PacketBatch rest;
  for (std::size_t i = 100; i < packets.size(); ++i) rest.push_back(packets[i]);
  capture.observe_batch(rest);
  EXPECT_EQ(drain(capture), scalar_run(packets, dark, config));
}

// ------------------------------------- parallel pipeline batch path

TEST(ParallelPipelineBatch, ObserveBatchMatchesSerialAcrossShardCounts) {
  const auto packets = scangen_stream(2);

  telescope::AggregatorConfig agg_config;
  agg_config.timeout = scenario().event_timeout();
  detect::StreamingConfig det_config;
  det_config.base = {.dispersion_threshold = scenario().config().def1_dispersion,
                     .packet_volume_alpha = scenario().config().def2_alpha,
                     .port_count_alpha = scenario().config().def3_alpha};
  det_config.warmup_samples = 500;

  telescope::TelescopeCapture serial(scenario().darknet(), agg_config);
  for (const pkt::Packet& p : packets) serial.observe(p);
  const std::vector<telescope::DarknetEvent> reference =
      serial.finish().events();

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{3}, std::size_t{4}}) {
    telescope::ParallelConfig config;
    config.shards = shards;
    config.batch_size = 96;
    config.ring_capacity = 8;  // small: forces backpressure + recycling
    config.aggregator = agg_config;
    config.detector = det_config;
    telescope::ParallelPipeline pipeline(scenario().darknet(), config);
    std::mt19937 rng(50 + static_cast<unsigned>(shards));
    pkt::PacketBatch batch;
    std::size_t i = 0;
    while (i < packets.size()) {
      const std::size_t size = 1 + rng() % 333;
      batch.clear();
      for (std::size_t j = 0; j < size && i < packets.size(); ++j, ++i) {
        batch.push_back(packets[i]);
      }
      pipeline.observe_batch(batch);
    }
    const telescope::ParallelResult result = pipeline.finish();
    EXPECT_EQ(result.dataset.events(), reference) << shards << " shards";
    EXPECT_EQ(result.health.ingested, packets.size());
    EXPECT_EQ(result.health.delivered, packets.size());
    EXPECT_EQ(result.health.dropped(), 0u);
    EXPECT_TRUE(result.health.consistent());
  }
}

// ------------------------------------- flat-set cardinality estimator

TEST(CardinalityEstimatorFlatSet, MatchesReferenceSetAndOrderInvariant) {
  std::mt19937_64 rng(61);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 3000; ++i) {
    // Small key range forces duplicates; 0 exercises the sentinel slot.
    keys.push_back(rng() % 1500);
  }
  std::vector<std::uint64_t> shuffled = keys;
  std::shuffle(shuffled.begin(), shuffled.end(), rng);

  for (const std::size_t limit : {std::size_t{64}, std::size_t{4096}}) {
    stats::CardinalityEstimator forward(limit);
    stats::CardinalityEstimator reordered(limit);
    std::vector<std::uint64_t> reference;
    for (const std::uint64_t k : keys) {
      forward.add(k);
      if (std::find(reference.begin(), reference.end(), k) == reference.end()) {
        reference.push_back(k);
      }
    }
    for (const std::uint64_t k : shuffled) reordered.add(k);

    EXPECT_EQ(forward.is_exact(), reference.size() <= limit);
    EXPECT_EQ(forward.is_exact(), reordered.is_exact());
    // Insertion order must not matter — exact phase or promoted sketch.
    EXPECT_EQ(forward.estimate(), reordered.estimate());
    if (forward.is_exact()) {
      EXPECT_EQ(forward.estimate(), reference.size());
      std::vector<std::uint64_t> got = forward.exact_keys();
      std::sort(got.begin(), got.end());
      std::sort(reference.begin(), reference.end());
      EXPECT_EQ(got, reference);
    } else {
      EXPECT_EQ(forward.sketch().registers(), reordered.sketch().registers());
    }

    // restore() round-trips the flat set through the checkpoint shape.
    stats::CardinalityEstimator restored(limit);
    restored.restore(!forward.is_exact(), forward.exact_keys(),
                     forward.sketch());
    EXPECT_EQ(restored.estimate(), forward.estimate());
    restored.add(999999);  // stays usable after restore
  }
}

}  // namespace
}  // namespace orion
