#include <gtest/gtest.h>

#include <algorithm>

#include "orion/impact/flow_join.hpp"
#include "orion/impact/stream_join.hpp"
#include "orion/scangen/scenario.hpp"

// Every per-cell number comes from query(): since the serve redesign the
// one-probe API is the analyzer's only per-cell surface (the wrappers are
// gone; tests/flowjoin_test.cpp pins query() against the scalar join).

namespace orion::impact {
namespace {

net::Ipv4Address ip(const char* text) { return *net::Ipv4Address::parse(text); }

// Hand-built flow dataset: 1 day, deterministic numbers.
flowsim::FlowDataset hand_dataset() {
  flowsim::FlowSimConfig config;
  config.isp_space = net::PrefixSet({*net::Prefix::parse("20.0.0.0/16")});
  config.start_day = 10;
  config.end_day = 11;
  config.sampling_rate = 100;

  std::vector<std::vector<flowsim::RouterDay>> days(flowsim::kRouterCount);
  for (auto& router : days) router.resize(1);

  flowsim::RouterDay& rd = days[0][0];
  rd.user_packets = 900000;
  rd.scanner_packets = 100000;
  rd.total_packets = 1000000;
  // AH source: 400 sampled packets over two flows -> estimate 40,000.
  rd.sampled[{ip("203.0.113.1"), 23, pkt::TrafficType::TcpSyn}] = 300;
  rd.sampled[{ip("203.0.113.1"), 53, pkt::TrafficType::Udp}] = 100;
  // Non-AH source.
  rd.sampled[{ip("203.0.113.2"), 80, pkt::TrafficType::TcpSyn}] = 50;

  days[1][0].user_packets = days[1][0].total_packets = 500000;
  days[2][0].user_packets = days[2][0].total_packets = 500000;
  return flowsim::FlowDataset(std::move(config), std::move(days));
}

TEST(FlowImpact, PercentagesFromSampledEstimates) {
  const auto flows = hand_dataset();
  FlowImpactAnalyzer analyzer(&flows);
  const detect::IpSet ah = {ip("203.0.113.1")};

  const RouterDayImpact impact = analyzer.query(0, 10, ah).impact;
  EXPECT_EQ(impact.matched_packets, 40000u);
  EXPECT_EQ(impact.total_packets, 1000000u);
  EXPECT_DOUBLE_EQ(impact.percentage(), 4.0);
  EXPECT_EQ(impact.matched_sources, 1u);

  // Router with no AH flows.
  EXPECT_EQ(analyzer.query(1, 10, ah).impact.matched_packets, 0u);
  EXPECT_DOUBLE_EQ(analyzer.query(1, 10, ah).impact.percentage(), 0.0);
}

TEST(FlowImpact, ImpactTableCoversAllRouterDays) {
  const auto flows = hand_dataset();
  FlowImpactAnalyzer analyzer(&flows);
  const auto table = analyzer.impact_table({ip("203.0.113.1")});
  EXPECT_EQ(table.size(), flowsim::kRouterCount * 1);
}

TEST(FlowImpact, VisibilityPercent) {
  const auto flows = hand_dataset();
  FlowImpactAnalyzer analyzer(&flows);
  const detect::IpSet ah = {ip("203.0.113.1"), ip("203.0.113.9")};
  EXPECT_DOUBLE_EQ(analyzer.query(0, 10, ah).visibility_percent(), 50.0);
  EXPECT_DOUBLE_EQ(analyzer.query(1, 10, ah).visibility_percent(), 0.0);
  EXPECT_DOUBLE_EQ(analyzer.query(0, 10, detect::IpSet{}).visibility_percent(),
                   0.0);
}

TEST(FlowImpact, ProtocolMixScalesSampledCounts) {
  const auto flows = hand_dataset();
  FlowImpactAnalyzer analyzer(&flows);
  const ProtocolMix mix = analyzer.query(0, 10, {ip("203.0.113.1")}).protocols;
  EXPECT_EQ(mix[0], 30000u);  // TCP-SYN
  EXPECT_EQ(mix[1], 10000u);  // UDP
  EXPECT_EQ(mix[2], 0u);      // ICMP
}

TEST(FlowImpact, PortMix) {
  const auto flows = hand_dataset();
  FlowImpactAnalyzer analyzer(&flows);
  const auto ports = analyzer.query(0, 10, {ip("203.0.113.1")}).ports;
  EXPECT_EQ(ports.count(23), 30000u);
  EXPECT_EQ(ports.count(53), 10000u);
  EXPECT_EQ(ports.count(80), 0u);  // non-AH source excluded
}

TEST(DarknetMixes, ProtocolAndPortFromEvents) {
  std::vector<telescope::DarknetEvent> events;
  telescope::DarknetEvent e;
  e.key.src = ip("203.0.113.1");
  e.key.dst_port = 23;
  e.key.type = pkt::TrafficType::TcpSyn;
  e.start = net::SimTime::at(net::Duration::days(10));
  e.end = e.start;
  e.packets = 900;
  e.unique_dests = 100;
  events.push_back(e);
  e.key.dst_port = 53;
  e.key.type = pkt::TrafficType::Udp;
  e.packets = 100;
  events.push_back(e);
  e.start = net::SimTime::at(net::Duration::days(11));  // other day: excluded
  e.packets = 5000;
  events.push_back(e);
  const telescope::EventDataset dataset(std::move(events), 1000);

  const detect::IpSet ah = {ip("203.0.113.1")};
  const ProtocolMix mix = darknet_protocol_mix(dataset, 10, ah);
  EXPECT_EQ(mix[0], 900u);
  EXPECT_EQ(mix[1], 100u);
  const auto ports = darknet_port_mix(dataset, 10, ah);
  EXPECT_EQ(ports.count(23), 900u);
  EXPECT_EQ(ports.count(53), 100u);
}

// ------------------------------------------------------------- stream study

TEST(StreamStudy, TinyScenarioEndToEnd) {
  const scangen::Scenario scenario{scangen::tiny()};
  detect::IpSet ah;
  // Declare all cloud scanners AH for the purpose of the stream test.
  for (const auto& s : scenario.population_2021().scanners) {
    if (s.category == scangen::Category::CloudScanner) ah.insert(s.source);
  }

  flowsim::UserTrafficConfig user;
  user.base_pps = 50;
  StreamStudyConfig config;
  config.start = net::SimTime::at(net::Duration::days(1));
  config.hours = 6;
  const flowsim::StreamMonitor monitor = run_stream_study(
      scenario.population_2021(), scenario.registry(),
      flowsim::PeeringPolicy::merit_like(), scenario.merit(), ah,
      flowsim::UserTrafficModel(user), config);

  EXPECT_EQ(monitor.ah_bins().bin_count(), 6u * 3600);
  EXPECT_GT(monitor.user_bins().total(), 0u);
  const auto impact = monitor.cumulative_impact();
  EXPECT_EQ(impact.size(), 6u * 3600);
  // Impact is a fraction.
  for (const double v : impact) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(StreamStudy, RouterFilterReducesMirroredTraffic) {
  const scangen::Scenario scenario{scangen::tiny()};
  detect::IpSet ah;
  for (const auto& s : scenario.population_2021().scanners) ah.insert(s.source);

  flowsim::UserTrafficConfig user;
  user.base_pps = 10;
  StreamStudyConfig all_config;
  all_config.start = net::SimTime::at(net::Duration::days(1));
  all_config.hours = 6;
  StreamStudyConfig filtered_config = all_config;
  filtered_config.router_filter = 0;

  const auto all = run_stream_study(scenario.population_2021(), scenario.registry(),
                                    flowsim::PeeringPolicy::merit_like(),
                                    scenario.merit(), ah,
                                    flowsim::UserTrafficModel(user), all_config);
  const auto filtered = run_stream_study(
      scenario.population_2021(), scenario.registry(),
      flowsim::PeeringPolicy::merit_like(), scenario.merit(), ah,
      flowsim::UserTrafficModel(user), filtered_config);
  EXPECT_LT(filtered.ah_bins().total(), all.ah_bins().total());
  EXPECT_GT(filtered.ah_bins().total(), 0u);
}

}  // namespace
}  // namespace orion::impact

// NOTE: appended suite — blocklist effectiveness evaluation.
#include "orion/impact/blocklist.hpp"
#include "orion/scangen/event_synth.hpp"

namespace orion::impact {
namespace {

TEST(Blocklist, CurveMatchesHandComputedShares) {
  // Three AH with 60/30/10 packets plus 100 packets of non-AH scanning.
  std::vector<telescope::DarknetEvent> events;
  const auto add = [&](const char* src, std::uint64_t packets) {
    telescope::DarknetEvent e;
    e.key.src = *net::Ipv4Address::parse(src);
    e.key.dst_port = 23;
    e.start = net::SimTime::epoch();
    e.end = e.start;
    e.packets = packets;
    e.unique_dests = 10;
    events.push_back(e);
  };
  add("203.0.113.1", 60);
  add("203.0.113.2", 30);
  add("203.0.113.3", 10);
  add("10.0.0.1", 100);
  const telescope::EventDataset dataset(std::move(events), 1000);
  const detect::IpSet ah = {*net::Ipv4Address::parse("203.0.113.1"),
                            *net::Ipv4Address::parse("203.0.113.2"),
                            *net::Ipv4Address::parse("203.0.113.3")};

  const BlocklistCurve curve =
      evaluate_blocklist(dataset, ah, {1, 2, 3, 100}, nullptr, nullptr);
  ASSERT_EQ(curve.points.size(), 4u);
  EXPECT_EQ(curve.total_scanning_packets, 200u);
  EXPECT_EQ(curve.total_ah_packets, 100u);

  EXPECT_EQ(curve.points[0].blocked_ips, 1u);
  EXPECT_DOUBLE_EQ(curve.points[0].scanning_traffic_removed, 0.30);
  EXPECT_DOUBLE_EQ(curve.points[0].ah_traffic_removed, 0.60);
  EXPECT_DOUBLE_EQ(curve.points[1].ah_traffic_removed, 0.90);
  EXPECT_DOUBLE_EQ(curve.points[2].ah_traffic_removed, 1.0);
  // Requesting more than available clamps.
  EXPECT_EQ(curve.points[3].blocked_ips, 3u);
}

TEST(Blocklist, CountsAckedCollateral) {
  const scangen::Scenario scenario{scangen::tiny()};
  asdb::ReverseDns rdns(&scenario.registry());
  const auto acked = intel::AckedScannerList::from_orgs(
      scenario.population_2021().orgs, rdns, intel::AckedConfig{});
  const telescope::EventDataset dataset(
      scangen::synthesize_events(
          scenario.population_2021(),
          {.darknet_size = scenario.darknet().total_addresses(), .seed = 3}),
      scenario.darknet().total_addresses());
  const detect::DetectionResult detection =
      detect::AggressiveScannerDetector(
          {.dispersion_threshold = 0.10,
           .packet_volume_alpha = scenario.config().def2_alpha,
           .port_count_alpha = scenario.config().def3_alpha})
          .detect(dataset);
  const detect::IpSet& ah = detection.of(detect::Definition::AddressDispersion).ips;

  const BlocklistCurve curve =
      evaluate_blocklist(dataset, ah, {10, ah.size()}, &acked, &rdns);
  ASSERT_EQ(curve.points.size(), 2u);
  // Monotone: traffic removed and collateral grow with list size.
  EXPECT_LE(curve.points[0].ah_traffic_removed, curve.points[1].ah_traffic_removed);
  EXPECT_LE(curve.points[0].acked_blocked, curve.points[1].acked_blocked);
  // Blocking the whole AH list removes all AH traffic and catches some
  // research scanners.
  EXPECT_DOUBLE_EQ(curve.points[1].ah_traffic_removed, 1.0);
  EXPECT_GT(curve.points[1].acked_blocked, 0u);
  // Heavy-tailed: the top 10 remove far more than 10/|AH| of AH traffic.
  EXPECT_GT(curve.points[0].ah_traffic_removed,
            3.0 * 10.0 / static_cast<double>(ah.size()));
}

}  // namespace
}  // namespace orion::impact
