// End-to-end integration over the tiny scenario: world construction ->
// event synthesis -> detection -> every downstream analysis the paper runs,
// checking cross-module invariants rather than point values.
#include <gtest/gtest.h>

#include <sstream>

#include "orion/charact/origins.hpp"
#include "orion/charact/portfig.hpp"
#include "orion/charact/temporal.hpp"
#include "orion/charact/validation.hpp"
#include "orion/detect/lists.hpp"
#include "orion/impact/flow_join.hpp"
#include "orion/intel/greynoise.hpp"
#include "orion/report/table.hpp"
#include "orion/scangen/event_synth.hpp"
#include "orion/scangen/scenario.hpp"

namespace orion {
namespace {

class EndToEnd : public testing::Test {
 protected:
  struct World {
    scangen::Scenario scenario{scangen::tiny()};
    telescope::EventDataset d1;
    telescope::EventDataset d2;
    detect::DetectionResult r1;
    detect::DetectionResult r2;

    static detect::DetectorConfig detector_config(const scangen::Scenario& s) {
      return {.dispersion_threshold = s.config().def1_dispersion,
              .packet_volume_alpha = s.config().def2_alpha,
              .port_count_alpha = s.config().def3_alpha};
    }

    World()
        : d1(scangen::synthesize_events(
                 scenario.population_2021(),
                 {.darknet_size = scenario.darknet().total_addresses(),
                  .seed = scenario.config().seed}),
             scenario.darknet().total_addresses()),
          d2(scangen::synthesize_events(
                 scenario.population_2022(),
                 {.darknet_size = scenario.darknet().total_addresses(),
                  .seed = scenario.config().seed + 1}),
             scenario.darknet().total_addresses()),
          r1(detect::AggressiveScannerDetector(detector_config(scenario))
                 .detect(d1)),
          r2(detect::AggressiveScannerDetector(detector_config(scenario))
                 .detect(d2)) {}
  };

  static const World& world() {
    static const World w;
    return w;
  }
};

TEST_F(EndToEnd, DatasetsAreNonTrivial) {
  const auto& w = world();
  EXPECT_GT(w.d1.event_count(), 500u);
  EXPECT_GT(w.d2.event_count(), 500u);
  EXPECT_GT(w.d1.unique_sources(), 100u);
  EXPECT_GT(w.d1.total_packets(), 100000u);
}

TEST_F(EndToEnd, DetectionFindsAggressiveScannersOfEveryKind) {
  const auto& w = world();
  for (const auto* result : {&w.r1, &w.r2}) {
    EXPECT_GT(result->of(detect::Definition::AddressDispersion).ips.size(), 20u);
    EXPECT_GT(result->of(detect::Definition::PacketVolume).ips.size(), 10u);
    EXPECT_GT(result->of(detect::Definition::DistinctPorts).ips.size(), 0u);
  }
}

TEST_F(EndToEnd, AhAreMinorityOfSourcesButMajorityOfPackets) {
  const auto& w = world();
  const detect::IpSet& ah = w.r1.of(detect::Definition::AddressDispersion).ips;
  EXPECT_LT(ah.size(), w.d1.unique_sources() / 2);
  std::uint64_t ah_packets = 0;
  for (const auto& e : w.d1.events()) {
    if (ah.contains(e.key.src)) ah_packets += e.packets;
  }
  EXPECT_GT(static_cast<double>(ah_packets),
            0.5 * static_cast<double>(w.d1.total_packets()));
}

TEST_F(EndToEnd, DispersionEventsAllQualify) {
  const auto& w = world();
  const auto threshold = w.scenario.config().def1_dispersion;
  const detect::IpSet& ah = w.r1.of(detect::Definition::AddressDispersion).ips;
  for (const auto& e : w.d1.events()) {
    if (e.dispersion(w.d1.darknet_size()) >= threshold) {
      EXPECT_TRUE(ah.contains(e.key.src));
    }
  }
}

TEST_F(EndToEnd, FullAnalysisChainRuns) {
  const auto& w = world();
  asdb::ReverseDns rdns(&w.scenario.registry());
  const auto acked = intel::AckedScannerList::from_orgs(
      w.scenario.population_2021().orgs, rdns, intel::AckedConfig{});
  const detect::IpSet& ah = w.r1.of(detect::Definition::AddressDispersion).ips;

  // Origins (Table 5).
  const auto origins =
      charact::origin_table(w.d1, ah, w.scenario.registry(), &acked, &rdns, 10);
  EXPECT_FALSE(origins.rows.empty());

  // Temporal (Figure 3) with noise.
  std::vector<std::uint64_t> noise;
  for (std::int64_t d = w.r1.first_day; d <= w.r1.last_day; ++d) {
    noise.push_back(w.scenario.noise_packets_on_day(d));
  }
  const auto trends = charact::temporal_trends(
      w.d1, w.r1, detect::Definition::AddressDispersion, noise);
  EXPECT_GT(trends.ah_packet_share(), 0.3);

  // Ports (Figure 4): the catalogs' heavy hitters dominate.
  const auto ports = charact::top_ports(w.d1, ah, 25);
  ASSERT_GE(ports.size(), 5u);
  std::vector<std::uint16_t> top5;
  for (std::size_t i = 0; i < 5; ++i) top5.push_back(ports[i].port);
  EXPECT_TRUE(std::find(top5.begin(), top5.end(), 6379) != top5.end() ||
              std::find(top5.begin(), top5.end(), 23) != top5.end());

  // Validation (Table 6).
  const auto validation = charact::validate_acked(w.d1, ah, acked, rdns);
  EXPECT_GT(validation.total_ips, 0u);

  // Intersections (Table 7).
  const auto intersections = charact::intersection_table(w.r1, w.scenario.registry());
  EXPECT_EQ(intersections.size(), 7u);

  // Report rendering holds the rows.
  report::Table table({"def", "ips"});
  for (const auto& row : intersections) {
    table.add_row({row.label, report::fmt_count(row.ips)});
  }
  EXPECT_EQ(table.row_count(), 7u);
}

TEST_F(EndToEnd, DailyListsRoundTripThroughCsv) {
  const auto& w = world();
  const auto entries = detect::build_daily_lists(w.r1);
  ASSERT_FALSE(entries.empty());
  std::stringstream stream;
  detect::write_daily_lists_csv(entries, stream);
  const auto read = detect::read_daily_lists_csv(stream);
  EXPECT_EQ(read, entries);
}

TEST_F(EndToEnd, GreyNoiseOverlapIsNearTotal) {
  const auto& w = world();
  asdb::ReverseDns rdns(&w.scenario.registry());
  const auto acked = intel::AckedScannerList::from_orgs(
      w.scenario.population_2021().orgs, rdns, intel::AckedConfig{});
  intel::HoneypotConfig config;
  config.window_start_day = w.scenario.population_2021().config.window_start_day;
  config.window_end_day = w.scenario.population_2021().config.window_end_day;
  intel::HoneypotNetwork gn(w.scenario.honeypots(), config);
  gn.observe(w.scenario.population_2021());

  const detect::IpSet& ah = w.r1.of(detect::Definition::AddressDispersion).ips;
  const auto breakdown = charact::gn_breakdown(ah, gn, acked, rdns);
  EXPECT_GT(breakdown.overlap_percent(), 90.0);
  // The unknown+malicious mass dominates the benign leftovers (Fig 6 left).
  EXPECT_GT(breakdown.unknown + breakdown.malicious, breakdown.benign);
}

TEST_F(EndToEnd, Determinism) {
  // A second, fresh world produces identical detection sets.
  const World second;
  const auto& w = world();
  for (const auto d : detect::kAllDefinitions) {
    EXPECT_EQ(second.r1.of(d).ips, w.r1.of(d).ips);
    EXPECT_EQ(second.r1.of(d).threshold, w.r1.of(d).threshold);
  }
}

}  // namespace
}  // namespace orion
