#include <gtest/gtest.h>

#include <algorithm>

#include "orion/intel/acked.hpp"
#include "orion/intel/greynoise.hpp"
#include "orion/scangen/scenario.hpp"

namespace orion::intel {
namespace {

class IntelTest : public testing::Test {
 protected:
  static const scangen::Scenario& scenario() {
    static const scangen::Scenario s{scangen::tiny()};
    return s;
  }
};

// -------------------------------------------------------------------- acked

TEST_F(IntelTest, ListIsPartialButCoversEveryOrg) {
  asdb::ReverseDns rdns(&scenario().registry());
  AckedConfig config;
  config.ip_listing_completeness = 0.3;
  const AckedScannerList list =
      AckedScannerList::from_orgs(scenario().population_2021().orgs, rdns, config);

  EXPECT_EQ(list.org_count(), scenario().population_2021().orgs.size());
  std::size_t total_ips = 0;
  for (const auto& org : scenario().population_2021().orgs) {
    total_ips += org.ips.size();
    // At least the first IP of every org is listed.
    EXPECT_TRUE(list.contains_ip(org.ips.front()));
  }
  EXPECT_LT(list.listed_ip_count(), total_ips);
  EXPECT_GE(list.listed_ip_count(), list.org_count());
}

TEST_F(IntelTest, MatchesByIpAndByDomain) {
  asdb::ReverseDns rdns(&scenario().registry());
  AckedConfig config;
  config.ip_listing_completeness = 0.1;
  config.ptr_coverage = 1.0;  // every research IP has a PTR
  const AckedScannerList list =
      AckedScannerList::from_orgs(scenario().population_2021().orgs, rdns, config);

  std::size_t ip_matches = 0, domain_matches = 0;
  for (const auto& org : scenario().population_2021().orgs) {
    for (const net::Ipv4Address ip : org.ips) {
      const AckedMatch match = list.match(ip, rdns);
      ASSERT_TRUE(match) << ip.to_string();
      EXPECT_EQ(match.org, org.name);
      if (match.kind == MatchKind::Ip) {
        ++ip_matches;
      } else {
        ++domain_matches;
      }
    }
  }
  EXPECT_GT(ip_matches, 0u);
  EXPECT_GT(domain_matches, 0u);
  // With 30% listing completeness, domain matches dominate (as in Table 6).
  EXPECT_GT(domain_matches, ip_matches);
}

TEST_F(IntelTest, NonResearchIpsDoNotMatch) {
  asdb::ReverseDns rdns(&scenario().registry());
  const AckedScannerList list = AckedScannerList::from_orgs(
      scenario().population_2021().orgs, rdns, AckedConfig{});
  for (const auto& scanner : scenario().population_2021().scanners) {
    if (scanner.category == scangen::Category::AckedResearch) continue;
    EXPECT_FALSE(list.match(scanner.source, rdns)) << scanner.source.to_string();
  }
}

TEST_F(IntelTest, UnlistedIpWithoutPtrIsUnmatched) {
  asdb::ReverseDns rdns(&scenario().registry(), /*ptr_coverage=*/0.0);
  AckedConfig config;
  config.ip_listing_completeness = 0.0;  // only the per-org anchor IP
  config.ptr_coverage = 0.0;             // and no PTRs at all
  const AckedScannerList list =
      AckedScannerList::from_orgs(scenario().population_2021().orgs, rdns, config);
  const auto& org = scenario().population_2021().orgs.front();
  ASSERT_GE(org.ips.size(), 2u);
  EXPECT_TRUE(list.match(org.ips.front(), rdns));    // anchor listed
  EXPECT_FALSE(list.match(org.ips.back(), rdns));    // unlisted, no PTR
}

// ---------------------------------------------------------------- greynoise

HoneypotConfig gn_config(const scangen::Scenario& scenario) {
  HoneypotConfig config;
  config.window_start_day = scenario.population_2021().config.window_start_day;
  config.window_end_day = scenario.population_2021().config.window_end_day;
  return config;
}

TEST_F(IntelTest, AggressiveScannersAreObserved) {
  HoneypotNetwork gn(scenario().honeypots(), gn_config(scenario()));
  gn.observe(scenario().population_2021());
  EXPECT_GT(gn.size(), 0u);
  // Full-coverage research sweeps always reach the sensors.
  std::size_t acked_observed = 0, acked_total = 0;
  for (const auto& scanner : scenario().population_2021().scanners) {
    if (scanner.category != scangen::Category::AckedResearch) continue;
    bool full_sweep = false;
    for (const auto& s : scanner.sessions) full_sweep |= s.coverage >= 1.0;
    if (!full_sweep) continue;
    ++acked_total;
    acked_observed += gn.contains(scanner.source);
  }
  ASSERT_GT(acked_total, 0u);
  EXPECT_EQ(acked_observed, acked_total);
}

TEST_F(IntelTest, ClassificationFollowsCategory) {
  HoneypotNetwork gn(scenario().honeypots(), gn_config(scenario()));
  gn.observe(scenario().population_2021());
  std::size_t benign = 0, malicious_botnet = 0, botnet_observed = 0;
  for (const auto& scanner : scenario().population_2021().scanners) {
    const GnRecord* record = gn.record(scanner.source);
    if (!record) continue;
    if (scanner.category == scangen::Category::AckedResearch) {
      EXPECT_EQ(record->classification, GnClass::Benign);
      ++benign;
    }
    if (scanner.category == scangen::Category::Botnet) {
      ++botnet_observed;
      malicious_botnet += record->classification == GnClass::Malicious;
    }
  }
  EXPECT_GT(benign, 0u);
  ASSERT_GT(botnet_observed, 0u);
  // ~68% of botnet IPs are tagged malicious (the rest stay unknown).
  EXPECT_GT(static_cast<double>(malicious_botnet) /
                static_cast<double>(botnet_observed),
            0.45);
}

TEST_F(IntelTest, ToolTagsArePresent) {
  HoneypotNetwork gn(scenario().honeypots(), gn_config(scenario()));
  gn.observe(scenario().population_2021());
  for (const auto& scanner : scenario().population_2021().scanners) {
    const GnRecord* record = gn.record(scanner.source);
    if (!record) continue;
    EXPECT_FALSE(record->tags.empty());
    const auto has_tag = [&](const char* tag) {
      return std::find(record->tags.begin(), record->tags.end(), tag) !=
             record->tags.end();
    };
    if (scanner.tool == pkt::ScanTool::Mirai) {
      EXPECT_TRUE(has_tag("Mirai"));
    }
    if (scanner.tool == pkt::ScanTool::ZMap) {
      EXPECT_TRUE(has_tag("ZMap Client"));
    }
  }
}

TEST_F(IntelTest, WindowExcludesInactiveScanners) {
  // Observe over an empty window: nothing recorded.
  HoneypotConfig config;
  config.window_start_day = 9999;
  config.window_end_day = 10000;
  HoneypotNetwork gn(scenario().honeypots(), config);
  gn.observe(scenario().population_2021());
  EXPECT_EQ(gn.size(), 0u);
}

}  // namespace
}  // namespace orion::intel
