#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "orion/netbase/checksum.hpp"
#include "orion/netbase/five_tuple.hpp"
#include "orion/netbase/flat_map.hpp"
#include "orion/netbase/shard.hpp"
#include "orion/netbase/ipv4.hpp"
#include "orion/netbase/prefix.hpp"
#include "orion/netbase/rng.hpp"
#include "orion/netbase/simtime.hpp"

namespace orion::net {
namespace {

// ---------------------------------------------------------------- Ipv4Address

TEST(Ipv4Address, ParsesDottedQuad) {
  const auto a = Ipv4Address::parse("192.0.2.1");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->value(), 0xC0000201u);
  EXPECT_EQ(a->octet(0), 192);
  EXPECT_EQ(a->octet(3), 1);
}

TEST(Ipv4Address, ParseRejectsMalformedInput) {
  for (const char* bad : {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1..2.3",
                          "1.2.3.4x", "a.b.c.d", " 1.2.3.4", "-1.2.3.4"}) {
    EXPECT_FALSE(Ipv4Address::parse(bad)) << bad;
  }
}

TEST(Ipv4Address, ToStringRoundTrips) {
  for (const char* text : {"0.0.0.0", "255.255.255.255", "10.1.2.3", "198.18.0.1"}) {
    const auto a = Ipv4Address::parse(text);
    ASSERT_TRUE(a);
    EXPECT_EQ(a->to_string(), text);
  }
}

TEST(Ipv4Address, NetworkOrderRoundTrips) {
  const Ipv4Address a = Ipv4Address::from_octets(1, 2, 3, 4);
  EXPECT_EQ(a.to_network(), 0x04030201u);
  EXPECT_EQ(Ipv4Address::from_network(a.to_network()), a);
}

TEST(Ipv4Address, Slash24MasksHostBits) {
  const Ipv4Address a = Ipv4Address::from_octets(10, 20, 30, 40);
  EXPECT_EQ(a.slash24(), Ipv4Address::from_octets(10, 20, 30, 0));
}

TEST(Ipv4Address, OrderingFollowsNumericValue) {
  EXPECT_LT(*Ipv4Address::parse("9.255.255.255"), *Ipv4Address::parse("10.0.0.0"));
}

// -------------------------------------------------------------------- Prefix

TEST(Prefix, ParseAndProperties) {
  const auto p = Prefix::parse("198.51.100.0/24");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->length(), 24);
  EXPECT_EQ(p->size(), 256u);
  EXPECT_EQ(p->slash24_count(), 1u);
  EXPECT_EQ(p->to_string(), "198.51.100.0/24");
}

TEST(Prefix, ParseRejectsMalformed) {
  for (const char* bad : {"", "1.2.3.4", "1.2.3.4/33", "1.2.3.4/-1", "x/8",
                          "1.2.3.4/8z"}) {
    EXPECT_FALSE(Prefix::parse(bad)) << bad;
  }
}

TEST(Prefix, HostBitsAreZeroed) {
  const Prefix p(*Ipv4Address::parse("10.1.2.3"), 16);
  EXPECT_EQ(p.base(), *Ipv4Address::parse("10.1.0.0"));
  EXPECT_EQ(p, *Prefix::parse("10.1.0.0/16"));
}

TEST(Prefix, ContainsAddressesAndPrefixes) {
  const Prefix p = *Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(p.contains(*Ipv4Address::parse("10.255.0.1")));
  EXPECT_FALSE(p.contains(*Ipv4Address::parse("11.0.0.0")));
  EXPECT_TRUE(p.contains(*Prefix::parse("10.4.0.0/16")));
  EXPECT_FALSE(p.contains(*Prefix::parse("0.0.0.0/0")));
  EXPECT_TRUE(Prefix::parse("0.0.0.0/0")->contains(p));
}

TEST(Prefix, AtAndOffsetAreInverse) {
  const Prefix p = *Prefix::parse("192.168.4.0/22");
  for (const std::uint64_t offset : {0ull, 1ull, 511ull, 1023ull}) {
    EXPECT_EQ(p.offset_of(p.at(offset)), offset);
  }
  EXPECT_EQ(p.last(), p.at(p.size() - 1));
}

TEST(Prefix, SlashZeroCoversEverything) {
  const Prefix p = *Prefix::parse("0.0.0.0/0");
  EXPECT_EQ(p.size(), 1ull << 32);
  EXPECT_EQ(p.slash24_count(), 1ull << 24);
  EXPECT_TRUE(p.contains(*Ipv4Address::parse("255.255.255.255")));
}

// ----------------------------------------------------------------- PrefixSet

TEST(PrefixSet, MembershipAndLookup) {
  PrefixSet set({*Prefix::parse("10.0.0.0/16"), *Prefix::parse("172.16.0.0/20")});
  EXPECT_TRUE(set.contains(*Ipv4Address::parse("10.0.200.9")));
  EXPECT_TRUE(set.contains(*Ipv4Address::parse("172.16.15.255")));
  EXPECT_FALSE(set.contains(*Ipv4Address::parse("172.16.16.0")));
  EXPECT_FALSE(set.contains(*Ipv4Address::parse("9.255.255.255")));
  EXPECT_EQ(set.find(*Ipv4Address::parse("10.0.0.1"))->to_string(), "10.0.0.0/16");
}

TEST(PrefixSet, RejectsOverlap) {
  PrefixSet set({*Prefix::parse("10.0.0.0/16")});
  EXPECT_THROW(set.add(*Prefix::parse("10.0.4.0/24")), std::invalid_argument);
  EXPECT_THROW(set.add(*Prefix::parse("10.0.0.0/8")), std::invalid_argument);
  EXPECT_NO_THROW(set.add(*Prefix::parse("10.1.0.0/16")));
}

TEST(PrefixSet, TotalsAcrossMembers) {
  PrefixSet set({*Prefix::parse("10.0.0.0/24"), *Prefix::parse("10.2.0.0/23")});
  EXPECT_EQ(set.total_addresses(), 256u + 512u);
  EXPECT_EQ(set.total_slash24s(), 1u + 2u);
}

TEST(PrefixSet, AddressAtOffsetRoundTripsAcrossPrefixes) {
  PrefixSet set({*Prefix::parse("10.0.0.0/24"), *Prefix::parse("10.2.0.0/23"),
                 *Prefix::parse("192.168.0.0/30")});
  for (std::uint64_t offset = 0; offset < set.total_addresses(); ++offset) {
    const Ipv4Address a = set.address_at(offset);
    EXPECT_TRUE(set.contains(a));
    EXPECT_EQ(set.offset_of(a), offset);
  }
  EXPECT_THROW(set.address_at(set.total_addresses()), std::out_of_range);
  EXPECT_THROW(set.offset_of(*Ipv4Address::parse("10.9.9.9")), std::out_of_range);
}

// ----------------------------------------------------------------- Checksum

TEST(InternetChecksum, Rfc1071Example) {
  // RFC 1071 example bytes: words sum to 0x2DDF0, folds to 0xDDF2,
  // complement 0x220D.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(InternetChecksum::of(data), 0x220D);
}

TEST(InternetChecksum, VerifiesToZero) {
  std::uint8_t data[] = {0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x40, 0x00,
                         0x40, 0x06, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x01,
                         0x0a, 0x00, 0x00, 0x02};
  const std::uint16_t csum = InternetChecksum::of(data);
  data[10] = static_cast<std::uint8_t>(csum >> 8);
  data[11] = static_cast<std::uint8_t>(csum);
  EXPECT_EQ(InternetChecksum::of(data), 0);
}

TEST(InternetChecksum, HandlesOddLength) {
  const std::uint8_t data[] = {0xAB, 0xCD, 0xEF};
  // Odd trailing byte is padded with zero on the right.
  InternetChecksum sum;
  sum.add_word(0xABCD);
  sum.add_word(0xEF00);
  EXPECT_EQ(InternetChecksum::of(data), sum.finalize());
}

// ----------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(9), parent2(9);
  Rng child_a = parent1.fork(1);
  Rng child_b = parent2.fork(1);
  EXPECT_EQ(child_a.next(), child_b.next());
  Rng parent3(9);
  Rng other = parent3.fork(2);
  EXPECT_NE(child_a.next(), other.next());
}

TEST(Rng, BoundedStaysInRangeAndIsRoughlyUniform) {
  Rng rng(5);
  std::array<int, 10> buckets{};
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t v = rng.bounded(10);
    ASSERT_LT(v, 10u);
    ++buckets[v];
  }
  for (const int count : buckets) {
    EXPECT_NEAR(count, 10000, 500);
  }
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(6);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

struct BinomialCase {
  std::uint64_t n;
  double p;
};

class RngBinomialTest : public testing::TestWithParam<BinomialCase> {};

TEST_P(RngBinomialTest, MatchesMeanAndVariance) {
  const auto [n, p] = GetParam();
  Rng rng(42);
  const int trials = 4000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < trials; ++i) {
    const auto v = static_cast<double>(rng.binomial(n, p));
    ASSERT_LE(v, static_cast<double>(n));
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / trials;
  const double expected_mean = static_cast<double>(n) * p;
  const double expected_var = expected_mean * (1 - p);
  const double tolerance = 5 * std::sqrt(expected_var / trials) + 1e-9;
  EXPECT_NEAR(mean, expected_mean, tolerance + 0.02 * expected_mean);
  const double var = sum_sq / trials - mean * mean;
  EXPECT_NEAR(var, expected_var, 0.25 * expected_var + 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RngBinomialTest,
    testing::Values(BinomialCase{10, 0.5}, BinomialCase{100, 0.01},
                    BinomialCase{1000, 0.001}, BinomialCase{32768, 0.1},
                    BinomialCase{32768, 0.9}, BinomialCase{1000000, 0.0001},
                    BinomialCase{500, 0.3}));

TEST(Rng, BinomialEdgeCases) {
  Rng rng(1);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.binomial(100, 1.0), 100u);
}

TEST(Rng, PoissonMatchesMean) {
  Rng rng(7);
  for (const double mean : {0.5, 3.0, 20.0, 200.0}) {
    double sum = 0;
    const int trials = 3000;
    for (int i = 0; i < trials; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / trials, mean, 5 * std::sqrt(mean / trials) + 0.05 * mean);
  }
}

TEST(Rng, ExponentialMatchesMean) {
  Rng rng(8);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

// ------------------------------------------------------------------- SimTime

TEST(SimTime, DayAndSecondBuckets) {
  const SimTime t = SimTime::at(Duration::days(3) + Duration::hours(5) +
                                Duration::seconds(7));
  EXPECT_EQ(t.day(), 3);
  EXPECT_EQ(t.second(), 3 * 86400 + 5 * 3600 + 7);
  EXPECT_EQ(t.to_string(), "d003 05:00:07");
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::at(Duration::seconds(100));
  const SimTime b = a + Duration::seconds(50);
  EXPECT_EQ((b - a).total_whole_seconds(), 50);
  EXPECT_EQ(b - Duration::seconds(50), a);
  EXPECT_LT(a, b);
}

TEST(SimTime, WeekdayCalendar) {
  EXPECT_EQ(weekday_of(0), Weekday::Fri);  // 2021-01-01
  EXPECT_EQ(weekday_of(1), Weekday::Sat);
  EXPECT_EQ(weekday_of(2), Weekday::Sun);
  EXPECT_EQ(weekday_of(3), Weekday::Mon);
  EXPECT_TRUE(is_weekend(1));
  EXPECT_TRUE(is_weekend(2));
  EXPECT_FALSE(is_weekend(3));
  // 2022-01-15 was a Saturday (paper Table 2).
  EXPECT_EQ(weekday_of(day_index_of(2022, 1, 15)), Weekday::Sat);
}

TEST(SimTime, DayLabelsMatchCalendar) {
  EXPECT_EQ(day_label(0), "2021-01-01");
  EXPECT_EQ(day_label(364), "2021-12-31");
  EXPECT_EQ(day_label(365), "2022-01-01");
  EXPECT_EQ(day_label(day_index_of(2022, 10, 15)), "2022-10-15");
  // Feb 29, 2024 (leap year handling).
  EXPECT_EQ(day_label(day_index_of(2024, 2, 29)), "2024-02-29");
  EXPECT_EQ(day_label(day_index_of(2024, 3, 1)), "2024-03-01");
}

TEST(SimTime, DayIndexRoundTrips) {
  for (const std::int64_t day : {0, 100, 365, 653, 900}) {
    const std::string label = day_label(day);
    EXPECT_EQ(day_index_of(std::stoi(label.substr(0, 4)),
                           std::stoi(label.substr(5, 2)),
                           std::stoi(label.substr(8, 2))),
              day);
  }
}

// ----------------------------------------------------------------- FiveTuple

TEST(FiveTuple, EqualityAndHash) {
  const FiveTuple a{Ipv4Address(1), Ipv4Address(2), 10, 20, IpProto::Tcp};
  FiveTuple b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(FiveTupleHash{}(a), FiveTupleHash{}(b));
  b.dst_port = 21;
  EXPECT_NE(a, b);
}

TEST(FiveTuple, HashSpreadsOverBuckets) {
  std::unordered_set<std::size_t> hashes;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    const FiveTuple t{Ipv4Address(i), Ipv4Address(i + 1),
                      static_cast<std::uint16_t>(i), 80, IpProto::Tcp};
    hashes.insert(FiveTupleHash{}(t));
  }
  EXPECT_GT(hashes.size(), 990u);
}

TEST(FiveTuple, ProtoNames) {
  EXPECT_STREQ(to_string(IpProto::Tcp), "TCP");
  EXPECT_STREQ(to_string(IpProto::Udp), "UDP");
  EXPECT_STREQ(to_string(IpProto::Icmp), "ICMP");
}

// ------------------------------------------------------------------ FlatMap

// Randomized model check: the open-addressing table must agree with
// std::unordered_map under an arbitrary mix of inserts, erases, and
// lookups (exercising growth, backward-shift deletion, and clustering).
TEST(FlatMap, AgreesWithUnorderedMapModel) {
  FlatMap<std::uint32_t, std::uint64_t> table;
  std::unordered_map<std::uint32_t, std::uint64_t> model;
  Rng rng(99);
  for (int step = 0; step < 20000; ++step) {
    const std::uint32_t key = static_cast<std::uint32_t>(rng.bounded(512));
    const int op = static_cast<int>(rng.bounded(3));
    if (op == 0) {
      const auto [slot, inserted] = table.try_emplace(key, 0);
      const auto [it, model_inserted] = model.try_emplace(key, 0);
      EXPECT_EQ(inserted, model_inserted);
      *slot += step;
      it->second += step;
    } else if (op == 1) {
      EXPECT_EQ(table.erase(key), model.erase(key) > 0);
    } else {
      const std::uint64_t* found = table.find(key);
      const auto it = model.find(key);
      ASSERT_EQ(found != nullptr, it != model.end());
      if (found != nullptr) EXPECT_EQ(*found, it->second);
    }
    ASSERT_EQ(table.size(), model.size());
  }
  std::unordered_map<std::uint32_t, std::uint64_t> dumped;
  table.for_each([&](const std::uint32_t& k, const std::uint64_t& v) {
    dumped.emplace(k, v);
  });
  EXPECT_EQ(dumped, model);
}

TEST(FlatMap, EraseIfRemovesMatchingEntries) {
  FlatMap<std::uint32_t, std::uint32_t> table;
  for (std::uint32_t i = 0; i < 1000; ++i) *table.try_emplace(i, i).first = i;
  const std::size_t removed =
      table.erase_if([](const std::uint32_t&, const std::uint32_t& v) {
        return v % 3 == 0;
      });
  // erase_if may miss an entry that wraps into an already-visited slot in
  // one sweep; callers rely only on idempotence, so re-run to a fixpoint.
  std::size_t total = removed;
  while (true) {
    const std::size_t more =
        table.erase_if([](const std::uint32_t&, const std::uint32_t& v) {
          return v % 3 == 0;
        });
    if (more == 0) break;
    total += more;
  }
  EXPECT_EQ(total, 334u);
  EXPECT_EQ(table.size(), 666u);
  table.for_each([](const std::uint32_t&, const std::uint32_t& v) {
    EXPECT_NE(v % 3, 0u);
  });
}

TEST(FlatMap, ReserveKeepsContents) {
  FlatMap<std::uint32_t, std::uint32_t> table;
  for (std::uint32_t i = 0; i < 100; ++i) *table.try_emplace(i, 0).first = i;
  table.reserve(100000);
  EXPECT_EQ(table.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    const std::uint32_t* v = table.find(i);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i);
  }
}

// ----------------------------------------------------------------- shard_of

TEST(Shard, StableAndInRange) {
  const Ipv4Address a(0xC0000201u);
  const std::size_t first = shard_of(a, 7);
  EXPECT_LT(first, 7u);
  EXPECT_EQ(shard_of(a, 7), first);  // pure function of (src, count)
  EXPECT_EQ(shard_of(a, 1), 0u);
  EXPECT_EQ(shard_of(a, 0), 0u);
}

TEST(Shard, SpreadsSourcesRoughlyEvenly) {
  constexpr std::size_t kShards = 8;
  std::array<std::size_t, kShards> counts{};
  for (std::uint32_t i = 0; i < 80000; ++i) {
    // Adjacent addresses (the adversarial case for naive modulo).
    ++counts[shard_of(Ipv4Address(0x0A000000u + i), kShards)];
  }
  for (const std::size_t c : counts) {
    EXPECT_GT(c, 80000 / kShards / 2);
    EXPECT_LT(c, 80000 / kShards * 2);
  }
}

}  // namespace
}  // namespace orion::net
