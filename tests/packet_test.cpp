#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "orion/netbase/checksum.hpp"
#include "orion/packet/builder.hpp"
#include "orion/packet/fingerprint.hpp"
#include "orion/packet/headers.hpp"
#include "orion/packet/packet.hpp"
#include "orion/packet/pcap.hpp"

namespace orion::pkt {
namespace {

net::Ipv4Address ip(const char* text) { return *net::Ipv4Address::parse(text); }

Packet sample_syn() {
  Packet p;
  p.timestamp = net::SimTime::at(net::Duration::seconds(42));
  p.tuple = {ip("192.0.2.1"), ip("198.51.100.7"), 40000, 6379, net::IpProto::Tcp};
  p.tcp_flags = TcpFlags::kSyn;
  p.tcp_seq = 0xDEADBEEF;
  p.tcp_window = 1024;
  p.ip_id = 777;
  p.ttl = 61;
  p.wire_length = 40;
  return p;
}

// ------------------------------------------------------------------ headers

TEST(Ipv4Header, SerializeParseRoundTrip) {
  Ipv4Header h;
  h.total_length = 40;
  h.identification = 54321;
  h.ttl = 55;
  h.protocol = net::IpProto::Tcp;
  h.src = ip("10.0.0.1");
  h.dst = ip("10.0.0.2");
  std::vector<std::uint8_t> wire;
  h.serialize(wire);
  ASSERT_EQ(wire.size(), Ipv4Header::kSize);
  const auto parsed = Ipv4Header::parse(wire);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->identification, 54321);
  EXPECT_EQ(parsed->ttl, 55);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_EQ(parsed->total_length, 40);
}

TEST(Ipv4Header, ParseRejectsCorruptedChecksum) {
  Ipv4Header h;
  h.src = ip("10.0.0.1");
  h.dst = ip("10.0.0.2");
  std::vector<std::uint8_t> wire;
  h.serialize(wire);
  wire[8] ^= 0xFF;  // corrupt TTL without fixing checksum
  EXPECT_FALSE(Ipv4Header::parse(wire));
}

TEST(Ipv4Header, ParseRejectsTruncatedAndWrongVersion) {
  std::vector<std::uint8_t> tiny(10, 0);
  EXPECT_FALSE(Ipv4Header::parse(tiny));
  Ipv4Header h;
  std::vector<std::uint8_t> wire;
  h.serialize(wire);
  wire[0] = 0x65;  // version 6
  EXPECT_FALSE(Ipv4Header::parse(wire));
}

TEST(TcpHeader, ChecksumCoversPseudoHeader) {
  const Packet p = sample_syn();
  const auto wire = p.serialize();
  // Validate the TCP checksum by recomputing over pseudo-header + segment.
  net::InternetChecksum sum;
  sum.add_word(static_cast<std::uint16_t>(p.tuple.src.value() >> 16));
  sum.add_word(static_cast<std::uint16_t>(p.tuple.src.value()));
  sum.add_word(static_cast<std::uint16_t>(p.tuple.dst.value() >> 16));
  sum.add_word(static_cast<std::uint16_t>(p.tuple.dst.value()));
  sum.add_word(6);
  sum.add_word(20);
  sum.add_bytes({wire.data() + 20, 20});
  EXPECT_EQ(sum.finalize(), 0);
}

TEST(UdpHeader, SerializeParseRoundTrip) {
  Packet p = sample_syn();
  p.tuple.proto = net::IpProto::Udp;
  p.wire_length = 36;  // 8 bytes payload
  const auto wire = p.serialize();
  const auto parsed = Packet::parse(p.timestamp, wire);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->tuple, p.tuple);
  EXPECT_EQ(parsed->wire_length, 36);
}

TEST(IcmpHeader, SerializeParseRoundTrip) {
  Packet p = sample_syn();
  p.tuple.proto = net::IpProto::Icmp;
  p.tuple.dst_port = 0;
  p.icmp_type = IcmpHeader::kEchoRequest;
  p.wire_length = 28;
  const auto wire = p.serialize();
  const auto parsed = Packet::parse(p.timestamp, wire);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->icmp_type, IcmpHeader::kEchoRequest);
  EXPECT_EQ(parsed->traffic_type(), TrafficType::IcmpEchoReq);
}

// ----------------------------------------------------------- classification

TEST(Packet, TrafficTypeClassification) {
  Packet p = sample_syn();
  EXPECT_EQ(p.traffic_type(), TrafficType::TcpSyn);
  EXPECT_TRUE(p.is_scanning_packet());

  p.tcp_flags = TcpFlags::kSyn | TcpFlags::kAck;  // backscatter
  EXPECT_EQ(p.traffic_type(), TrafficType::Other);
  EXPECT_FALSE(p.is_scanning_packet());

  p.tcp_flags = TcpFlags::kRst;
  EXPECT_EQ(p.traffic_type(), TrafficType::Other);

  p.tuple.proto = net::IpProto::Udp;
  EXPECT_EQ(p.traffic_type(), TrafficType::Udp);

  p.tuple.proto = net::IpProto::Icmp;
  p.icmp_type = IcmpHeader::kEchoRequest;
  EXPECT_EQ(p.traffic_type(), TrafficType::IcmpEchoReq);
  p.icmp_type = IcmpHeader::kEchoReply;
  EXPECT_EQ(p.traffic_type(), TrafficType::Other);
}

TEST(Packet, FullSerializeParseRoundTrip) {
  const Packet p = sample_syn();
  const auto wire = p.serialize();
  ASSERT_EQ(wire.size(), 40u);
  const auto parsed = Packet::parse(p.timestamp, wire);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->tuple, p.tuple);
  EXPECT_EQ(parsed->ip_id, p.ip_id);
  EXPECT_EQ(parsed->tcp_seq, p.tcp_seq);
  EXPECT_EQ(parsed->tcp_flags, p.tcp_flags);
  EXPECT_EQ(parsed->ttl, p.ttl);
}

// -------------------------------------------------------------- fingerprints

class FingerprintRoundTrip : public testing::TestWithParam<ScanTool> {};

TEST_P(FingerprintRoundTrip, ApplyThenClassify) {
  Packet p = sample_syn();
  apply_fingerprint(p, GetParam());
  EXPECT_EQ(fingerprint_of(p), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllTools, FingerprintRoundTrip,
                         testing::Values(ScanTool::ZMap, ScanTool::Masscan,
                                         ScanTool::Mirai, ScanTool::Other),
                         [](const auto& info) { return to_string(info.param); });

TEST(Fingerprint, ZmapUsesFixedIpId) {
  Packet p = sample_syn();
  apply_fingerprint(p, ScanTool::ZMap);
  EXPECT_EQ(p.ip_id, 54321);
}

TEST(Fingerprint, MiraiSeqEqualsDestination) {
  Packet p = sample_syn();
  apply_fingerprint(p, ScanTool::Mirai);
  EXPECT_EQ(p.tcp_seq, p.tuple.dst.value());
}

TEST(Fingerprint, MasscanIpIdRelation) {
  Packet p = sample_syn();
  apply_fingerprint(p, ScanTool::Masscan);
  EXPECT_EQ(p.ip_id, masscan_ip_id(p.tuple.dst, p.tuple.dst_port, p.tcp_seq));
}

TEST(Fingerprint, SurvivesWireRoundTrip) {
  for (const ScanTool tool : {ScanTool::ZMap, ScanTool::Masscan, ScanTool::Mirai}) {
    Packet p = sample_syn();
    apply_fingerprint(p, tool);
    const auto parsed = Packet::parse(p.timestamp, p.serialize());
    ASSERT_TRUE(parsed);
    EXPECT_EQ(fingerprint_of(*parsed), tool) << to_string(tool);
  }
}

// -------------------------------------------------------------------- builder

TEST(ProbeBuilder, BuildsClassifiableProbes) {
  ProbeBuilder builder(ip("203.0.113.9"), ScanTool::ZMap, net::Rng(3));
  const net::SimTime now = net::SimTime::at(net::Duration::seconds(1));

  const Packet syn = builder.tcp_syn(now, ip("198.18.0.1"), 23);
  EXPECT_EQ(syn.traffic_type(), TrafficType::TcpSyn);
  EXPECT_EQ(syn.tuple.dst_port, 23);
  EXPECT_EQ(fingerprint_of(syn), ScanTool::ZMap);
  EXPECT_GE(syn.tuple.src_port, 32768);

  const Packet udp = builder.udp_probe(now, ip("198.18.0.2"), 5060);
  EXPECT_EQ(udp.traffic_type(), TrafficType::Udp);

  const Packet icmp = builder.icmp_echo(now, ip("198.18.0.3"));
  EXPECT_EQ(icmp.traffic_type(), TrafficType::IcmpEchoReq);
}

TEST(ProbeBuilder, ProbeDispatchesOnTrafficType) {
  ProbeBuilder builder(ip("203.0.113.9"), ScanTool::Other, net::Rng(4));
  const net::SimTime now = net::SimTime::epoch();
  EXPECT_EQ(builder.probe(now, ip("1.2.3.4"), 80, TrafficType::TcpSyn).traffic_type(),
            TrafficType::TcpSyn);
  EXPECT_EQ(builder.probe(now, ip("1.2.3.4"), 53, TrafficType::Udp).traffic_type(),
            TrafficType::Udp);
  EXPECT_EQ(
      builder.probe(now, ip("1.2.3.4"), 0, TrafficType::IcmpEchoReq).traffic_type(),
      TrafficType::IcmpEchoReq);
}

// ----------------------------------------------------------------------- pcap

class PcapTest : public testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       ("orion_pcap_test_" + std::to_string(::getpid()) + ".pcap"))
                          .string();
  void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(PcapTest, WriteReadRoundTrip) {
  ProbeBuilder builder(ip("203.0.113.9"), ScanTool::Masscan, net::Rng(5));
  std::vector<Packet> originals;
  {
    PcapWriter writer(path_);
    for (int i = 0; i < 50; ++i) {
      const net::SimTime t = net::SimTime::at(net::Duration::millis(i * 10));
      Packet p = builder.tcp_syn(t, ip("198.18.0.1"), static_cast<std::uint16_t>(i));
      writer.write(p);
      originals.push_back(p);
    }
    EXPECT_EQ(writer.packets_written(), 50u);
  }
  PcapReader reader(path_);
  for (const Packet& original : originals) {
    const auto read = reader.next();
    ASSERT_TRUE(read);
    EXPECT_EQ(read->tuple, original.tuple);
    EXPECT_EQ(read->ip_id, original.ip_id);
    // pcap stores microseconds; timestamps agree at that granularity.
    EXPECT_EQ(read->timestamp.since_epoch().total_nanos() / 1000,
              original.timestamp.since_epoch().total_nanos() / 1000);
  }
  EXPECT_FALSE(reader.next());
  EXPECT_EQ(reader.packets_read(), 50u);
  EXPECT_EQ(reader.skipped(), 0u);
}

TEST_F(PcapTest, SkipsMalformedRecords) {
  {
    PcapWriter writer(path_);
    const std::vector<std::uint8_t> garbage(30, 0xAB);
    writer.write_raw(net::SimTime::epoch(), garbage);
    ProbeBuilder builder(ip("1.1.1.1"), ScanTool::Other, net::Rng(6));
    writer.write(builder.tcp_syn(net::SimTime::epoch(), ip("2.2.2.2"), 80));
  }
  PcapReader reader(path_);
  const auto p = reader.next();
  ASSERT_TRUE(p);
  EXPECT_EQ(p->tuple.dst, ip("2.2.2.2"));
  EXPECT_EQ(reader.skipped(), 1u);
}

TEST_F(PcapTest, RejectsNonPcapFile) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "this is not a pcap file at all, definitely not";
  }
  EXPECT_THROW(PcapReader reader(path_), std::runtime_error);
}

TEST(Pcap, MissingFileThrows) {
  EXPECT_THROW(PcapReader reader("/nonexistent/nope.pcap"), std::runtime_error);
}

}  // namespace
}  // namespace orion::pkt

// NOTE: appended suite — wire-format edge cases.
namespace orion::pkt {
namespace {

TEST(Packet, PayloadPaddingReachesWireLength) {
  Packet p = sample_syn();
  p.wire_length = 120;  // 80 bytes of payload
  const auto wire = p.serialize();
  EXPECT_EQ(wire.size(), 120u);
  const auto parsed = Packet::parse(p.timestamp, wire);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->wire_length, 120u);
  EXPECT_EQ(parsed->tuple, p.tuple);
}

TEST(Packet, ParseRejectsTruncatedTotalLength) {
  const Packet p = sample_syn();
  auto wire = p.serialize();
  wire.resize(wire.size() - 5);  // body shorter than IP total_length
  EXPECT_FALSE(Packet::parse(p.timestamp, wire));
}

TEST(UdpHeader, ZeroChecksumBecomesAllOnes) {
  // Craft a UDP packet whose checksum would fold to zero; RFC 768 requires
  // transmitting 0xFFFF instead. Construct and verify the emitted checksum
  // field is never 0.
  for (std::uint32_t i = 0; i < 200; ++i) {
    Packet p = sample_syn();
    p.tuple.proto = net::IpProto::Udp;
    p.tuple.src = net::Ipv4Address(i * 7919);
    p.wire_length = 28;
    const auto wire = p.serialize();
    const std::uint16_t checksum =
        static_cast<std::uint16_t>((wire[20 + 6] << 8) | wire[20 + 7]);
    EXPECT_NE(checksum, 0);
  }
}

TEST(Fingerprint, OtherNeverCollidesWithToolArtifacts) {
  net::Rng rng(77);
  ProbeBuilder builder(ip("198.51.100.77"), ScanTool::Other, net::Rng(9));
  for (int i = 0; i < 2000; ++i) {
    const Packet p = builder.tcp_syn(
        net::SimTime::epoch(),
        net::Ipv4Address(static_cast<std::uint32_t>(rng.next())),
        static_cast<std::uint16_t>(rng.bounded(65536)));
    EXPECT_EQ(fingerprint_of(p), ScanTool::Other);
  }
}

}  // namespace
}  // namespace orion::pkt
