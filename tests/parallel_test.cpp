// Determinism properties of the sharded parallel pipeline: for ANY shard
// count and ANY batch/ring interleaving, ParallelPipeline must produce
// results byte-identical to the serial TelescopeCapture +
// StreamingDetector path — events, daily AH lists, cumulative AH sets,
// and the health ledger. Also covers crash/checkpoint/resume mid-run,
// config-echo rejection, the SPSC ring under real concurrency, and
// sharded scangen generation. Runs under the `parallel` ctest label and
// the tsan preset.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <sstream>
#include <thread>
#include <tuple>
#include <vector>

#include "orion/detect/streaming.hpp"
#include "orion/netbase/shard.hpp"
#include "orion/scangen/packet_gen.hpp"
#include "orion/scangen/scenario.hpp"
#include "orion/telescope/capture.hpp"
#include "orion/telescope/checkpoint.hpp"
#include "orion/telescope/parallel.hpp"
#include "orion/telescope/spsc_ring.hpp"

namespace orion::telescope {
namespace {

const scangen::Scenario& scenario() {
  static const scangen::Scenario s{scangen::tiny()};
  return s;
}

std::vector<pkt::Packet> packet_stream(std::int64_t days) {
  scangen::PacketStreamGenerator generator(
      scenario().population_2021().scanners, scenario().darknet(),
      net::SimTime::epoch(), net::SimTime::epoch() + net::Duration::days(days),
      {.seed = 17, .exact_targets = true, .stable_streams = true});
  std::vector<pkt::Packet> packets;
  while (auto p = generator.next()) packets.push_back(*p);
  return packets;
}

detect::StreamingConfig detector_config() {
  detect::StreamingConfig config;
  config.base = {.dispersion_threshold = scenario().config().def1_dispersion,
                 .packet_volume_alpha = scenario().config().def2_alpha,
                 .port_count_alpha = scenario().config().def3_alpha};
  config.warmup_samples = 500;
  return config;
}

AggregatorConfig aggregator_config() {
  AggregatorConfig config;
  config.timeout = scenario().event_timeout();
  return config;
}

struct SerialResult {
  std::vector<DarknetEvent> events;
  std::vector<detect::StreamingDayResult> days;
  std::array<detect::IpSet, 3> ips;
  std::uint64_t packets = 0;
};

const SerialResult& serial_reference(const std::vector<pkt::Packet>& packets) {
  static SerialResult result = [&] {
    SerialResult r;
    TelescopeCapture capture(scenario().darknet(), aggregator_config());
    for (const pkt::Packet& p : packets) capture.observe(p);
    const EventDataset dataset = capture.finish();
    r.events = dataset.events();
    detect::StreamingDetector detector(
        detector_config(), scenario().darknet().total_addresses());
    for (const DarknetEvent& e : dataset.events()) {
      for (auto& day : detector.observe(e)) r.days.push_back(std::move(day));
    }
    if (auto last = detector.finish()) r.days.push_back(std::move(*last));
    for (int d = 0; d < 3; ++d) {
      r.ips[static_cast<std::size_t>(d)] =
          detector.ips(static_cast<detect::Definition>(d));
    }
    r.packets = capture.packets_captured();
    return r;
  }();
  return result;
}

ParallelConfig parallel_config(std::size_t shards, std::size_t batch,
                               std::size_t ring) {
  ParallelConfig config;
  config.shards = shards;
  config.batch_size = batch;
  config.ring_capacity = ring;
  config.aggregator = aggregator_config();
  config.detector = detector_config();
  return config;
}

void expect_matches_serial(const ParallelResult& result,
                           const SerialResult& serial) {
  EXPECT_EQ(result.dataset.events(), serial.events);
  ASSERT_EQ(result.days.size(), serial.days.size());
  for (std::size_t i = 0; i < serial.days.size(); ++i) {
    EXPECT_EQ(result.days[i], serial.days[i]) << "day index " << i;
  }
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(result.ips[static_cast<std::size_t>(d)],
              serial.ips[static_cast<std::size_t>(d)])
        << "definition " << d;
  }
  EXPECT_EQ(result.health.ingested, serial.packets);
  EXPECT_EQ(result.health.delivered, serial.packets);
  EXPECT_EQ(result.health.dropped(), 0u);
  EXPECT_TRUE(result.health.consistent());
}

// The tentpole property: byte-identical results at every shard count.
TEST(ParallelPipeline, ShardCountInvariance) {
  const auto packets = packet_stream(5);
  const SerialResult& serial = serial_reference(packets);
  ASSERT_FALSE(serial.events.empty());
  ASSERT_FALSE(serial.days.empty());

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}, std::size_t{7}}) {
    ParallelPipeline pipeline(scenario().darknet(),
                              parallel_config(shards, 256, 64));
    for (const pkt::Packet& p : packets) pipeline.observe(p);
    expect_matches_serial(pipeline.finish(), serial);
  }
}

// Batch size and ring capacity shape the interleaving the workers see
// (single-packet batches maximize alternation; tiny rings force constant
// backpressure). None of it may leak into results.
TEST(ParallelPipeline, InterleavingInvariance) {
  const auto packets = packet_stream(5);
  const SerialResult& serial = serial_reference(packets);

  const std::pair<std::size_t, std::size_t> shapes[] = {
      {1, 1}, {7, 2}, {1024, 64}};
  for (const auto& [batch, ring] : shapes) {
    ParallelPipeline pipeline(scenario().darknet(),
                              parallel_config(3, batch, ring));
    for (const pkt::Packet& p : packets) pipeline.observe(p);
    expect_matches_serial(pipeline.finish(), serial);
  }
}

// Crash mid-run, restore into a fresh process, finish: byte-identical to
// both an uninterrupted parallel run and the serial path.
TEST(ParallelPipeline, CheckpointResumeMidRunMatchesSerial) {
  const auto packets = packet_stream(5);
  const SerialResult& serial = serial_reference(packets);
  const std::size_t cut = packets.size() / 2;

  std::stringstream snapshot;
  {
    ParallelPipeline pipeline(scenario().darknet(),
                              parallel_config(4, 64, 8));
    for (std::size_t i = 0; i < cut; ++i) pipeline.observe(packets[i]);
    CheckpointWriter writer;
    pipeline.checkpoint(writer);
    writer.finish(snapshot);
    // The "crashed" pipeline is destroyed here with work in flight
    // discarded — the snapshot is all that survives.
  }

  ParallelPipeline resumed(scenario().darknet(), parallel_config(4, 64, 8));
  CheckpointReader reader(snapshot);
  resumed.restore(reader);
  EXPECT_EQ(resumed.packets_ingested(), cut);
  for (std::size_t i = cut; i < packets.size(); ++i) {
    resumed.observe(packets[i]);
  }
  expect_matches_serial(resumed.finish(), serial);
}

// PPL2 appended the supervision/escalation ledger (dropped_shed, stalls,
// worker_restarts) to the pipeline header. A PPL1 checkpoint — written
// by the version that predates those fields and by construction never
// shed, stalled, or restarted a worker — must still restore with a zero
// ledger instead of misparsing the first shard's data as counters.
TEST(ParallelPipeline, RestoreAcceptsLegacyPpl1Checkpoint) {
  const auto packets = packet_stream(5);
  const SerialResult& serial = serial_reference(packets);
  const std::size_t cut = packets.size() / 2;

  std::stringstream snapshot;
  {
    ParallelPipeline pipeline(scenario().darknet(), parallel_config(4, 64, 8));
    for (std::size_t i = 0; i < cut; ++i) pipeline.observe(packets[i]);
    CheckpointWriter writer;
    pipeline.checkpoint(writer);
    writer.finish(snapshot);
  }

  // Rewrite the container into the exact PPL1 wire layout: the old tag
  // and no ledger u64s between `ingested` and the first shard section.
  const std::string frame = snapshot.str();
  auto frame_u64 = [&](std::size_t off) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= std::uint64_t{static_cast<std::uint8_t>(frame[off + i])} << (8 * i);
    }
    return v;
  };
  // OCP1 frame: magic(4) version(8) length(8) payload crc(4).
  const std::size_t payload_len = static_cast<std::size_t>(frame_u64(12));
  ASSERT_EQ(frame.size(), 20 + payload_len + 4);
  std::vector<std::uint8_t> payload(frame.begin() + 20,
                                    frame.begin() + 20 +
                                        static_cast<std::ptrdiff_t>(payload_len));
  ASSERT_EQ(frame_u64(20), checkpoint_tag('P', 'P', 'L', '2'));
  const std::uint64_t v1 = checkpoint_tag('P', 'P', 'L', '1');
  for (std::size_t i = 0; i < 8; ++i) {
    payload[i] = static_cast<std::uint8_t>(v1 >> (8 * i));
  }
  // Header: tag(8) shards(8) darknet(8) saw(1) last_ts(8) ingested(8),
  // then the three ledger u64s PPL1 never had.
  const std::ptrdiff_t ledger_off = 8 + 8 + 8 + 1 + 8 + 8;
  ASSERT_GE(payload.size(), static_cast<std::size_t>(ledger_off) + 24);
  payload.erase(payload.begin() + ledger_off,
                payload.begin() + ledger_off + 24);
  std::stringstream legacy;
  CheckpointWriter reframe;
  reframe.bytes(payload);
  reframe.finish(legacy);

  ParallelPipeline resumed(scenario().darknet(), parallel_config(4, 64, 8));
  CheckpointReader reader(legacy);
  resumed.restore(reader);
  EXPECT_EQ(resumed.packets_ingested(), cut);
  for (std::size_t i = cut; i < packets.size(); ++i) {
    resumed.observe(packets[i]);
  }
  expect_matches_serial(resumed.finish(), serial);
}

TEST(ParallelPipeline, RestoreRejectsMismatchedShardCount) {
  const auto packets = packet_stream(2);
  std::stringstream snapshot;
  {
    ParallelPipeline pipeline(scenario().darknet(), parallel_config(4, 64, 8));
    for (const pkt::Packet& p : packets) pipeline.observe(p);
    CheckpointWriter writer;
    pipeline.checkpoint(writer);
    writer.finish(snapshot);
  }
  ParallelPipeline other(scenario().darknet(), parallel_config(2, 64, 8));
  CheckpointReader reader(snapshot);
  EXPECT_THROW(other.restore(reader), std::runtime_error);
}

TEST(ParallelPipeline, RestoreRejectsMismatchedDetectorConfig) {
  std::stringstream snapshot;
  {
    ParallelPipeline pipeline(scenario().darknet(), parallel_config(2, 64, 8));
    CheckpointWriter writer;
    pipeline.checkpoint(writer);
    writer.finish(snapshot);
  }
  ParallelConfig tweaked = parallel_config(2, 64, 8);
  tweaked.detector.warmup_samples += 1;
  ParallelPipeline other(scenario().darknet(), tweaked);
  CheckpointReader reader(snapshot);
  EXPECT_THROW(other.restore(reader), std::runtime_error);
}

TEST(ParallelPipeline, ObserveRejectsTimestampRegression) {
  const auto packets = packet_stream(1);
  ASSERT_GT(packets.size(), 2u);
  ParallelPipeline pipeline(scenario().darknet(), parallel_config(2, 64, 8));
  pipeline.observe(packets[1]);
  EXPECT_THROW(pipeline.observe(packets[0]), std::invalid_argument);
}

// ------------------------------------------------------------- SpscRing

// Cross-thread FIFO integrity under real concurrency (and, under the
// tsan preset, a data-race check of the release/acquire protocol).
TEST(SpscRing, TwoThreadStressPreservesFifoOrder) {
  constexpr std::uint64_t kCount = 200000;
  SpscRing<std::uint64_t> ring(16);
  std::atomic<bool> failed{false};

  std::thread consumer([&] {
    std::uint64_t expected = 0;
    std::uint64_t value = 0;
    unsigned spins = 0;
    while (expected < kCount) {
      if (!ring.try_pop(value)) {
        spsc_backoff(spins);
        continue;
      }
      spins = 0;
      if (value != expected) {
        failed.store(true);
        return;
      }
      ++expected;
    }
  });

  for (std::uint64_t i = 0; i < kCount; ++i) {
    std::uint64_t value = i;
    unsigned spins = 0;
    while (!ring.try_push(value)) spsc_backoff(spins);
  }
  consumer.join();
  EXPECT_FALSE(failed.load());
}

// ------------------------------------------------- sharded generation

// With stable_streams, generating each shard's scanners separately and
// pooling the packets reproduces exactly the full population's packets
// (as a multiset — the k-way merge breaks simultaneous-arrival ties by
// internal stream index, which filtering renumbers).
TEST(ShardedScangen, ShardUnionEqualsFullStream) {
  using Key = std::tuple<std::int64_t, std::uint32_t, std::uint32_t,
                         std::uint16_t, std::uint16_t>;
  const auto key_of = [](const pkt::Packet& p) {
    return Key{p.timestamp.since_epoch().total_nanos(), p.tuple.src.value(),
               p.tuple.dst.value(), p.tuple.src_port, p.tuple.dst_port};
  };

  scangen::PacketGenConfig base{.seed = 17, .exact_targets = true,
                                .stable_streams = true};
  const net::SimTime t0 = net::SimTime::epoch();
  const net::SimTime t1 = t0 + net::Duration::days(2);

  std::vector<Key> full;
  {
    scangen::PacketStreamGenerator generator(
        scenario().population_2021().scanners, scenario().darknet(), t0, t1,
        base);
    while (auto p = generator.next()) full.push_back(key_of(*p));
  }
  ASSERT_FALSE(full.empty());

  constexpr std::size_t kShards = 3;
  std::vector<Key> pooled;
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    scangen::PacketGenConfig config = base;
    config.shard = shard;
    config.shard_count = kShards;
    scangen::PacketStreamGenerator generator(
        scenario().population_2021().scanners, scenario().darknet(), t0, t1,
        config);
    while (auto p = generator.next()) {
      EXPECT_EQ(net::shard_of(p->tuple.src, kShards), shard);
      pooled.push_back(key_of(*p));
    }
  }

  std::sort(full.begin(), full.end());
  std::sort(pooled.begin(), pooled.end());
  EXPECT_EQ(pooled, full);
}

TEST(ShardedScangen, ShardingRequiresStableStreams) {
  EXPECT_THROW(
      scangen::PacketStreamGenerator(
          scenario().population_2021().scanners, scenario().darknet(),
          net::SimTime::epoch(),
          net::SimTime::epoch() + net::Duration::days(1),
          {.seed = 17, .stable_streams = false, .shard = 0, .shard_count = 2}),
      std::invalid_argument);
}

}  // namespace
}  // namespace orion::telescope
