// Randomized cross-module property tests: conservation laws and
// agreement between independent implementations, swept over seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <map>
#include <unordered_set>

#include "orion/detect/streaming.hpp"
#include "orion/flowsim/flows.hpp"
#include "orion/scangen/event_synth.hpp"
#include "orion/scangen/packet_gen.hpp"
#include "orion/scangen/scenario.hpp"
#include "orion/telescope/aggregator.hpp"
#include "orion/telescope/store.hpp"

namespace orion {
namespace {

class SeedSweep : public testing::TestWithParam<std::uint64_t> {};

// --- PrefixSet vs naive linear scan ------------------------------------------

TEST_P(SeedSweep, PrefixSetAgreesWithLinearScan) {
  net::Rng rng(GetParam());
  std::vector<net::Prefix> prefixes;
  net::PrefixSet set;
  // Random disjoint prefixes: carve /16s of distinct first octets.
  for (int i = 0; i < 12; ++i) {
    const auto octet = static_cast<std::uint8_t>(30 + i * 3 + rng.bounded(2));
    const int length = 14 + static_cast<int>(rng.bounded(7));
    const net::Prefix p(net::Ipv4Address::from_octets(octet, 0, 0, 0), length);
    if (std::any_of(prefixes.begin(), prefixes.end(), [&](const net::Prefix& q) {
          return q.contains(p) || p.contains(q);
        })) {
      continue;
    }
    prefixes.push_back(p);
    set.add(p);
  }
  for (int trial = 0; trial < 3000; ++trial) {
    const net::Ipv4Address a(static_cast<std::uint32_t>(rng.next()));
    const bool naive = std::any_of(prefixes.begin(), prefixes.end(),
                                   [&](const net::Prefix& p) { return p.contains(a); });
    ASSERT_EQ(set.contains(a), naive) << a.to_string();
  }
}

// --- packet path vs analytic path over random sessions ------------------------

TEST_P(SeedSweep, AggregatorMatchesSynthOnRandomSession) {
  net::Rng rng(GetParam() ^ 0xABCDull);
  const std::uint64_t darknet_size = 1024;
  net::PrefixSet space({*net::Prefix::parse("198.18.0.0/22")});

  scangen::ScannerProfile scanner;
  scanner.source = net::Ipv4Address(0x0B000000u + static_cast<std::uint32_t>(rng.next() & 0xFFFF));
  scanner.tool = static_cast<pkt::ScanTool>(rng.bounded(3));
  scanner.rng_stream = rng.next();
  scangen::SessionSpec session;
  session.start = net::SimTime::at(net::Duration::minutes(
      static_cast<std::int64_t>(rng.bounded(600))));
  session.duration =
      net::Duration::minutes(30 + static_cast<std::int64_t>(rng.bounded(180)));
  session.coverage = 0.05 + rng.uniform() * 0.95;
  session.repeats = 1 + static_cast<int>(rng.bounded(3));
  session.ports = {{static_cast<std::uint16_t>(1 + rng.bounded(65000)),
                    pkt::TrafficType::TcpSyn}};
  scanner.sessions.push_back(session);

  telescope::EventCollector collector;
  telescope::AggregatorConfig config;
  config.timeout = net::Duration::hours(2);
  telescope::EventAggregator agg(space, config, collector.sink());
  scangen::PacketStreamGenerator gen({scanner}, space, net::SimTime::epoch(),
                                     session.end() + net::Duration::hours(1),
                                     {.seed = GetParam(), .exact_targets = true});
  while (auto p = gen.next()) agg.observe(*p);
  agg.finish();

  ASSERT_EQ(collector.events().size(), 1u);
  const telescope::DarknetEvent& event = collector.events()[0];
  // Conservation: packets == repeats * uniques, uniques within 5 sigma of
  // Binomial(darknet, coverage), key preserved.
  EXPECT_EQ(event.packets,
            event.unique_dests * static_cast<std::uint64_t>(session.repeats));
  const double mean = session.coverage * static_cast<double>(darknet_size);
  const double sigma =
      std::sqrt(mean * (1.0 - session.coverage)) + 1.0;
  EXPECT_NEAR(static_cast<double>(event.unique_dests), mean, 5 * sigma);
  EXPECT_EQ(event.key.src, scanner.source);
  EXPECT_EQ(event.key.dst_port, session.ports[0].port);
  EXPECT_GE(event.start, session.start);
  EXPECT_LE(event.end, session.end());
}

// --- flow conservation ----------------------------------------------------------

TEST_P(SeedSweep, FlowTotalsConserveSessionArrivals) {
  // One scanner fully inside the flow window: the sum of scanner packets
  // across routers and days must be binomially consistent with the
  // session model, and sampled estimates must track ground truth.
  net::Rng rng(GetParam() ^ 0x99ull);
  scangen::Population population;
  scangen::ScannerProfile scanner;
  scanner.source = net::Ipv4Address(0x0B000000u + static_cast<std::uint32_t>(GetParam()));
  scanner.rng_stream = 5;
  scangen::SessionSpec session;
  session.start = net::SimTime::at(net::Duration::days(2) + net::Duration::hours(3));
  session.duration = net::Duration::hours(30);
  session.coverage = 0.2 + rng.uniform() * 0.8;
  session.ports = {{23, pkt::TrafficType::TcpSyn}};
  scanner.sessions.push_back(session);
  population.scanners.push_back(scanner);

  const scangen::Scenario scenario{scangen::tiny()};
  flowsim::FlowSimConfig config;
  config.isp_space = scenario.merit();
  config.start_day = 1;
  config.end_day = 6;
  config.sampling_rate = 10;
  config.seed = GetParam();
  config.user.base_pps = 100;
  const auto flows = generate_flows(population, scenario.registry(),
                                    flowsim::PeeringPolicy::merit_like(), config);

  std::uint64_t truth = 0, sampled = 0;
  for (std::size_t router = 0; router < flowsim::kRouterCount; ++router) {
    for (std::int64_t day = 1; day < 6; ++day) {
      const auto& rd = flows.at(router, day);
      truth += rd.scanner_packets;
      for (const auto& [key, count] : rd.sampled) {
        EXPECT_EQ(key.src, scanner.source);
        sampled += count;
      }
    }
  }
  const double expected =
      session.coverage * static_cast<double>(scenario.merit().total_addresses());
  EXPECT_NEAR(static_cast<double>(truth), expected, 5 * std::sqrt(expected) + 10);
  EXPECT_NEAR(static_cast<double>(sampled) * config.sampling_rate,
              static_cast<double>(truth),
              5.0 * config.sampling_rate * std::sqrt(static_cast<double>(sampled) + 1));
}

// --- event store round-trip on synthesized data ----------------------------------

TEST_P(SeedSweep, EventStoreRoundTripsSynthesizedDatasets) {
  const scangen::Scenario scenario{scangen::tiny()};
  const telescope::EventDataset original(
      scangen::synthesize_events(
          scenario.population_2021(),
          {.darknet_size = scenario.darknet().total_addresses(),
           .seed = GetParam()}),
      scenario.darknet().total_addresses());
  std::stringstream stream;
  telescope::write_events_binary(original, stream);
  const telescope::EventDataset restored = telescope::read_events_binary(stream);
  ASSERT_EQ(restored.event_count(), original.event_count());
  EXPECT_EQ(restored.total_packets(), original.total_packets());
  EXPECT_EQ(restored.unique_sources(), original.unique_sources());
}

// --- streaming vs batch daily lists -----------------------------------------------

TEST_P(SeedSweep, StreamingDailyD1ListsMatchBatch) {
  const scangen::Scenario scenario{scangen::tiny()};
  const telescope::EventDataset dataset(
      scangen::synthesize_events(
          scenario.population_2021(),
          {.darknet_size = scenario.darknet().total_addresses(),
           .seed = GetParam() ^ 0x777ull}),
      scenario.darknet().total_addresses());
  const detect::DetectorConfig config{
      .dispersion_threshold = 0.10,
      .packet_volume_alpha = scenario.config().def2_alpha,
      .port_count_alpha = scenario.config().def3_alpha};
  const detect::DetectionResult batch =
      detect::AggressiveScannerDetector(config).detect(dataset);

  detect::StreamingDetector streaming({.base = config, .warmup_samples = 0},
                                      scenario.darknet().total_addresses());
  std::map<std::int64_t, std::vector<net::Ipv4Address>> daily;
  const auto record = [&](const detect::StreamingDayResult& day) {
    daily[day.day] = day.daily[0];
  };
  for (const auto& e : dataset.events()) {
    for (const auto& day : streaming.observe(e)) record(day);
  }
  if (const auto last = streaming.finish()) record(*last);

  // Definition 1 is threshold-free: per-day lists must match exactly.
  const auto& d1 = batch.of(detect::Definition::AddressDispersion);
  for (std::size_t i = 0; i < d1.daily.size(); ++i) {
    const std::int64_t day = batch.first_day + static_cast<std::int64_t>(i);
    const auto it = daily.find(day);
    const std::vector<net::Ipv4Address> streamed =
        it == daily.end() ? std::vector<net::Ipv4Address>{} : it->second;
    EXPECT_EQ(streamed, d1.daily[i]) << "day " << day;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace orion
