#include <gtest/gtest.h>

#include <sstream>

#include "orion/report/table.hpp"

namespace orion::report {
namespace {

TEST(Table, AsciiLayout) {
  Table table({"Name", "Count"});
  table.add_row({"alpha", "1"}).add_row({"long-name-entry", "12345"});
  const std::string ascii = table.to_ascii();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(ascii.begin(), ascii.end(), '\n'), 4);
  EXPECT_NE(ascii.find("Name"), std::string::npos);
  EXPECT_NE(ascii.find("long-name-entry"), std::string::npos);
  // Columns align: "Count" header starts at the same offset as "1".
  const std::size_t header_offset = ascii.find("Count");
  const std::size_t row_line = ascii.find("alpha");
  EXPECT_EQ(ascii[row_line + (header_offset - ascii.find("Name"))], '1');
}

TEST(Table, MarkdownLayout) {
  Table table({"A", "B"});
  table.add_row({"x", "y"});
  const std::string md = table.to_markdown();
  EXPECT_NE(md.find("| A | B |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| x | y |"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table table({"A", "B"});
  table.add_row({"plain", "with,comma"});
  table.add_row({"with\"quote", "with\nnewline"});
  std::stringstream out;
  table.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table table({"A", "B"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(Format, Counts) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
}

TEST(Format, DoublesAndPercents) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.0, 0), "3");
  EXPECT_EQ(fmt_percent(0.0582), "5.82%");
  EXPECT_EQ(fmt_count_percent(15200000000ull, 5.82), "15,200,000,000 (5.82%)");
}

}  // namespace
}  // namespace orion::report
