#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "orion/scangen/arrivals.hpp"
#include "orion/scangen/event_synth.hpp"
#include "orion/scangen/packet_gen.hpp"
#include "orion/scangen/population.hpp"
#include "orion/scangen/ports.hpp"
#include "orion/scangen/scenario.hpp"
#include "orion/scangen/target_sampler.hpp"

namespace orion::scangen {
namespace {

// ----------------------------------------------------------------- arrivals

TEST(Arrivals, ExpectedUniqueTargets) {
  EXPECT_DOUBLE_EQ(expected_unique_targets(1000, 0.1), 100.0);
  EXPECT_DOUBLE_EQ(expected_unique_targets(0, 0.5), 0.0);
}

TEST(Arrivals, FullCoverageIsExact) {
  net::Rng rng(1);
  EXPECT_EQ(sample_unique_targets(32768, 1.0, rng), 32768u);
  EXPECT_EQ(sample_unique_targets(32768, 1.5, rng), 32768u);
}

TEST(Arrivals, SampledTargetsMatchBinomialMean) {
  net::Rng rng(2);
  const int trials = 2000;
  double sum = 0;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(sample_unique_targets(32768, 0.25, rng));
  }
  EXPECT_NEAR(sum / trials, 8192.0, 50.0);
}

TEST(Arrivals, PacketsScaleWithRepeats) {
  EXPECT_EQ(session_packets_for_port(100, 1), 100u);
  EXPECT_EQ(session_packets_for_port(100, 3), 300u);
  EXPECT_EQ(session_packets_for_port(100, 0), 100u);  // clamped to 1
}

TEST(Arrivals, CouponCollectorFormula) {
  EXPECT_DOUBLE_EQ(expected_coupon_uniques(100, 0), 0.0);
  EXPECT_NEAR(expected_coupon_uniques(100, 100), 63.4, 0.1);
  EXPECT_NEAR(expected_coupon_uniques(1000, 10000), 1000.0 * (1 - std::exp(-10)),
              0.5);
  // Simulation agreement.
  net::Rng rng(3);
  const std::uint64_t n = 500, k = 800;
  double total = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    std::unordered_set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < k; ++i) seen.insert(rng.bounded(n));
    total += static_cast<double>(seen.size());
  }
  EXPECT_NEAR(total / trials, expected_coupon_uniques(n, k), 3.0);
}

// ------------------------------------------------------------ target sampler

class TargetSampler : public testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>> {};

TEST_P(TargetSampler, DistinctInRangeAndComplete) {
  const auto [n, k] = GetParam();
  net::Rng rng(7);
  const auto sample = sample_distinct_offsets(n, k, rng);
  ASSERT_EQ(sample.size(), k);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), k);
  for (const std::uint64_t v : sample) EXPECT_LT(v, n);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TargetSampler,
    testing::Values(std::pair{100ull, 0ull}, std::pair{100ull, 1ull},
                    std::pair{100ull, 50ull}, std::pair{100ull, 100ull},
                    std::pair{65535ull, 700ull}, std::pair{32768ull, 32768ull},
                    std::pair{1000000ull, 100ull}));

TEST(TargetSamplerChecks, RejectsOversample) {
  net::Rng rng(1);
  EXPECT_THROW(sample_distinct_offsets(10, 11, rng), std::invalid_argument);
}

TEST(TargetSamplerChecks, FirstElementIsUniform) {
  // Floyd + shuffle should leave the first element uniform over [0, n).
  net::Rng rng(9);
  const std::uint64_t n = 10;
  std::array<int, 10> counts{};
  for (int t = 0; t < 20000; ++t) {
    ++counts[sample_distinct_offsets(n, 3, rng)[0]];
  }
  for (const int c : counts) EXPECT_NEAR(c, 2000, 300);
}

// -------------------------------------------------------------------- ports

TEST(Ports, ServiceCatalogTopEntries) {
  const auto& catalog = service_catalog(2022);
  // Redis then Telnet carry the largest weights (Fig 4 top ranks).
  EXPECT_EQ(catalog[0].port, 6379);
  EXPECT_EQ(catalog[1].port, 23);
  EXPECT_EQ(catalog[2].port, 22);
  // TCP/445 is confined to small scans.
  for (const WeightedPort& p : catalog) EXPECT_NE(p.port, 445);
}

TEST(Ports, YearCatalogsShareCore) {
  const auto& c21 = service_catalog(2021);
  const auto& c22 = service_catalog(2022);
  std::set<std::uint16_t> p21, p22;
  for (const auto& p : c21) p21.insert(p.port);
  for (const auto& p : c22) p22.insert(p.port);
  std::vector<std::uint16_t> shared;
  std::set_intersection(p21.begin(), p21.end(), p22.begin(), p22.end(),
                        std::back_inserter(shared));
  EXPECT_EQ(shared.size(), 22u);  // 20 TCP/UDP ports + ICMP + one more shared
  EXPECT_TRUE(p21.contains(8291));
  EXPECT_FALSE(p22.contains(8291));
  EXPECT_TRUE(p22.contains(10250));
}

TEST(Ports, SmallScanCatalogHas445) {
  const auto& catalog = small_scan_catalog();
  const auto it = std::find_if(catalog.begin(), catalog.end(),
                               [](const WeightedPort& p) { return p.port == 445; });
  ASSERT_NE(it, catalog.end());
  // ... and it is the heaviest entry.
  for (const WeightedPort& p : catalog) EXPECT_LE(p.weight, it->weight);
}

TEST(Ports, PickPortFollowsWeights) {
  const std::vector<WeightedPort> catalog = {
      {1, pkt::TrafficType::TcpSyn, 9.0}, {2, pkt::TrafficType::TcpSyn, 1.0}};
  net::Rng rng(4);
  int first = 0;
  for (int i = 0; i < 10000; ++i) first += pick_port(catalog, rng).port == 1;
  EXPECT_NEAR(first, 9000, 200);
}

TEST(Ports, PickDistinctPortsAreDistinct) {
  net::Rng rng(5);
  const auto picks = pick_distinct_ports(service_catalog(2021), 5, rng);
  ASSERT_EQ(picks.size(), 5u);
  std::set<std::uint16_t> unique;
  for (const PortSpec& p : picks) unique.insert(p.port);
  EXPECT_EQ(unique.size(), 5u);
  // Requesting more than the catalog returns the whole catalog.
  const auto all = pick_distinct_ports(service_catalog(2021), 10000, rng);
  EXPECT_EQ(all.size(), service_catalog(2021).size());
}

// --------------------------------------------------------------- population

class PopulationTest : public testing::Test {
 protected:
  static const Scenario& scenario() {
    static const Scenario s{tiny()};
    return s;
  }
};

TEST_F(PopulationTest, CategoryCountsMatchConfig) {
  const Population& pop = scenario().population_2021();
  const PopulationConfig& config = pop.config;
  EXPECT_EQ(pop.count(Category::AckedResearch), config.acked_ip_count);
  EXPECT_EQ(pop.count(Category::CloudScanner), config.cloud_scanner_count);
  EXPECT_EQ(pop.count(Category::Botnet), config.botnet_count);
  EXPECT_EQ(pop.count(Category::Bruteforcer), config.bruteforcer_count);
  EXPECT_EQ(pop.count(Category::PortSweeper), config.port_sweeper_count);
  EXPECT_EQ(pop.count(Category::SmallScanner), config.small_scanner_count);
  EXPECT_EQ(pop.orgs.size(), config.acked_org_count);
}

TEST_F(PopulationTest, SourcesAreUniqueAndOutsideMonitoredSpace) {
  const Population& pop = scenario().population_2021();
  std::unordered_set<net::Ipv4Address> sources;
  for (const ScannerProfile& s : pop.scanners) {
    EXPECT_TRUE(sources.insert(s.source).second) << s.source.to_string();
    EXPECT_FALSE(scenario().darknet().contains(s.source));
    EXPECT_FALSE(scenario().merit().contains(s.source));
    EXPECT_FALSE(scenario().cu().contains(s.source));
  }
}

TEST_F(PopulationTest, SessionsAreSortedAndInsideWindow) {
  const Population& pop = scenario().population_2021();
  const auto window_start =
      net::SimTime::at(net::Duration::days(pop.config.window_start_day));
  const auto window_end =
      net::SimTime::at(net::Duration::days(pop.config.window_end_day));
  for (const ScannerProfile& s : pop.scanners) {
    for (std::size_t i = 0; i + 1 < s.sessions.size(); ++i) {
      EXPECT_LE(s.sessions[i].start, s.sessions[i + 1].start);
    }
    for (const SessionSpec& session : s.sessions) {
      EXPECT_GE(session.start, window_start);
      EXPECT_LT(session.start, window_end);
      EXPECT_GT(session.coverage, 0.0);
      EXPECT_LE(session.coverage, 1.0);
      if (s.category == Category::PortSweeper) {
        EXPECT_GT(session.sweep_port_count, 0u);
        EXPECT_TRUE(session.ports.empty());
      } else {
        EXPECT_FALSE(session.ports.empty());
        EXPECT_EQ(session.sweep_port_count, 0u);
      }
    }
  }
}

TEST_F(PopulationTest, ResearchOrgsOwnTheirIps) {
  const Population& pop = scenario().population_2021();
  std::size_t org_ips = 0;
  for (const ResearchOrg& org : pop.orgs) {
    EXPECT_FALSE(org.ips.empty());
    EXPECT_FALSE(org.keyword.empty());
    org_ips += org.ips.size();
  }
  // Orgs own all the dedicated research IPs plus any research-affiliated
  // port sweepers.
  EXPECT_GE(org_ips, pop.config.acked_ip_count);
  EXPECT_LE(org_ips, pop.config.acked_ip_count + pop.config.port_sweeper_count);
  // Org names appear exactly on research scanners and affiliated sweepers.
  for (const ScannerProfile& s : pop.scanners) {
    if (s.category == Category::AckedResearch) {
      EXPECT_FALSE(s.org.empty());
    } else if (s.category != Category::PortSweeper) {
      EXPECT_TRUE(s.org.empty());
    }
  }
}

TEST_F(PopulationTest, BuildIsDeterministic) {
  const ScenarioConfig config = tiny();
  const Scenario a(config), b(config);
  ASSERT_EQ(a.population_2021().scanners.size(),
            b.population_2021().scanners.size());
  for (std::size_t i = 0; i < a.population_2021().scanners.size(); ++i) {
    const ScannerProfile& sa = a.population_2021().scanners[i];
    const ScannerProfile& sb = b.population_2021().scanners[i];
    EXPECT_EQ(sa.source, sb.source);
    EXPECT_EQ(sa.sessions.size(), sb.sessions.size());
  }
}

TEST_F(PopulationTest, KeyOriginsExist) {
  const KeyOrigins& k = scenario().origins();
  ASSERT_NE(k.mega_cloud_us, nullptr);
  EXPECT_EQ(k.mega_cloud_us->country, "US");
  EXPECT_EQ(k.mega_cloud_us->type, asdb::AsType::Cloud);
  ASSERT_NE(k.isp_cn_1, nullptr);
  EXPECT_EQ(k.isp_cn_1->country, "CN");
}

// -------------------------------------------------------------- event synth

TEST(EventSynth, FullSweepCoversDarknet) {
  ScannerProfile scanner;
  scanner.source = *net::Ipv4Address::parse("203.0.113.5");
  scanner.tool = pkt::ScanTool::ZMap;
  scanner.rng_stream = 9;
  SessionSpec session;
  session.start = net::SimTime::at(net::Duration::hours(5));
  session.duration = net::Duration::hours(3);
  session.coverage = 1.0;
  session.ports = {{6379, pkt::TrafficType::TcpSyn}};
  scanner.sessions.push_back(session);

  EventSynthConfig config{.darknet_size = 4096, .seed = 1};
  std::vector<telescope::DarknetEvent> events;
  synthesize_scanner_events(scanner, config, events);
  ASSERT_EQ(events.size(), 1u);
  const telescope::DarknetEvent& e = events[0];
  EXPECT_EQ(e.unique_dests, 4096u);
  EXPECT_EQ(e.packets, 4096u);
  EXPECT_DOUBLE_EQ(e.dispersion(4096), 1.0);
  EXPECT_EQ(e.key.src, scanner.source);
  EXPECT_EQ(e.key.dst_port, 6379);
  EXPECT_GE(e.start, session.start);
  EXPECT_LE(e.end, session.end());
  EXPECT_LE(e.start, e.end);
  EXPECT_EQ(e.packets_by_tool[telescope::tool_index(pkt::ScanTool::ZMap)],
            e.packets);
  EXPECT_EQ(e.dominant_tool(), pkt::ScanTool::ZMap);
}

TEST(EventSynth, RepeatsMultiplyPackets) {
  ScannerProfile scanner;
  scanner.source = *net::Ipv4Address::parse("203.0.113.6");
  scanner.rng_stream = 2;
  SessionSpec session;
  session.start = net::SimTime::epoch();
  session.duration = net::Duration::hours(1);
  session.coverage = 1.0;
  session.repeats = 3;
  session.ports = {{23, pkt::TrafficType::TcpSyn}};
  scanner.sessions.push_back(session);
  std::vector<telescope::DarknetEvent> events;
  synthesize_scanner_events(scanner, {.darknet_size = 1000, .seed = 1}, events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].packets, 3000u);
  EXPECT_EQ(events[0].unique_dests, 1000u);
}

TEST(EventSynth, SweepSessionsEmitPerPortEvents) {
  ScannerProfile scanner;
  scanner.source = *net::Ipv4Address::parse("203.0.113.7");
  scanner.category = Category::PortSweeper;
  scanner.rng_stream = 3;
  SessionSpec session;
  session.start = net::SimTime::epoch();
  session.duration = net::Duration::hours(12);
  session.coverage = 0.01;  // ~10 targets in a 1000-IP darknet per port
  session.sweep_port_count = 40;
  scanner.sessions.push_back(session);
  std::vector<telescope::DarknetEvent> events;
  synthesize_scanner_events(scanner, {.darknet_size = 1000, .seed = 2}, events);
  EXPECT_GT(events.size(), 25u);
  EXPECT_LE(events.size(), 40u);
  std::set<std::uint16_t> ports;
  for (const auto& e : events) {
    ports.insert(e.key.dst_port);
    EXPECT_GT(e.key.dst_port, 0u);
    EXPECT_EQ(e.key.type, pkt::TrafficType::TcpSyn);
  }
  EXPECT_EQ(ports.size(), events.size());  // distinct ports
}

TEST(EventSynth, MeanUniqueDestsTracksCoverage) {
  const double coverage = 0.3;
  const std::uint64_t darknet = 2048;
  double sum = 0;
  int count = 0;
  for (std::uint64_t stream = 0; stream < 300; ++stream) {
    ScannerProfile scanner;
    scanner.source = net::Ipv4Address(0x0B000000u + static_cast<std::uint32_t>(stream));
    scanner.rng_stream = stream;
    SessionSpec session;
    session.start = net::SimTime::epoch();
    session.duration = net::Duration::hours(2);
    session.coverage = coverage;
    session.ports = {{80, pkt::TrafficType::TcpSyn}};
    scanner.sessions.push_back(session);
    std::vector<telescope::DarknetEvent> events;
    synthesize_scanner_events(scanner, {.darknet_size = darknet, .seed = 5}, events);
    for (const auto& e : events) {
      sum += static_cast<double>(e.unique_dests);
      ++count;
    }
  }
  EXPECT_EQ(count, 300);
  EXPECT_NEAR(sum / count, coverage * static_cast<double>(darknet), 8.0);
}

TEST(EventSynth, DatasetIsSortedByStart) {
  const Scenario scenario{tiny()};
  const auto events = synthesize_events(
      scenario.population_2021(),
      {.darknet_size = scenario.darknet().total_addresses(), .seed = 3});
  EXPECT_GT(events.size(), 100u);
  for (std::size_t i = 0; i + 1 < events.size(); ++i) {
    EXPECT_LE(events[i].start, events[i + 1].start);
  }
}

// --------------------------------------------------------------- packet gen

TEST(PacketGen, StreamIsSortedAndInWindow) {
  const Scenario scenario{tiny()};
  const net::SimTime t0 = net::SimTime::at(net::Duration::days(2));
  const net::SimTime t1 = net::SimTime::at(net::Duration::days(3));
  PacketStreamGenerator gen(scenario.population_2021().scanners,
                            scenario.darknet(), t0, t1, {.seed = 4});
  net::SimTime last = t0;
  std::uint64_t count = 0;
  while (auto p = gen.next()) {
    EXPECT_GE(p->timestamp, last);
    EXPECT_GE(p->timestamp, t0);
    EXPECT_LT(p->timestamp, t1 + net::Duration::seconds(1));
    EXPECT_TRUE(scenario.darknet().contains(p->tuple.dst));
    last = p->timestamp;
    ++count;
  }
  EXPECT_GT(count, 0u);
  EXPECT_EQ(count, gen.packets_emitted());
}

TEST(PacketGen, ExactTargetsAreDistinctWithinSession) {
  ScannerProfile scanner;
  scanner.source = *net::Ipv4Address::parse("203.0.113.8");
  scanner.tool = pkt::ScanTool::Masscan;
  scanner.rng_stream = 4;
  SessionSpec session;
  session.start = net::SimTime::epoch();
  session.duration = net::Duration::hours(1);
  session.coverage = 0.5;
  session.ports = {{443, pkt::TrafficType::TcpSyn}};
  scanner.sessions.push_back(session);

  net::PrefixSet space({*net::Prefix::parse("198.18.0.0/24")});
  PacketStreamGenerator gen({scanner}, space, net::SimTime::epoch(),
                            session.end(), {.seed = 6, .exact_targets = true});
  std::unordered_set<net::Ipv4Address> dests;
  std::uint64_t packets = 0;
  while (auto p = gen.next()) {
    dests.insert(p->tuple.dst);
    EXPECT_EQ(pkt::fingerprint_of(*p), pkt::ScanTool::Masscan);
    ++packets;
  }
  EXPECT_EQ(dests.size(), packets);  // repeats == 1 -> all distinct
  EXPECT_NEAR(static_cast<double>(packets), 128.0, 40.0);
}

TEST(PacketGen, WindowedCountMatchesSessionShare) {
  // A 2-day session observed through a 1-day window delivers about half.
  ScannerProfile scanner;
  scanner.source = *net::Ipv4Address::parse("203.0.113.9");
  scanner.rng_stream = 5;
  SessionSpec session;
  session.start = net::SimTime::epoch();
  session.duration = net::Duration::days(2);
  session.coverage = 1.0;
  session.ports = {{22, pkt::TrafficType::TcpSyn}};
  scanner.sessions.push_back(session);

  net::PrefixSet space({*net::Prefix::parse("198.18.0.0/22")});  // 1024
  PacketStreamGenerator gen({scanner}, space, net::SimTime::epoch(),
                            net::SimTime::at(net::Duration::days(1)),
                            {.seed = 7, .exact_targets = false});
  std::uint64_t count = 0;
  while (gen.next()) ++count;
  EXPECT_NEAR(static_cast<double>(count), 512.0, 60.0);
}

}  // namespace
}  // namespace orion::scangen

// NOTE: appended suite — DHCP churn and noise events.
#include "orion/scangen/noise.hpp"

namespace orion::scangen {
namespace {

TEST(DhcpChurn, SplitsSessionsAcrossSiblingIps) {
  // High churn: most multi-session ISP scanners split.
  ScenarioConfig config = tiny();
  config.pop_2021.dhcp_churn_per_year = 20.0;  // ~certain within 14 days
  config.pop_2021.botnet_count = 40;
  const Scenario scenario(config);
  const Population& pop = scenario.population_2021();

  // With churn, the scanner count exceeds the configured category sizes.
  const std::size_t configured =
      config.pop_2021.acked_ip_count + config.pop_2021.cloud_scanner_count +
      config.pop_2021.botnet_count + config.pop_2021.bruteforcer_count +
      config.pop_2021.port_sweeper_count + config.pop_2021.small_scanner_count;
  EXPECT_GE(pop.scanners.size(), configured + 8);

  // Siblings: every scanner still has time-sorted sessions, and churned
  // pairs never overlap in time (the sibling starts after the original's
  // last session).
  for (const ScannerProfile& s : pop.scanners) {
    for (std::size_t i = 0; i + 1 < s.sessions.size(); ++i) {
      EXPECT_LE(s.sessions[i].start, s.sessions[i + 1].start);
    }
  }
}

TEST(DhcpChurn, ZeroChurnKeepsCounts) {
  ScenarioConfig config = tiny();
  config.pop_2021.dhcp_churn_per_year = 0.0;
  const Scenario scenario(config);
  const std::size_t configured =
      config.pop_2021.acked_ip_count + config.pop_2021.cloud_scanner_count +
      config.pop_2021.botnet_count + config.pop_2021.bruteforcer_count +
      config.pop_2021.port_sweeper_count + config.pop_2021.small_scanner_count;
  EXPECT_EQ(scenario.population_2021().scanners.size(), configured);
}

TEST(NoiseEvents, ShapesMatchTheirKind) {
  NoiseEventsConfig config;
  config.spoofed_bursts = 3;
  config.sources_per_burst = 50;
  config.misconfigured_hosts = 10;
  const auto events = synthesize_noise_events(config);
  ASSERT_EQ(events.size(), 3 * 50 + 10u);
  std::size_t singles = 0, chatty = 0;
  for (const auto& e : events) {
    if (e.packets == 1) {
      ++singles;
      EXPECT_EQ(e.unique_dests, 1u);
    } else {
      ++chatty;
      EXPECT_GE(e.packets, 100u);
      EXPECT_LE(e.unique_dests, 2u);
      EXPECT_GE(e.end - e.start, net::Duration::hours(12));
    }
  }
  EXPECT_EQ(singles, 150u);
  EXPECT_EQ(chatty, 10u);
}

TEST(NoiseEvents, Deterministic) {
  NoiseEventsConfig config;
  const auto a = synthesize_noise_events(config);
  const auto b = synthesize_noise_events(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key.src, b[i].key.src);
    EXPECT_EQ(a[i].packets, b[i].packets);
  }
}

}  // namespace
}  // namespace orion::scangen

// NOTE: appended suite — paper-scaled scenario structure (slower: builds
// the full world once).
namespace orion::scangen {
namespace {

TEST(PaperScaled, AddressPlanMatchesDesign) {
  const ScenarioConfig config = paper_scaled();
  const net::PrefixSet darknet(config.darknet);
  const net::PrefixSet merit(config.merit);
  const net::PrefixSet cu(config.cu);
  const net::PrefixSet honeypots(config.honeypots);

  EXPECT_EQ(darknet.total_addresses(), 32768u);       // /17
  EXPECT_EQ(merit.total_slash24s(), 1785u);           // paper 28,561 / 16
  EXPECT_EQ(cu.total_slash24s(), 18u);                // paper 291 / 16
  // The paper's 98:1 Merit:CU footprint ratio is preserved.
  EXPECT_NEAR(static_cast<double>(merit.total_slash24s()) /
                  static_cast<double>(cu.total_slash24s()),
              28561.0 / 291.0, 3.0);
  EXPECT_EQ(honeypots.total_addresses(), 64u * 16u);  // 64 x /28

  // Monitored spaces are mutually disjoint and reserved from the registry.
  for (const auto* a : {&config.darknet, &config.merit, &config.cu,
                        &config.honeypots}) {
    for (const net::Prefix& p : *a) {
      EXPECT_NE(std::find(config.registry.reserved.begin(),
                          config.registry.reserved.end(), p),
                config.registry.reserved.end())
          << p.to_string();
    }
  }
}

TEST(PaperScaled, WindowsMatchPaperCalendar) {
  const ScenarioConfig config = paper_scaled();
  EXPECT_EQ(config.pop_2021.window_start_day, net::day_index_of(2021, 1, 1));
  EXPECT_EQ(config.pop_2021.window_end_day, net::day_index_of(2022, 1, 1));
  EXPECT_EQ(config.pop_2022.window_start_day, net::day_index_of(2022, 1, 1));
  EXPECT_EQ(config.pop_2022.window_end_day, net::day_index_of(2022, 10, 16));
}

TEST(PaperScaled, DerivedTimeoutScalesFromPaperFormula) {
  const Scenario scenario{paper_scaled()};
  // For the /17 darknet the footnote formula gives a much longer timeout
  // than ORION's ~11 minutes (rarer hits per dark IP).
  EXPECT_GT(scenario.event_timeout(), net::Duration::hours(1));
  EXPECT_LT(scenario.event_timeout(), net::Duration::hours(24));
}

}  // namespace
}  // namespace orion::scangen
