// orion_serve: the OQP1 wire protocol, the unified query engine, the
// generation-snapshot cache, and the epoll daemon (DESIGN.md §16).
//
// The load-bearing properties:
//  - protocol encode/decode round-trips exactly and rejects malformed
//    frames without crashing (bit-flip sweep);
//  - execute_query() answers are equal to FlowImpactAnalyzer::query()
//    run by hand, with canonically sorted port lists;
//  - daemon responses are BYTE-IDENTICAL to execute_query_bytes() on the
//    same store generation (the equivalence gate bench_serve also runs);
//  - per-tenant token buckets reject the over-budget tenant and only it;
//  - co-arriving identical queries share one computation (batching);
//  - a generation swap never tears an in-flight snapshot: old handles
//    keep answering old bytes, the old mapping unmaps only on the last
//    release, and every mid-swap daemon response matches its OWN
//    generation's reference bytes (run under tsan via the serve label).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "orion/impact/flow_join.hpp"
#include "orion/serve/client.hpp"
#include "orion/serve/daemon.hpp"
#include "orion/serve/engine.hpp"
#include "orion/serve/protocol.hpp"
#include "orion/serve/store_cache.hpp"
#include "orion/store/archive.hpp"
#include "orion/store/mapped_flow.hpp"

namespace orion::serve {
namespace {

namespace fs = std::filesystem;

net::Ipv4Address ip(const char* text) { return *net::Ipv4Address::parse(text); }

std::string temp_dir(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string dir =
      (fs::temp_directory_path() /
       ("orion_serve_" + std::string(info->name()) + "_" + tag))
          .string();
  fs::remove_all(dir);
  return dir;
}

/// Deterministic one-day flow dataset; `salt` perturbs the counts so two
/// salts produce two distinguishable generations.
flowsim::FlowDataset make_flows(std::uint64_t salt) {
  flowsim::FlowSimConfig config;
  config.isp_space = net::PrefixSet({*net::Prefix::parse("20.0.0.0/16")});
  config.start_day = 10;
  config.end_day = 11;
  config.sampling_rate = 100;

  std::vector<std::vector<flowsim::RouterDay>> days(flowsim::kRouterCount);
  for (auto& router : days) router.resize(1);

  flowsim::RouterDay& rd = days[0][0];
  rd.user_packets = 900000 + salt;
  rd.scanner_packets = 100000;
  rd.total_packets = rd.user_packets + rd.scanner_packets;
  rd.sampled[{ip("203.0.113.1"), 23, pkt::TrafficType::TcpSyn}] = 300 + salt;
  rd.sampled[{ip("203.0.113.1"), 53, pkt::TrafficType::Udp}] = 100;
  rd.sampled[{ip("203.0.113.2"), 80, pkt::TrafficType::TcpSyn}] = 50;
  rd.sampled[{ip("203.0.113.7"), 443, pkt::TrafficType::IcmpEchoReq}] =
      10 + salt;

  days[1][0].user_packets = days[1][0].total_packets = 500000;
  days[2][0].user_packets = days[2][0].total_packets = 500000;
  return flowsim::FlowDataset(std::move(config), std::move(days));
}

/// Publishes `salt`'s dataset as the next "flows" generation of `dir`
/// (one publish_many manifest commit, like a real pipeline would).
std::uint64_t publish_flows(const std::string& dir, std::uint64_t salt) {
  const flowsim::FlowDataset flows = make_flows(salt);
  store::ArchiveDir archive(dir);
  archive.publish_many({{"flows", store::flows_fde1_writer(flows)}});
  return archive.generation();
}

QueryRequest impact_request(const std::string& tenant = "t") {
  QueryRequest request;
  request.kind = QueryKind::FlowImpact;
  request.tenant = tenant;
  request.router = 0;
  request.day = 10;
  request.sources = {ip("203.0.113.7"), ip("203.0.113.1")};
  return request;
}

// ------------------------------------------------------------- protocol

TEST(ServeProtocol, RequestRoundTrip) {
  QueryRequest request = impact_request("tenant-42");
  const std::vector<std::uint8_t> bytes = encode_request(request);
  QueryRequest decoded;
  std::string error;
  ASSERT_TRUE(decode_request(bytes, decoded, error)) << error;
  EXPECT_EQ(decoded.kind, request.kind);
  EXPECT_EQ(decoded.tenant, request.tenant);
  EXPECT_EQ(decoded.router, request.router);
  EXPECT_EQ(decoded.day, request.day);
  EXPECT_EQ(decoded.sources, request.sources);
}

TEST(ServeProtocol, ResponseRoundTrip) {
  QueryResponse response;
  response.status = Status::Ok;
  response.kind = QueryKind::FlowImpact;
  response.generation = 7;
  response.impact.router = 2;
  response.impact.day = -4;
  response.impact.matched_packets = 123456789;
  response.impact.total_packets = 987654321;
  response.impact.matched_sources = 3;
  response.impact.probed_sources = 9;
  response.impact.protocols[0] = 10;
  response.impact.protocols[1] = 20;
  response.impact.protocols[2] = 30;
  response.impact.ports_bound = 4096;
  response.impact.ports_spilled_weight = 5;
  response.impact.ports_spilled_adds = 2;
  response.impact.ports = {{23, 100}, {443, 55}};
  const std::vector<std::uint8_t> bytes = encode_response(response);
  QueryResponse decoded;
  std::string error;
  ASSERT_TRUE(decode_response(bytes, decoded, error)) << error;
  EXPECT_EQ(decoded, response);

  // Non-Ok responses carry no body, only the error string.
  QueryResponse failed;
  failed.status = Status::NotFound;
  failed.kind = QueryKind::FlowImpact;
  failed.generation = 3;
  failed.error = "no such cell";
  QueryResponse failed_decoded;
  ASSERT_TRUE(decode_response(encode_response(failed), failed_decoded, error));
  EXPECT_EQ(failed_decoded, failed);
}

TEST(ServeProtocol, RejectsMalformedPayloads) {
  const std::vector<std::uint8_t> good = encode_request(impact_request());
  QueryRequest request;
  std::string error;

  // Every strict prefix is rejected (no partial decode succeeds).
  for (std::size_t n = 0; n < good.size(); ++n) {
    const std::vector<std::uint8_t> prefix(good.begin(), good.begin() + n);
    EXPECT_FALSE(decode_request(prefix, request, error));
  }
  // Trailing bytes are rejected too — payload size must agree exactly.
  std::vector<std::uint8_t> padded = good;
  padded.push_back(0);
  EXPECT_FALSE(decode_request(padded, request, error));

  // Bit-flip sweep: decoding must never crash, whatever it returns.
  for (std::size_t i = 0; i < good.size(); ++i) {
    for (const std::uint8_t flip : {0x01, 0x80}) {
      std::vector<std::uint8_t> mutated = good;
      mutated[i] ^= flip;
      QueryRequest scratch;
      std::string scratch_error;
      decode_request(mutated, scratch, scratch_error);
    }
  }

  // A source count that promises more data than the payload holds.
  QueryRequest huge = impact_request();
  huge.sources.assign(4, ip("203.0.113.1"));
  std::vector<std::uint8_t> lying = encode_request(huge);
  lying.resize(lying.size() - 8);  // drop two addresses, keep the count
  EXPECT_FALSE(decode_request(lying, request, error));
}

TEST(ServeProtocol, FrameExtraction) {
  std::vector<std::uint8_t> stream;
  const std::vector<std::uint8_t> first = {1, 2, 3};
  const std::vector<std::uint8_t> second = {9};
  append_frame(stream, first);
  append_frame(stream, second);
  std::size_t begin = 0;
  std::size_t end = 0;
  ASSERT_EQ(try_extract_frame(stream, &begin, &end), 1);
  EXPECT_EQ(std::vector<std::uint8_t>(stream.begin() + begin,
                                      stream.begin() + end),
            (std::vector<std::uint8_t>{1, 2, 3}));
  stream.erase(stream.begin(), stream.begin() + end);
  ASSERT_EQ(try_extract_frame(stream, &begin, &end), 1);
  EXPECT_EQ(end - begin, 1u);

  // Partial frame: not ready yet.
  std::vector<std::uint8_t> partial = {5, 0, 0, 0, 1, 2};
  EXPECT_EQ(try_extract_frame(partial, &begin, &end), 0);

  // Oversized length prefix: protocol violation.
  std::vector<std::uint8_t> oversized = {0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_EQ(try_extract_frame(oversized, &begin, &end), -1);
}

TEST(ServeProtocol, RequestKeyIsCanonical) {
  QueryRequest a = impact_request("alice");
  QueryRequest b = impact_request("bob");
  // Different tenants, shuffled + duplicated sources: same identity.
  b.sources = {ip("203.0.113.1"), ip("203.0.113.7"), ip("203.0.113.1")};
  EXPECT_EQ(request_key(a), request_key(b));

  QueryRequest c = impact_request();
  c.router = 1;
  EXPECT_NE(request_key(a), request_key(c));
  QueryRequest d = impact_request();
  d.sources.push_back(ip("198.51.100.9"));
  EXPECT_NE(request_key(a), request_key(d));
}

// ------------------------------------------------------------- engine

TEST(ServeEngine, FlowImpactMatchesAnalyzerQuery) {
  const flowsim::FlowDataset flows = make_flows(0);
  const impact::FlowImpactAnalyzer analyzer(&flows);
  EngineBackend backend;
  backend.analyzer = &analyzer;
  backend.dataset = &flows;
  backend.generation = 5;

  const QueryRequest request = impact_request();
  const QueryResponse response = execute_query(request, backend);
  ASSERT_EQ(response.status, Status::Ok);
  EXPECT_EQ(response.generation, 5u);

  const impact::RouterDayReport report =
      analyzer.query(0, 10, impact::SourceSet(request.sources));
  EXPECT_EQ(response.impact.matched_packets, report.impact.matched_packets);
  EXPECT_EQ(response.impact.total_packets, report.impact.total_packets);
  EXPECT_EQ(response.impact.matched_sources, report.impact.matched_sources);
  EXPECT_EQ(response.impact.probed_sources, report.probed_sources);
  for (std::size_t i = 0; i < report.protocols.size(); ++i) {
    EXPECT_EQ(response.impact.protocols[i], report.protocols[i]);
  }
  // Wire ports are the TopK counts in canonical ascending order.
  auto expected = std::vector<std::pair<std::uint16_t, std::uint64_t>>(
      report.ports.counts().begin(), report.ports.counts().end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(response.impact.ports, expected);
  EXPECT_TRUE(std::is_sorted(response.impact.ports.begin(),
                             response.impact.ports.end()));
}

TEST(ServeEngine, StatusesForAbsentCellAndEmptyBackend) {
  const flowsim::FlowDataset flows = make_flows(0);
  const impact::FlowImpactAnalyzer analyzer(&flows);
  EngineBackend backend;
  backend.analyzer = &analyzer;
  backend.dataset = &flows;

  QueryRequest absent = impact_request();
  absent.day = 99;  // outside the window
  EXPECT_EQ(execute_query(absent, backend).status, Status::NotFound);

  const EngineBackend empty;
  EXPECT_EQ(execute_query(impact_request(), empty).status, Status::BadRequest);
  QueryRequest info;
  info.kind = QueryKind::StoreInfo;
  EXPECT_EQ(execute_query(info, empty).status, Status::BadRequest);
  // Ping works even with nothing loaded.
  QueryRequest ping;
  EXPECT_EQ(execute_query(ping, empty).status, Status::Ok);
}

// ------------------------------------------------------------- snapshot cache

TEST(ServeCache, GenerationSwapKeepsOldSnapshotAnswersIntact) {
  const std::string dir = temp_dir("cache");
  ASSERT_EQ(publish_flows(dir, 0), 1u);

  StoreCache cache(dir);
  ASSERT_TRUE(cache.refresh());
  std::shared_ptr<const StoreSnapshot> snap1 = cache.current();
  ASSERT_NE(snap1, nullptr);
  EXPECT_EQ(snap1->generation, 1u);

  const QueryRequest request = impact_request();
  const std::vector<std::uint8_t> bytes1 =
      execute_query_bytes(request, snap1->backend());

  // Publish generation 2 with different counts and swap.
  ASSERT_EQ(publish_flows(dir, 1000), 2u);
  ASSERT_TRUE(cache.refresh());
  EXPECT_EQ(cache.swaps(), 2u);
  const std::shared_ptr<const StoreSnapshot> snap2 = cache.current();
  ASSERT_NE(snap2, nullptr);
  EXPECT_EQ(snap2->generation, 2u);

  // Snapshot isolation: the old handle still answers the OLD bytes.
  EXPECT_EQ(execute_query_bytes(request, snap1->backend()), bytes1);
  // And the new generation genuinely differs.
  EXPECT_NE(execute_query_bytes(request, snap2->backend()), bytes1);

  // Same manifest generation: refresh is a no-op.
  EXPECT_FALSE(cache.refresh());

  // Deferred unmap: the generation-1 snapshot lives exactly as long as
  // its last holder. Releasing our handle (the cache dropped its own at
  // the swap) must destroy it — refcount IS the generation refcount.
  std::weak_ptr<const StoreSnapshot> watch = snap1;
  snap1.reset();
  EXPECT_TRUE(watch.expired());
}

TEST(ServeCache, RefreshSurvivesMissingAndCorruptArchives) {
  StoreCache missing(temp_dir("missing") + "/never_created");
  EXPECT_FALSE(missing.refresh());
  EXPECT_EQ(missing.current(), nullptr);

  // A live cache keeps its snapshot when the archive turns to garbage.
  const std::string dir = temp_dir("corrupt");
  publish_flows(dir, 0);
  StoreCache cache(dir);
  ASSERT_TRUE(cache.refresh());
  fs::remove(dir + "/MANIFEST");
  std::ofstream(dir + "/MANIFEST") << "not a manifest";
  EXPECT_FALSE(cache.refresh());
  EXPECT_NE(cache.current(), nullptr);
}

// ------------------------------------------------------------- daemon

TEST(ServeDaemon, ResponsesAreByteIdenticalToDirectExecution) {
  const std::string dir = temp_dir("daemon");
  publish_flows(dir, 0);

  DaemonConfig config;
  config.archive_dir = dir;
  Daemon daemon(config);
  daemon.start();

  const auto snapshot = load_snapshot(store::ArchiveDir(dir), "flows", "events");
  Client client;
  client.connect("127.0.0.1", daemon.port());

  std::vector<QueryRequest> requests;
  requests.push_back(QueryRequest{});  // ping
  QueryRequest info;
  info.kind = QueryKind::StoreInfo;
  requests.push_back(info);
  requests.push_back(impact_request());
  QueryRequest other_router = impact_request();
  other_router.router = 1;
  requests.push_back(other_router);
  QueryRequest absent = impact_request();
  absent.day = 77;
  requests.push_back(absent);  // NotFound must match byte-for-byte too

  for (const QueryRequest& request : requests) {
    EXPECT_EQ(client.call_raw(request),
              execute_query_bytes(request, snapshot->backend()));
  }

  // Pipelining: all requests in flight at once, answers in order.
  for (const QueryRequest& request : requests) client.send(request);
  for (const QueryRequest& request : requests) {
    EXPECT_EQ(client.recv_raw(),
              execute_query_bytes(request, snapshot->backend()));
  }

  const ServeStats stats = daemon.stats();
  EXPECT_EQ(stats.requests, 2 * requests.size());
  EXPECT_EQ(stats.responses, 2 * requests.size());
  daemon.stop();
}

TEST(ServeDaemon, MalformedFrameGetsBadRequestAndConnectionSurvives) {
  const std::string dir = temp_dir("bad");
  publish_flows(dir, 0);
  DaemonConfig config;
  config.archive_dir = dir;
  Daemon daemon(config);
  daemon.start();

  const QueryRequest request = impact_request();
  // The Client API can only send well-formed requests, so drive a raw
  // TCP socket: [garbage frame][valid frame] on one connection. The
  // daemon must answer BadRequest for the first and still serve the
  // second — a malformed payload poisons neither the connection nor the
  // response ordering.
  {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(daemon.port());
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    std::vector<std::uint8_t> wire;
    const std::vector<std::uint8_t> garbage = {'X', 'X', 'X', 'X', 1, 2, 3};
    append_frame(wire, garbage);
    append_frame(wire, encode_request(request));
    ASSERT_EQ(::write(fd, wire.data(), wire.size()),
              static_cast<ssize_t>(wire.size()));
    // Read two frames back.
    std::vector<std::uint8_t> in;
    std::vector<std::vector<std::uint8_t>> frames;
    std::uint8_t chunk[4096];
    while (frames.size() < 2) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      ASSERT_GT(n, 0);
      in.insert(in.end(), chunk, chunk + n);
      std::size_t begin = 0;
      std::size_t end = 0;
      while (try_extract_frame(in, &begin, &end) == 1) {
        frames.emplace_back(in.begin() + begin, in.begin() + end);
        in.erase(in.begin(), in.begin() + end);
      }
    }
    ::close(fd);
    QueryResponse first;
    QueryResponse second;
    std::string error;
    ASSERT_TRUE(decode_response(frames[0], first, error)) << error;
    ASSERT_TRUE(decode_response(frames[1], second, error)) << error;
    EXPECT_EQ(first.status, Status::BadRequest);
    EXPECT_EQ(second.status, Status::Ok);
  }
  EXPECT_EQ(daemon.stats().bad_requests, 1u);
  daemon.stop();
}

TEST(ServeDaemon, AdmissionRejectsOnlyTheOverBudgetTenant) {
  const std::string dir = temp_dir("admission");
  publish_flows(dir, 0);
  DaemonConfig config;
  config.archive_dir = dir;
  config.admission.capacity = 2;
  config.admission.refill_per_sec = 0;  // no refill: hard budget of 2
  Daemon daemon(config);
  daemon.start();

  Client alice;
  alice.connect("127.0.0.1", daemon.port());
  const QueryRequest request = impact_request("alice");
  EXPECT_EQ(alice.call(request).status, Status::Ok);
  EXPECT_EQ(alice.call(request).status, Status::Ok);
  EXPECT_EQ(alice.call(request).status, Status::Overloaded);

  // Another tenant is unaffected — buckets are per tenant.
  Client bob;
  bob.connect("127.0.0.1", daemon.port());
  EXPECT_EQ(bob.call(impact_request("bob")).status, Status::Ok);

  EXPECT_EQ(daemon.stats().overload_rejections, 1u);
  daemon.stop();
}

TEST(ServeDaemon, BatchingSharesCoArrivingIdenticalQueries) {
  const std::string dir = temp_dir("batching");
  publish_flows(dir, 0);
  DaemonConfig config;
  config.archive_dir = dir;
  config.workers = 1;  // serialize the pool so arrivals pile up
  Daemon daemon(config);
  daemon.start();

  Client client;
  client.connect("127.0.0.1", daemon.port());
  const QueryRequest request = impact_request();
  const auto snapshot = load_snapshot(store::ArchiveDir(dir), "flows", "events");
  const std::vector<std::uint8_t> expected =
      execute_query_bytes(request, snapshot->backend());

  constexpr int kPipelined = 300;
  for (int i = 0; i < kPipelined; ++i) client.send(request);
  for (int i = 0; i < kPipelined; ++i) {
    EXPECT_EQ(client.recv_raw(), expected);
  }
  // With one worker and 300 identical pipelined queries, at least one
  // drain batch must have contained duplicates.
  EXPECT_GT(daemon.stats().shared_computations, 0u);
  daemon.stop();
}

TEST(ServeDaemon, MidSwapResponsesMatchTheirOwnGeneration) {
  const std::string dir = temp_dir("midswap");
  publish_flows(dir, 0);
  DaemonConfig config;
  config.archive_dir = dir;
  config.refresh_ms = 5;
  Daemon daemon(config);
  daemon.start();

  const QueryRequest request = impact_request();
  // Reference bytes per generation, computed via the same load path the
  // daemon uses. Generation 2's dataset is published mid-run below.
  std::vector<std::vector<std::uint8_t>> expected(3);
  expected[1] = execute_query_bytes(
      request, load_snapshot(store::ArchiveDir(dir), "flows", "events")->backend());

  std::atomic<bool> done{false};
  std::atomic<int> checked{0};
  std::atomic<int> wrong{0};
  const std::uint16_t port = daemon.port();
  auto hammer = [&] {
    Client client;
    client.connect("127.0.0.1", port);
    while (!done.load(std::memory_order_acquire)) {
      const std::vector<std::uint8_t> raw = client.call_raw(request);
      QueryResponse response;
      std::string error;
      if (!decode_response(raw, response, error)) {
        ++wrong;
        continue;
      }
      const std::uint64_t g = response.generation;
      if (g >= expected.size() || expected[g].empty()) {
        // Mid-swap sliver: generation 2 responses may arrive before the
        // main thread computed expected[2]; re-checked below via a
        // post-hoc pass. Count them as generation-2-pending.
        if (g != 2) ++wrong;
        continue;
      }
      if (raw != expected[g]) ++wrong;
      ++checked;
    }
  };
  std::thread t1(hammer);
  std::thread t2(hammer);

  // Let generation 1 serve for a moment, then swap under load.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  publish_flows(dir, 1000);
  expected[2] = execute_query_bytes(
      request, load_snapshot(store::ArchiveDir(dir), "flows", "events")->backend());

  // Serve generation 2 under load for a while.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
  while (std::chrono::steady_clock::now() < deadline &&
         daemon.generation() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  done.store(true, std::memory_order_release);
  t1.join();
  t2.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GT(checked.load(), 0);
  EXPECT_EQ(daemon.generation(), 2u);
  EXPECT_GE(daemon.stats().generation_swaps, 1u);
  daemon.stop();
}

}  // namespace
}  // namespace orion::serve
