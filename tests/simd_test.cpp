// DESIGN.md §14 equivalence contract: every SIMD kernel must produce
// bit-identical results to its pinned scalar reference at every tier the
// machine can run, for every length class (empty, single element, one
// under/over the vector width, ragged multiples, large buffers). The
// suite force-sets each available tier and fuzzes each kernel against
// the scalar form, then checks the composite consumers (PrefixSet batch
// membership, CoverageBitset popcounts, the tag-probed FlatMap, and a
// miniature aggregator capture) stay invariant under tier switching.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "orion/detect/port_set.hpp"
#include "orion/netbase/aligned.hpp"
#include "orion/netbase/checksum.hpp"
#include "orion/netbase/crc32.hpp"
#include "orion/netbase/flat_map.hpp"
#include "orion/netbase/prefix.hpp"
#include "orion/netbase/rng.hpp"
#include "orion/netbase/simd.hpp"
#include "orion/packet/batch.hpp"
#include "orion/packet/builder.hpp"
#include "orion/packet/classify.hpp"
#include "orion/stats/coverage.hpp"
#include "orion/telescope/aggregator.hpp"
#include "orion/telescope/checkpoint.hpp"

namespace {

using namespace orion;
namespace simd = net::simd;

/// Restores the dispatch tier active at construction (tests force tiers).
struct TierGuard {
  simd::Level saved = simd::active_level();
  ~TierGuard() { simd::set_level(saved); }
};

/// Lengths hitting every boundary class of the 16- and 32-lane kernels.
const std::vector<std::size_t> kLengths = {0,  1,  2,  7,  8,   15,  16,  17,
                                           31, 32, 33, 63, 64,  65,  100, 255,
                                           256, 257, 1000, 4096, 65537};

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> data(n);
  net::Rng rng(seed);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  return data;
}

TEST(SimdDispatch, LevelPlumbing) {
  TierGuard guard;
  const auto tiers = simd::available_levels();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), simd::Level::Scalar);
  for (const simd::Level tier : tiers) {
    EXPECT_EQ(simd::set_level(tier), tier);
    EXPECT_EQ(simd::active_level(), tier);
  }
  // Requesting a foreign-ISA or unsupported tier clamps, never raises.
  const simd::Level got = simd::set_level(simd::Level::Neon);
  EXPECT_LE(static_cast<int>(got), static_cast<int>(simd::detected_level()));
  EXPECT_FALSE(simd::feature_string().empty());
}

TEST(SimdDispatch, ParseLevel) {
  simd::Level level;
  EXPECT_TRUE(simd::parse_level("scalar", level));
  EXPECT_EQ(level, simd::Level::Scalar);
  EXPECT_TRUE(simd::parse_level("sse42", level));
  EXPECT_EQ(level, simd::Level::Sse42);
  EXPECT_TRUE(simd::parse_level("avx2", level));
  EXPECT_EQ(level, simd::Level::Avx2);
  EXPECT_TRUE(simd::parse_level("neon", level));
  EXPECT_EQ(level, simd::Level::Neon);
  EXPECT_FALSE(simd::parse_level("sse999", level));
  EXPECT_FALSE(simd::parse_level("", level));
}

TEST(SimdCrc32, MatchesScalarAtEveryTierAndLength) {
  TierGuard guard;
  for (const simd::Level tier : simd::available_levels()) {
    simd::set_level(tier);
    for (const std::size_t n : kLengths) {
      const auto data = random_bytes(n, 7 * n + 1);
      const std::uint32_t ref = net::Crc32::of_scalar(data);
      EXPECT_EQ(net::Crc32::of(data), ref)
          << "tier=" << simd::to_string(tier) << " n=" << n;
      EXPECT_EQ(net::Crc32::of_sliced(data), ref) << "n=" << n;
    }
  }
}

TEST(SimdCrc32, StreamingChunksMatchOneShot) {
  TierGuard guard;
  const auto data = random_bytes(100000, 99);
  const std::uint32_t ref = net::Crc32::of_scalar(data);
  for (const simd::Level tier : simd::available_levels()) {
    simd::set_level(tier);
    net::Crc32 crc;
    net::Rng rng(5);
    std::size_t i = 0;
    while (i < data.size()) {
      // Ragged chunks spanning the < 64-byte short path, odd tails, and
      // multi-KiB folds within one stream.
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.bounded(5000), data.size() - i);
      crc.update({data.data() + i, chunk});
      i += chunk;
    }
    EXPECT_EQ(crc.value(), ref) << "tier=" << simd::to_string(tier);
  }
}

TEST(SimdChecksum, MatchesScalarAtEveryTierAndLength) {
  TierGuard guard;
  for (const simd::Level tier : simd::available_levels()) {
    simd::set_level(tier);
    for (const std::size_t n : kLengths) {
      const auto data = random_bytes(n, 13 * n + 3);
      EXPECT_EQ(net::InternetChecksum::of(data),
                net::InternetChecksum::of_scalar(data))
          << "tier=" << simd::to_string(tier) << " n=" << n;
    }
  }
}

TEST(SimdChecksum, AllOnesBufferDoesNotOverflowLanes) {
  // Worst-case lane growth: every 16-bit word is 0xFFFF. The blockwise
  // reduction must keep the u32 lanes from wrapping on multi-MiB input.
  TierGuard guard;
  const std::vector<std::uint8_t> data(3 << 20, 0xFF);
  const std::uint16_t ref = net::InternetChecksum::of_scalar(data);
  for (const simd::Level tier : simd::available_levels()) {
    simd::set_level(tier);
    EXPECT_EQ(net::InternetChecksum::of(data), ref)
        << "tier=" << simd::to_string(tier);
  }
}

TEST(SimdClassify, TrafficMatchesScalarAtEveryTier) {
  TierGuard guard;
  for (const simd::Level tier : simd::available_levels()) {
    simd::set_level(tier);
    for (const std::size_t n : kLengths) {
      net::Rng rng(17 * n + 1);
      std::vector<std::uint8_t> proto(n), flags(n), icmp(n);
      for (std::size_t i = 0; i < n; ++i) {
        // Mix real protocol numbers with arbitrary ones.
        const std::uint8_t protos[] = {1, 6, 17, 41, 0,
                                       static_cast<std::uint8_t>(rng.next())};
        proto[i] = protos[rng.bounded(6)];
        flags[i] = static_cast<std::uint8_t>(rng.next());
        icmp[i] = static_cast<std::uint8_t>(rng.bounded(16));
      }
      std::vector<std::uint8_t> got(n, 0xEE), want(n, 0xEE);
      pkt::classify_traffic_batch(proto.data(), flags.data(), icmp.data(), n,
                                  got.data());
      pkt::classify_traffic_batch_scalar(proto.data(), flags.data(),
                                         icmp.data(), n, want.data());
      EXPECT_EQ(got, want) << "tier=" << simd::to_string(tier) << " n=" << n;
    }
  }
}

TEST(SimdClassify, ToolMatchesScalarAtEveryTier) {
  TierGuard guard;
  for (const simd::Level tier : simd::available_levels()) {
    simd::set_level(tier);
    for (const std::size_t n : kLengths) {
      net::Rng rng(23 * n + 5);
      std::vector<std::uint8_t> proto(n);
      std::vector<std::uint32_t> dst(n), seq(n);
      std::vector<std::uint16_t> port(n), id(n);
      for (std::size_t i = 0; i < n; ++i) {
        proto[i] = rng.chance(0.7) ? 6 : 17;
        dst[i] = static_cast<std::uint32_t>(rng.next());
        port[i] = static_cast<std::uint16_t>(rng.next());
        // Bias the fingerprint fields so every tool branch gets exercised.
        switch (rng.bounded(4)) {
          case 0:  // Mirai: seq == dst
            seq[i] = dst[i];
            id[i] = static_cast<std::uint16_t>(rng.next());
            break;
          case 1:  // ZMap: ip_id == 54321
            seq[i] = static_cast<std::uint32_t>(rng.next());
            id[i] = 54321;
            break;
          case 2:  // Masscan: ip_id == (dst ^ port ^ seq) & 0xFFFF
            seq[i] = static_cast<std::uint32_t>(rng.next());
            id[i] = static_cast<std::uint16_t>(
                (dst[i] ^ port[i] ^ seq[i]) & 0xFFFF);
            break;
          default:
            seq[i] = static_cast<std::uint32_t>(rng.next());
            id[i] = static_cast<std::uint16_t>(rng.next());
        }
      }
      std::vector<std::uint8_t> got(n, 0xEE), want(n, 0xEE);
      pkt::classify_tool_batch(proto.data(), dst.data(), port.data(),
                               id.data(), seq.data(), n, got.data());
      pkt::classify_tool_batch_scalar(proto.data(), dst.data(), port.data(),
                                      id.data(), seq.data(), n, want.data());
      EXPECT_EQ(got, want) << "tier=" << simd::to_string(tier) << " n=" << n;
    }
  }
}

TEST(SimdWords, PopcountMatchesScalarAtEveryTier) {
  TierGuard guard;
  for (const simd::Level tier : simd::available_levels()) {
    simd::set_level(tier);
    for (const std::size_t n : {0, 1, 2, 3, 4, 5, 7, 8, 9, 100, 1000}) {
      net::Rng rng(31 * n + 7);
      std::vector<std::uint64_t> a(n), b(n);
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng.next();
        b[i] = rng.next();
      }
      EXPECT_EQ(simd::popcount_words(a), simd::popcount_words_scalar(a))
          << "tier=" << simd::to_string(tier) << " n=" << n;
      EXPECT_EQ(simd::and_popcount_words(a, b),
                simd::and_popcount_words_scalar(a, b))
          << "tier=" << simd::to_string(tier) << " n=" << n;
    }
  }
}

TEST(SimdWords, MaskedEqAccumulatesIdenticallyAtEveryTier) {
  TierGuard guard;
  for (const simd::Level tier : simd::available_levels()) {
    simd::set_level(tier);
    for (const std::size_t n : kLengths) {
      net::Rng rng(41 * n + 11);
      std::vector<std::uint32_t> v(n);
      for (auto& x : v) {
        // Cluster values so the compares actually hit.
        x = 0xC0A80000u | static_cast<std::uint32_t>(rng.bounded(512));
      }
      std::vector<std::uint8_t> got(n, 0), want(n, 0);
      // Two accumulating sweeps with different masks: results must OR.
      for (const std::uint32_t mask : {0xFFFFFF00u, 0xFFFFFFC0u}) {
        const std::uint32_t expect = 0xC0A80000u & mask;
        simd::accumulate_masked_eq_u32(v.data(), n, mask, expect, got.data());
        simd::accumulate_masked_eq_u32_scalar(v.data(), n, mask, expect,
                                              want.data());
      }
      EXPECT_EQ(got, want) << "tier=" << simd::to_string(tier) << " n=" << n;
    }
  }
}

TEST(SimdPrefix, ContainsBatchMatchesScalarAtEveryTier) {
  TierGuard guard;
  const auto make_set = [](std::initializer_list<const char*> cidrs) {
    std::vector<net::Prefix> prefixes;
    for (const char* c : cidrs) prefixes.push_back(*net::Prefix::parse(c));
    return net::PrefixSet(prefixes);
  };
  // Small set (vector sweep) and a >8-prefix set (binary-search fallback).
  const net::PrefixSet small = make_set({"198.18.0.0/22", "10.9.0.0/16"});
  const net::PrefixSet large = make_set(
      {"1.0.0.0/24", "2.0.0.0/24", "3.0.0.0/24", "4.0.0.0/24", "5.0.0.0/24",
       "6.0.0.0/24", "7.0.0.0/24", "8.0.0.0/24", "9.0.0.0/24", "11.0.0.0/24"});
  for (const simd::Level tier : simd::available_levels()) {
    simd::set_level(tier);
    for (const net::PrefixSet* set : {&small, &large}) {
      for (const std::size_t n : kLengths) {
        net::Rng rng(53 * n + 13);
        std::vector<std::uint32_t> addrs(n);
        for (auto& a : addrs) {
          // Half the draws land near the member prefixes.
          a = rng.chance(0.5)
                  ? (0xC6120000u | static_cast<std::uint32_t>(rng.bounded(4096)))
                  : static_cast<std::uint32_t>(rng.next());
        }
        std::vector<std::uint8_t> got(n, 0xEE), want(n, 0xEE);
        set->contains_batch(addrs.data(), n, got.data());
        set->contains_batch_scalar(addrs.data(), n, want.data());
        EXPECT_EQ(got, want) << "tier=" << simd::to_string(tier) << " n=" << n;
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(got[i] != 0, set->contains(net::Ipv4Address(addrs[i])));
        }
      }
    }
  }
}

TEST(SimdCoverage, CountAndOverlapMatchNaive) {
  TierGuard guard;
  for (const simd::Level tier : simd::available_levels()) {
    simd::set_level(tier);
    for (const std::uint64_t universe : {1u, 63u, 64u, 65u, 1000u, 100003u}) {
      stats::CoverageBitset a(universe), b(universe);
      net::Rng rng(61 + universe);
      std::uint64_t naive_a = 0, naive_overlap = 0;
      std::vector<bool> in_a(universe, false), in_b(universe, false);
      for (std::uint64_t i = 0; i < universe / 2 + 1; ++i) {
        const std::uint64_t x = rng.bounded(universe);
        if (!in_a[x]) ++naive_a;
        in_a[x] = true;
        a.mark(x);
        const std::uint64_t y = rng.bounded(universe);
        in_b[y] = true;
        b.mark(y);
      }
      for (std::uint64_t i = 0; i < universe; ++i) {
        naive_overlap += in_a[i] && in_b[i];
      }
      EXPECT_EQ(a.count(), naive_a) << "universe=" << universe;
      EXPECT_EQ(a.overlap(b), naive_overlap) << "universe=" << universe;
    }
  }
}

TEST(SimdFlatMap, ModelCheckWithTierTogglingAndErase) {
  // The tag array is maintained on every mutation regardless of tier, so
  // flipping tiers mid-history must never change lookup results. Model
  // the FlatMap against std::unordered_map through a random op mix.
  TierGuard guard;
  const auto tiers = simd::available_levels();
  net::FlatMap<std::uint64_t, std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> model;
  net::Rng rng(71);
  for (int op = 0; op < 200000; ++op) {
    if (op % 1024 == 0) simd::set_level(tiers[rng.bounded(tiers.size())]);
    // Small key space so inserts, hits, and erases all happen often and
    // probe chains overlap (exercising backward-shift deletion).
    const std::uint64_t key = rng.bounded(4096) * 0x9E3779B97F4A7C15ull;
    switch (rng.bounded(3)) {
      case 0: {
        const auto [slot, inserted] = map.try_emplace(key, op);
        EXPECT_EQ(inserted, !model.count(key));
        if (inserted) model.emplace(key, op);
        EXPECT_EQ(*slot, model.at(key));
        break;
      }
      case 1: {
        const std::uint64_t* found = map.find(key);
        const auto it = model.find(key);
        ASSERT_EQ(found != nullptr, it != model.end());
        if (found) EXPECT_EQ(*found, it->second);
        break;
      }
      default:
        EXPECT_EQ(map.erase(key), model.erase(key) > 0);
    }
    ASSERT_EQ(map.size(), model.size());
  }
  std::size_t visited = 0;
  map.for_each([&](std::uint64_t key, std::uint64_t value) {
    ++visited;
    EXPECT_EQ(model.at(key), value);
  });
  EXPECT_EQ(visited, model.size());
}

TEST(SimdFlatMap, GroupProbeAgreesWithScalarProbePerLookup) {
  // Same table, every key looked up under both probe strategies.
  TierGuard guard;
  if (simd::detected_level() == simd::Level::Scalar) GTEST_SKIP();
  net::FlatMap<std::uint64_t, std::uint64_t> map;
  net::Rng rng(73);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.next();
    keys.push_back(key);
    map.try_emplace(key, key ^ 0xABCD);
    if (i % 3 == 0) map.erase(keys[rng.bounded(keys.size())]);
  }
  for (const std::uint64_t key : keys) {
    simd::set_level(simd::Level::Scalar);
    const std::uint64_t* scalar_hit = map.find(key);
    simd::set_level(simd::detected_level());
    const std::uint64_t* simd_hit = map.find(key);
    ASSERT_EQ(scalar_hit, simd_hit);
    const std::uint64_t probe_miss = key ^ 1;
    simd::set_level(simd::Level::Scalar);
    const std::uint64_t* scalar_miss = map.find(probe_miss);
    simd::set_level(simd::detected_level());
    ASSERT_EQ(scalar_miss, map.find(probe_miss));
  }
}

TEST(SimdAlignment, BatchColumnsAre64ByteAligned) {
  static_assert(net::kColumnAlignment >= 64);
  pkt::PacketBatch batch(1024);
  pkt::ProbeBuilder builder(net::Ipv4Address(0x0A000001u), pkt::ScanTool::ZMap,
                            net::Rng(1));
  for (int i = 0; i < 100; ++i) {
    batch.push_back(builder.tcp_syn(net::SimTime::epoch(),
                                    net::Ipv4Address(0xC6120000u + i), 443));
  }
  const auto aligned = [](const void* p) {
    return reinterpret_cast<std::uintptr_t>(p) % net::kColumnAlignment == 0;
  };
  EXPECT_TRUE(aligned(batch.dst_col().data()));
  EXPECT_TRUE(aligned(batch.proto_col().data()));
  EXPECT_TRUE(aligned(batch.tcp_flags_col().data()));
  EXPECT_TRUE(aligned(batch.icmp_type_col().data()));
  EXPECT_TRUE(aligned(batch.dst_port_col().data()));
  EXPECT_TRUE(aligned(batch.ip_id_col().data()));
  EXPECT_TRUE(aligned(batch.tcp_seq_col().data()));
  net::aligned_vector<std::uint32_t> v(3);
  EXPECT_TRUE(aligned(v.data()));
}

/// Miniature §11.4/§14 gate: a mixed-protocol capture through the batch
/// engine at every tier must equal the scalar-tier per-packet reference —
/// same events AND same checkpoint bytes.
TEST(SimdAggregator, CaptureInvariantAcrossTiers) {
  TierGuard guard;
  const net::PrefixSet dark({*net::Prefix::parse("198.18.0.0/24")});
  telescope::AggregatorConfig config;
  config.timeout = net::Duration::minutes(2);

  std::vector<pkt::Packet> packets;
  net::Rng rng(83);
  std::vector<pkt::ProbeBuilder> builders;
  for (std::uint32_t s = 0; s < 24; ++s) {
    builders.emplace_back(net::Ipv4Address(0x0B000000u + s),
                          static_cast<pkt::ScanTool>(s % 4), net::Rng(s));
  }
  for (int i = 0; i < 6000; ++i) {
    auto& b = builders[rng.bounded(builders.size())];
    const net::SimTime t = net::SimTime::at(net::Duration::seconds(i / 4));
    // Mostly dark-space targets, some outside (ignored-out-of-space path).
    const net::Ipv4Address dst(rng.chance(0.9)
                                   ? 0xC6120000u + (std::uint32_t)rng.bounded(256)
                                   : (std::uint32_t)rng.next());
    switch (rng.bounded(3)) {
      case 0:
        packets.push_back(b.tcp_syn(t, dst, 23));
        break;
      case 1:
        packets.push_back(b.udp_probe(t, dst, 5060, 8));
        break;
      default:
        packets.push_back(b.icmp_echo(t, dst));
    }
  }

  struct Result {
    std::vector<telescope::DarknetEvent> events;
    std::uint32_t crc = 0;
  };
  const auto run = [&](auto&& feed) {
    telescope::EventCollector collector;
    telescope::EventAggregator agg(dark, config, collector.sink());
    feed(agg);
    telescope::CheckpointWriter writer;
    agg.checkpoint(writer);
    std::ostringstream snapshot;
    writer.finish(snapshot);
    const std::string bytes = snapshot.str();
    agg.finish();
    return Result{collector.take(),
                  net::Crc32::of({reinterpret_cast<const std::uint8_t*>(
                                      bytes.data()),
                                  bytes.size()})};
  };

  simd::set_level(simd::Level::Scalar);
  const Result ref = run([&](telescope::EventAggregator& agg) {
    for (const pkt::Packet& p : packets) agg.observe(p);
  });
  ASSERT_FALSE(ref.events.empty());

  for (const simd::Level tier : simd::available_levels()) {
    simd::set_level(tier);
    for (const std::size_t batch_size : {1, 17, 64, 333}) {
      const Result got = run([&](telescope::EventAggregator& agg) {
        pkt::PacketBatch b(batch_size);
        std::size_t i = 0;
        while (i < packets.size()) {
          b.clear();
          for (std::size_t j = 0; j < batch_size && i < packets.size();
               ++j, ++i) {
            b.push_back(packets[i]);
          }
          agg.observe_batch(b);
        }
      });
      EXPECT_EQ(got.events, ref.events)
          << "tier=" << simd::to_string(tier) << " batch=" << batch_size;
      EXPECT_EQ(got.crc, ref.crc)
          << "tier=" << simd::to_string(tier) << " batch=" << batch_size;
    }
  }
}

}  // namespace
