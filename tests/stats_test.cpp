#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <set>
#include <unordered_set>

#include "orion/stats/bottomk.hpp"
#include "orion/stats/coverage.hpp"
#include "orion/stats/ecdf.hpp"
#include "orion/stats/hyperloglog.hpp"
#include "orion/stats/timeseries.hpp"
#include "orion/stats/topk.hpp"
#include "orion/stats/zipf.hpp"

namespace orion::stats {
namespace {

// --------------------------------------------------------------------- Ecdf

TEST(Ecdf, CdfValues) {
  Ecdf ecdf({1, 2, 2, 3, 10});
  EXPECT_DOUBLE_EQ(ecdf.at(0), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.at(1), 0.2);
  EXPECT_DOUBLE_EQ(ecdf.at(2), 0.6);
  EXPECT_DOUBLE_EQ(ecdf.at(9), 0.8);
  EXPECT_DOUBLE_EQ(ecdf.at(10), 1.0);
}

TEST(Ecdf, Quantiles) {
  std::vector<std::uint64_t> samples;
  for (std::uint64_t i = 1; i <= 100; ++i) samples.push_back(i);
  Ecdf ecdf(std::move(samples));
  EXPECT_EQ(ecdf.quantile(0.5), 50u);
  EXPECT_EQ(ecdf.quantile(1.0), 100u);
  EXPECT_EQ(ecdf.quantile(0.0), 1u);
  EXPECT_EQ(ecdf.quantile(0.999), 100u);
  EXPECT_EQ(ecdf.top_alpha_threshold(0.01), 99u);
}

TEST(Ecdf, TopAlphaThresholdIsolatesTail) {
  // 10,000 small samples and 10 huge ones: with alpha = 1e-3 the threshold
  // lands at the bulk's boundary value, so exactly the huge tail is
  // STRICTLY above it (the Definition-2 qualification test).
  Ecdf ecdf;
  for (int i = 0; i < 10000; ++i) ecdf.add(5);
  for (int i = 0; i < 10; ++i) ecdf.add(1000000);
  const std::uint64_t threshold = ecdf.top_alpha_threshold(1e-3);
  EXPECT_EQ(threshold, 5u);
  std::size_t above = 0;
  for (int i = 0; i < 10000; ++i) above += 5u > threshold;
  above += 10;  // the huge samples all exceed it
  EXPECT_EQ(above, 10u);
}

TEST(Ecdf, IncrementalAddMatchesBulk) {
  Ecdf bulk({4, 8, 15, 16, 23, 42});
  Ecdf incremental;
  for (const std::uint64_t v : {42, 4, 16, 8, 23, 15}) incremental.add(v);
  for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_EQ(bulk.quantile(q), incremental.quantile(q));
  }
  EXPECT_DOUBLE_EQ(bulk.mean(), incremental.mean());
}

TEST(Ecdf, EmptyAndBadInputsThrow) {
  Ecdf ecdf;
  EXPECT_THROW(ecdf.quantile(0.5), std::logic_error);
  EXPECT_THROW(ecdf.mean(), std::logic_error);
  ecdf.add(1);
  EXPECT_THROW(ecdf.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(ecdf.quantile(1.1), std::invalid_argument);
}

class EcdfQuantileProperty : public testing::TestWithParam<double> {};

TEST_P(EcdfQuantileProperty, AtLeastQuantileMassIsBelowOrEqual) {
  const double q = GetParam();
  Ecdf ecdf;
  net::Rng rng(17);
  for (int i = 0; i < 5000; ++i) ecdf.add(rng.bounded(100000));
  const std::uint64_t value = ecdf.quantile(q);
  EXPECT_GE(ecdf.at(value), q);
  if (value > 0) {
    EXPECT_LT(ecdf.at(value - 1), q);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, EcdfQuantileProperty,
                         testing::Values(0.1, 0.5, 0.9, 0.99, 0.999, 0.9999));

// ------------------------------------------------------------------ Jaccard

TEST(Jaccard, KnownValues) {
  const std::unordered_set<int> a = {1, 2, 3, 4};
  const std::unordered_set<int> b = {3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(jaccard(a, b), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(jaccard(a, a), 1.0);
  const std::unordered_set<int> empty;
  EXPECT_DOUBLE_EQ(jaccard(a, empty), 0.0);
  EXPECT_DOUBLE_EQ(jaccard(empty, empty), 1.0);
}

// -------------------------------------------------------------- HyperLogLog

class HllAccuracy : public testing::TestWithParam<std::uint64_t> {};

TEST_P(HllAccuracy, WithinExpectedError) {
  const std::uint64_t cardinality = GetParam();
  HyperLogLog hll(12);
  for (std::uint64_t i = 0; i < cardinality; ++i) hll.add(hll_hash(i * 2654435761));
  const double estimate = hll.estimate();
  // 1.04/sqrt(4096) ~ 1.6% standard error; allow 5 sigma.
  EXPECT_NEAR(estimate, static_cast<double>(cardinality),
              std::max(5.0, 0.09 * static_cast<double>(cardinality)));
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, HllAccuracy,
                         testing::Values(1, 10, 100, 1000, 10000, 100000, 500000));

TEST(HyperLogLog, DuplicatesDoNotInflate) {
  HyperLogLog hll(12);
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t i = 0; i < 1000; ++i) hll.add(hll_hash(i));
  }
  EXPECT_NEAR(hll.estimate(), 1000, 80);
}

TEST(HyperLogLog, MergeEqualsUnion) {
  HyperLogLog a(12), b(12), u(12);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    a.add(hll_hash(i));
    u.add(hll_hash(i));
  }
  for (std::uint64_t i = 2500; i < 7500; ++i) {
    b.add(hll_hash(i));
    u.add(hll_hash(i));
  }
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.estimate(), u.estimate());
}

TEST(HyperLogLog, RejectsBadPrecisionAndMismatchedMerge) {
  EXPECT_THROW(HyperLogLog(3), std::invalid_argument);
  EXPECT_THROW(HyperLogLog(19), std::invalid_argument);
  HyperLogLog a(10), b(12);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(CardinalityEstimator, ExactBelowLimit) {
  CardinalityEstimator est(100);
  for (std::uint64_t i = 0; i < 100; ++i) {
    est.add(i);
    est.add(i);  // duplicates
  }
  EXPECT_TRUE(est.is_exact());
  EXPECT_EQ(est.estimate(), 100u);
}

TEST(CardinalityEstimator, PromotesToSketchAboveLimit) {
  CardinalityEstimator est(100, 12);
  for (std::uint64_t i = 0; i < 20000; ++i) est.add(i);
  EXPECT_FALSE(est.is_exact());
  EXPECT_NEAR(static_cast<double>(est.estimate()), 20000.0, 1800.0);
}

// ---------------------------------------------------------- CoverageBitset

TEST(CoverageBitset, CountsDistinctSets) {
  CoverageBitset cov(1000);
  EXPECT_TRUE(cov.set(0));
  EXPECT_FALSE(cov.set(0));
  EXPECT_TRUE(cov.set(999));
  EXPECT_EQ(cov.count(), 2u);
  EXPECT_DOUBLE_EQ(cov.fraction(), 0.002);
  EXPECT_TRUE(cov.test(999));
  EXPECT_FALSE(cov.test(5));
  EXPECT_THROW(cov.set(1000), std::out_of_range);
  cov.clear();
  EXPECT_EQ(cov.count(), 0u);
  EXPECT_FALSE(cov.test(0));
}

// --------------------------------------------------------------------- TopK

TEST(TopK, RanksByWeightThenKey) {
  TopK<int> topk;
  topk.add(7, 10);
  topk.add(3, 30);
  topk.add(5, 10);
  topk.add(3, 5);
  const auto top = topk.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], (std::pair<int, std::uint64_t>{3, 35}));
  EXPECT_EQ(top[1], (std::pair<int, std::uint64_t>{5, 10}));  // tie -> smaller key
  EXPECT_EQ(topk.total(), 55u);
  EXPECT_EQ(topk.distinct(), 3u);
  EXPECT_EQ(topk.count(7), 10u);
  EXPECT_EQ(topk.count(99), 0u);
}

TEST(TopK, BoundedSpillsNewKeysOnceFull) {
  TopK<int> topk(2);
  EXPECT_EQ(topk.bound(), 2u);
  topk.add(1, 10);
  topk.add(2, 20);
  topk.add(3, 5);   // full: new key -> spill
  topk.add(1, 7);   // tracked keys stay exact
  topk.add(3, 5);   // spilled key stays spilled
  EXPECT_EQ(topk.count(1), 17u);
  EXPECT_EQ(topk.count(2), 20u);
  EXPECT_EQ(topk.count(3), 0u);
  EXPECT_EQ(topk.distinct(), 2u);
  EXPECT_EQ(topk.spilled_weight(), 10u);
  EXPECT_EQ(topk.spilled_adds(), 2u);
  EXPECT_EQ(topk.total(), 47u);  // weight conserved, spill included
}

// Property pin for the bounded counter's head guarantee: against an exact
// reference over random heavy-tailed streams, every tracked count is
// exact, total weight is conserved, and any key whose true count exceeds
// spilled_weight() is provably tracked. (kPortMixBound in the flow join
// relies on exactly this contract.)
TEST(TopK, BoundedHeadMatchesExactCounterProperty) {
  std::mt19937_64 rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t bound = 1 + static_cast<std::size_t>(rng() % 64);
    TopK<std::uint16_t> bounded(bound);
    TopK<std::uint16_t> exact;
    std::geometric_distribution<int> keys(0.02);
    for (int i = 0; i < 4000; ++i) {
      const auto key = static_cast<std::uint16_t>(keys(rng));
      const std::uint64_t weight = 1 + rng() % 9;
      bounded.add(key, weight);
      exact.add(key, weight);
    }
    EXPECT_EQ(bounded.total(), exact.total());
    EXPECT_LE(bounded.distinct(), bound);
    std::uint64_t tracked_weight = 0;
    for (const auto& [key, count] : bounded.counts()) {
      EXPECT_EQ(count, exact.count(key));  // tracked == exact, always
      tracked_weight += count;
    }
    EXPECT_EQ(tracked_weight + bounded.spilled_weight(), exact.total());
    for (const auto& [key, count] : exact.counts()) {
      if (count > bounded.spilled_weight()) {
        EXPECT_EQ(bounded.count(key), count)
            << "heavy key " << key << " missing from the bounded head";
      }
    }
  }
}

// --------------------------------------------------------------------- Zipf

TEST(ZipfSampler, PmfMatchesEmpiricalFrequency) {
  ZipfSampler zipf(50, 1.1);
  net::Rng rng(23);
  std::vector<int> counts(50, 0);
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) ++counts[zipf.sample(rng)];
  for (const std::size_t rank : {0u, 1u, 5u, 20u}) {
    const double expected = zipf.pmf(rank) * trials;
    EXPECT_NEAR(counts[rank], expected, 5 * std::sqrt(expected) + 5);
  }
}

TEST(ZipfSampler, RejectsEmptySupport) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(Zipf, CumulativeContributionCurve) {
  const auto curve = cumulative_contribution_curve({50, 30, 15, 5});
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0], 0.50);
  EXPECT_DOUBLE_EQ(curve[1], 0.80);
  EXPECT_DOUBLE_EQ(curve[3], 1.0);
  // Monotone regardless of input order.
  const auto shuffled = cumulative_contribution_curve({5, 50, 15, 30});
  EXPECT_EQ(curve, shuffled);
}

TEST(Zipf, FitRecoversExponent) {
  // Perfect Zipf weights with s = 1.5.
  std::vector<std::uint64_t> weights;
  for (int rank = 1; rank <= 200; ++rank) {
    weights.push_back(
        static_cast<std::uint64_t>(1e9 / std::pow(rank, 1.5)));
  }
  EXPECT_NEAR(fit_zipf_exponent(weights), 1.5, 0.05);
  EXPECT_DOUBLE_EQ(fit_zipf_exponent({42}), 0.0);
  EXPECT_DOUBLE_EQ(fit_zipf_exponent({}), 0.0);
}

// ------------------------------------------------------------- BinnedSeries

TEST(BinnedSeries, BinsAndDrops) {
  BinnedSeries series(net::SimTime::at(net::Duration::seconds(10)),
                      net::Duration::seconds(1), 5);
  series.add(net::SimTime::at(net::Duration::seconds(10)));          // bin 0
  series.add(net::SimTime::at(net::Duration::millis(10999)));        // bin 0
  series.add(net::SimTime::at(net::Duration::seconds(14)), 3);       // bin 4
  series.add(net::SimTime::at(net::Duration::seconds(15)));          // dropped
  series.add(net::SimTime::at(net::Duration::seconds(9)));           // dropped
  EXPECT_EQ(series.bin(0), 2u);
  EXPECT_EQ(series.bin(4), 3u);
  EXPECT_EQ(series.total(), 5u);
  EXPECT_EQ(series.dropped(), 2u);
  EXPECT_EQ(series.cumulative().back(), 5u);
  EXPECT_DOUBLE_EQ(series.rates()[4], 3.0);
}

TEST(BinnedSeries, RatioSeries) {
  BinnedSeries num(net::SimTime::epoch(), net::Duration::seconds(1), 3);
  BinnedSeries den(net::SimTime::epoch(), net::Duration::seconds(1), 3);
  num.add(net::SimTime::at(net::Duration::millis(500)), 1);
  den.add(net::SimTime::at(net::Duration::millis(500)), 4);
  den.add(net::SimTime::at(net::Duration::millis(1500)), 2);
  const auto ratio = ratio_series(num, den);
  EXPECT_DOUBLE_EQ(ratio[0], 0.25);
  EXPECT_DOUBLE_EQ(ratio[1], 0.0);
  EXPECT_DOUBLE_EQ(ratio[2], 0.0);  // zero denominator -> 0

  const auto cumulative = cumulative_ratio_series(num, den);
  EXPECT_DOUBLE_EQ(cumulative[0], 0.25);
  EXPECT_DOUBLE_EQ(cumulative[1], 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(cumulative[2], 1.0 / 6.0);
}

TEST(BinnedSeries, MismatchedRatioThrows) {
  BinnedSeries a(net::SimTime::epoch(), net::Duration::seconds(1), 3);
  BinnedSeries b(net::SimTime::epoch(), net::Duration::seconds(1), 4);
  EXPECT_THROW(ratio_series(a, b), std::invalid_argument);
}

TEST(Sparkline, RendersPeaks) {
  const std::string line = sparkline({0, 0, 1.0, 0, 0}, 5);
  ASSERT_EQ(line.size(), 5u);
  EXPECT_EQ(line[2], '#');
  EXPECT_EQ(line[0], ' ');
  EXPECT_EQ(sparkline({}, 10), "");
}

}  // namespace
}  // namespace orion::stats

// NOTE: appended suites — reservoir sampling and KS distance.
#include "orion/stats/reservoir.hpp"

namespace orion::stats {
namespace {

TEST(ReservoirSampler, KeepsEverythingBelowCapacity) {
  ReservoirSampler<int> sampler(100, 1);
  for (int i = 0; i < 50; ++i) sampler.add(i);
  EXPECT_EQ(sampler.sample().size(), 50u);
  EXPECT_EQ(sampler.seen(), 50u);
  EXPECT_FALSE(sampler.saturated());
}

TEST(ReservoirSampler, BoundedAndUniformOverStream) {
  // Each of 10k elements should survive with probability 100/10000.
  const int trials = 300;
  std::vector<int> hits(10, 0);  // bucket stream positions by decile
  for (int t = 0; t < trials; ++t) {
    ReservoirSampler<int> sampler(100, static_cast<std::uint64_t>(t));
    for (int i = 0; i < 10000; ++i) sampler.add(i);
    EXPECT_EQ(sampler.sample().size(), 100u);
    for (const int v : sampler.sample()) ++hits[v / 1000];
  }
  // Expect trials*100/10 = 3000 per decile.
  for (const int h : hits) EXPECT_NEAR(h, 3000, 350);
}

TEST(KsDistance, IdenticalAndDisjointDistributions) {
  Ecdf a({1, 2, 3, 4, 5});
  Ecdf b({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 0.0);
  Ecdf c({100, 200, 300});
  EXPECT_DOUBLE_EQ(ks_distance(a, c), 1.0);
  Ecdf empty;
  EXPECT_THROW(ks_distance(a, empty), std::logic_error);
}

TEST(KsDistance, KnownValue) {
  // F_a steps at 1,2; F_b steps at 2,3. At x=1: |0.5 - 0| = 0.5.
  Ecdf a({1, 2});
  Ecdf b({2, 3});
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 0.5);
  EXPECT_DOUBLE_EQ(ks_distance(b, a), 0.5);  // symmetric
}

TEST(KsDistance, DetectsShift) {
  net::Rng rng(9);
  Ecdf a, b;
  for (int i = 0; i < 5000; ++i) {
    a.add(rng.bounded(1000));
    b.add(rng.bounded(1000) + 250);
  }
  EXPECT_GT(ks_distance(a, b), 0.2);
}

}  // namespace
}  // namespace orion::stats

// NOTE: appended suite — P² streaming quantile.
#include "orion/stats/p2_quantile.hpp"

namespace orion::stats {
namespace {

TEST(P2Quantile, ExactForSmallSamples) {
  P2Quantile p2(0.5);
  EXPECT_DOUBLE_EQ(p2.estimate(), 0.0);  // empty
  p2.add(7);
  EXPECT_DOUBLE_EQ(p2.estimate(), 7.0);
  p2.add(3);
  p2.add(9);
  EXPECT_DOUBLE_EQ(p2.estimate(), 7.0);  // median of {3,7,9}
}

TEST(P2Quantile, RejectsBadQuantile) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
}

class P2Accuracy : public testing::TestWithParam<double> {};

TEST_P(P2Accuracy, TracksUniformQuantile) {
  const double q = GetParam();
  P2Quantile p2(q);
  net::Rng rng(31);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.uniform() * 1000.0;
    p2.add(v);
    samples.push_back(v);
  }
  std::sort(samples.begin(), samples.end());
  const double exact = samples[static_cast<std::size_t>(q * samples.size())];
  // P2 is approximate; a few percent of the range is fine.
  EXPECT_NEAR(p2.estimate(), exact, 25.0);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2Accuracy,
                         testing::Values(0.1, 0.5, 0.9, 0.99));

TEST(P2Quantile, TracksHeavyTail) {
  // Pareto-ish tail: P2 must still land in the right decade.
  P2Quantile p2(0.99);
  net::Rng rng(32);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) {
    const double v = std::pow(1.0 - rng.uniform(), -1.2);
    p2.add(v);
    samples.push_back(v);
  }
  std::sort(samples.begin(), samples.end());
  const double exact = samples[static_cast<std::size_t>(0.99 * samples.size())];
  EXPECT_GT(p2.estimate(), exact * 0.5);
  EXPECT_LT(p2.estimate(), exact * 2.0);
}

// ----------------------------------------------------------- BottomKSampler

// The property the parallel pipeline's determinism rests on: a bottom-k
// sample is a pure function of the SET of identities seen — insertion
// order cannot matter.
TEST(BottomKSampler, OrderIndependent) {
  BottomKSampler forward(50, 7);
  BottomKSampler backward(50, 7);
  for (std::uint64_t i = 0; i < 1000; ++i) forward.add(i, 0, i * 3);
  for (std::uint64_t i = 1000; i-- > 0;) backward.add(i, 0, i * 3);
  EXPECT_EQ(forward, backward);
  // values() order reflects heap layout (callers sort — Ecdf does); the
  // sampled multiset itself must be order-independent.
  auto vf = forward.values(), vb = backward.values();
  std::sort(vf.begin(), vf.end());
  std::sort(vb.begin(), vb.end());
  EXPECT_EQ(vf, vb);
  EXPECT_EQ(forward.seen(), 1000u);
  EXPECT_EQ(forward.sample_size(), 50u);
}

// Exact mergeability: bottom-k of a union equals the merge of per-part
// bottom-k samples, for any partition.
TEST(BottomKSampler, MergeEqualsWholeStreamSample) {
  BottomKSampler whole(64, 42);
  BottomKSampler parts[3] = {BottomKSampler(64, 42), BottomKSampler(64, 42),
                             BottomKSampler(64, 42)};
  for (std::uint64_t i = 0; i < 5000; ++i) {
    whole.add(i, i ^ 17, i % 97);
    parts[i % 3].add(i, i ^ 17, i % 97);
  }
  BottomKSampler merged(64, 42);
  for (const BottomKSampler& part : parts) merged.merge(part);
  EXPECT_EQ(merged, whole);
  EXPECT_EQ(merged.seen(), whole.seen());
  auto vm = merged.values(), vw = whole.values();
  std::sort(vm.begin(), vm.end());
  std::sort(vw.begin(), vw.end());
  EXPECT_EQ(vm, vw);
}

TEST(BottomKSampler, KeepsEverythingBelowCapacity) {
  BottomKSampler sampler(100, 1);
  for (std::uint64_t i = 0; i < 60; ++i) sampler.add(i, 0, i + 1);
  EXPECT_EQ(sampler.sample_size(), 60u);
  auto values = sampler.values();
  std::sort(values.begin(), values.end());
  for (std::uint64_t i = 0; i < 60; ++i) EXPECT_EQ(values[i], i + 1);
}

TEST(BottomKSampler, SeedChangesTheSample) {
  BottomKSampler a(20, 1);
  BottomKSampler b(20, 2);
  for (std::uint64_t i = 0; i < 500; ++i) {
    a.add(i, 0, i);
    b.add(i, 0, i);
  }
  auto va = a.values(), vb = b.values();
  std::sort(va.begin(), va.end());
  std::sort(vb.begin(), vb.end());
  EXPECT_NE(va, vb);
}

TEST(BottomKSampler, RestoreRoundTrips) {
  BottomKSampler sampler(30, 9);
  for (std::uint64_t i = 0; i < 300; ++i) sampler.add(i, i + 1, i * 7);
  BottomKSampler restored(30, 9);
  restored.restore(sampler.seen(), sampler.sorted_entries());
  EXPECT_EQ(restored, sampler);
  // A restored sampler must keep evolving identically.
  sampler.add(1000, 0, 5);
  restored.add(1000, 0, 5);
  EXPECT_EQ(restored, sampler);
}

}  // namespace
}  // namespace orion::stats
