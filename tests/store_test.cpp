// ODE2 columnar store tests: ODE1 <-> ODE2 round-trip equivalence, the
// zero-copy query surface (day index, zone maps, parallel_scan), the
// corrupt-input salvage corpus mirroring tests/telescope_test.cpp, and
// the analysis-equivalence pins (detection and darknet mixes fed from an
// mmap'ed archive must match the materialized-dataset paths exactly).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "orion/detect/detector.hpp"
#include "orion/impact/flow_join.hpp"
#include "orion/scangen/event_synth.hpp"
#include "orion/scangen/scenario.hpp"
#include "orion/store/mapped.hpp"
#include "orion/store/ode2.hpp"
#include "orion/telescope/capture.hpp"
#include "orion/telescope/store.hpp"

namespace orion::store {
namespace {

using telescope::DarknetEvent;
using telescope::EventDataset;

/// 100 events spanning ~13 days: same shape as telescope_test's sample
/// but spread across days so the day index and zone maps have structure.
EventDataset sample_dataset() {
  std::vector<DarknetEvent> events;
  for (int i = 0; i < 100; ++i) {
    DarknetEvent e;
    e.key.src = net::Ipv4Address(0xCB007100u + static_cast<std::uint32_t>(i % 37));
    e.key.dst_port = static_cast<std::uint16_t>(i % 7 == 0 ? 0 : 6379);
    e.key.type = i % 7 == 0 ? pkt::TrafficType::IcmpEchoReq
                            : pkt::TrafficType::TcpSyn;
    e.start = net::SimTime::at(net::Duration::seconds(11000 * i));
    e.end = e.start + net::Duration::seconds(40);
    e.packets = 10 + static_cast<std::uint64_t>(i);
    e.unique_dests = 5 + static_cast<std::uint64_t>(i);
    e.packets_by_tool[telescope::tool_index(pkt::ScanTool::ZMap)] = e.packets;
    events.push_back(e);
  }
  return EventDataset(std::move(events), 4096);
}

/// RAII temp file seeded with the given bytes. The path embeds the PID:
/// gtest tests run as separate concurrent ctest processes, so a bare
/// counter would collide across them.
class TempFile {
 public:
  explicit TempFile(const std::string& bytes, const char* tag = "ode2") {
    static int counter = 0;
    path_ = (std::filesystem::temp_directory_path() /
             ("orion_store_test_" + std::to_string(::getpid()) + "_" +
              std::to_string(++counter) + "_" + tag))
                .string();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string ode2_bytes(const EventDataset& dataset,
                       std::uint64_t block_events = kOde2DefaultBlockEvents) {
  std::stringstream stream;
  write_events_ode2(dataset, stream, block_events);
  return stream.str();
}

std::string ode1_bytes(const EventDataset& dataset) {
  std::stringstream stream;
  telescope::write_events_binary(dataset, stream);
  return stream.str();
}

void expect_identical(const EventDataset& a, const EventDataset& b) {
  EXPECT_EQ(a.darknet_size(), b.darknet_size());
  ASSERT_EQ(a.event_count(), b.event_count());
  for (std::size_t i = 0; i < a.event_count(); ++i) {
    EXPECT_EQ(a.events()[i], b.events()[i]) << "event " << i;
  }
  // Byte-identical when re-serialized in ODE1 form: nothing was lost.
  EXPECT_EQ(ode1_bytes(a), ode1_bytes(b));
}

// ------------------------------------------------------------- round trip

TEST(Ode2RoundTrip, DatasetSurvivesByteIdentical) {
  const EventDataset original = sample_dataset();
  const TempFile file(ode2_bytes(original));
  const MappedEventStore store(file.path());
  EXPECT_EQ(store.event_count(), 100u);
  EXPECT_EQ(store.darknet_size(), 4096u);
  EXPECT_EQ(store.first_day(), original.first_day());
  EXPECT_EQ(store.last_day(), original.last_day());
  EXPECT_EQ(store.verify_blocks(), store.block_count());
  expect_identical(original, store.to_dataset());
}

TEST(Ode2RoundTrip, EveryBlockSizeYieldsTheSameDataset) {
  const EventDataset original = sample_dataset();
  for (const std::uint64_t block_events : {1u, 3u, 16u, 100u, 1024u}) {
    const TempFile file(ode2_bytes(original, block_events));
    const MappedEventStore store(file.path());
    const std::uint64_t expect_blocks =
        (100 + block_events - 1) / block_events;
    EXPECT_EQ(store.block_count(), expect_blocks) << block_events;
    expect_identical(original, store.to_dataset());
  }
}

TEST(Ode2RoundTrip, EmptyDatasetRoundTrips) {
  const EventDataset original({}, 512);
  const TempFile file(ode2_bytes(original));
  const MappedEventStore store(file.path());
  EXPECT_EQ(store.event_count(), 0u);
  EXPECT_EQ(store.block_count(), 0u);
  EXPECT_EQ(store.darknet_size(), 512u);
  EXPECT_EQ(store.to_dataset().event_count(), 0u);
  std::size_t visited = 0;
  store.for_each_event([&](const EventRow&) { ++visited; });
  EXPECT_EQ(visited, 0u);
}

TEST(Ode2RoundTrip, WriterRejectsBadBlockSize) {
  const EventDataset dataset = sample_dataset();
  std::stringstream out;
  EXPECT_THROW(write_events_ode2(dataset, out, 0), std::invalid_argument);
  EXPECT_THROW(write_events_ode2(dataset, out, std::uint64_t{1} << 60),
               std::invalid_argument);
}

// ------------------------------------------------------ zero-copy queries

TEST(MappedStore, DayRangeMatchesLinearScan) {
  const EventDataset dataset = sample_dataset();
  const TempFile file(ode2_bytes(dataset, 16));
  const MappedEventStore store(file.path());
  for (std::int64_t day = dataset.first_day() - 1;
       day <= dataset.last_day() + 1; ++day) {
    std::uint64_t lo = dataset.event_count(), hi = 0, count = 0;
    for (std::size_t i = 0; i < dataset.event_count(); ++i) {
      if (dataset.events()[i].day() != day) continue;
      lo = std::min<std::uint64_t>(lo, i);
      hi = std::max<std::uint64_t>(hi, i + 1);
      ++count;
    }
    const auto [begin, end] = store.day_range(day);
    if (count == 0) {
      EXPECT_EQ(begin, end) << "day " << day;
    } else {
      EXPECT_EQ(begin, lo) << "day " << day;
      EXPECT_EQ(end, hi) << "day " << day;
    }
    std::uint64_t visited = 0;
    std::uint64_t packets = 0;
    store.for_each_event_on_day(day, [&](const EventRow& e) {
      EXPECT_EQ(e.day(), day);
      packets += e.packets;
      ++visited;
    });
    EXPECT_EQ(visited, count) << "day " << day;
  }
}

TEST(MappedStore, EventAccessorMatchesDataset) {
  const EventDataset dataset = sample_dataset();
  const TempFile file(ode2_bytes(dataset, 7));
  const MappedEventStore store(file.path());
  for (std::size_t i = 0; i < dataset.event_count(); ++i) {
    EXPECT_EQ(store.event(i), dataset.events()[i]) << "row " << i;
  }
  EXPECT_THROW(store.event(dataset.event_count()), std::runtime_error);
}

TEST(MappedStore, ZoneMapPruningLosesNoMatchingRows) {
  const EventDataset dataset = sample_dataset();
  const TempFile file(ode2_bytes(dataset, 8));
  const MappedEventStore store(file.path());
  const std::int64_t day_lo = dataset.first_day() + 2;
  const std::int64_t day_hi = dataset.first_day() + 5;
  const std::uint32_t src_lo = 0xCB007100u + 5;
  const std::uint32_t src_hi = 0xCB007100u + 20;

  std::uint64_t expected = 0;
  for (const DarknetEvent& e : dataset.events()) {
    if (e.day() >= day_lo && e.day() <= day_hi &&
        e.key.src.value() >= src_lo && e.key.src.value() <= src_hi) {
      ++expected;
    }
  }
  ASSERT_GT(expected, 0u);

  // Blocks are a superset (zone maps prune, never filter rows); the
  // row-level predicate inside the visited blocks must find every match.
  std::uint64_t found = 0;
  store.for_each_block(day_lo, day_hi, src_lo, src_hi,
                       [&](const BlockView& view) {
                         for (std::size_t i = 0; i < view.rows(); ++i) {
                           const std::int64_t day =
                               net::SimTime::at(
                                   net::Duration::nanos(view.start_ns[i]))
                                   .day();
                           if (day >= day_lo && day <= day_hi &&
                               view.src[i] >= src_lo && view.src[i] <= src_hi) {
                             ++found;
                           }
                         }
                       });
  EXPECT_EQ(found, expected);

  // A (day, src) window matching nothing visits no blocks at all.
  std::size_t blocks_visited = 0;
  store.for_each_block(dataset.last_day() + 10, dataset.last_day() + 20, 0,
                       0xFFFFFFFFu,
                       [&](const BlockView&) { ++blocks_visited; });
  EXPECT_EQ(blocks_visited, 0u);
}

TEST(MappedStore, ParallelScanIdenticalForAnyThreadCount) {
  const EventDataset dataset = sample_dataset();
  const TempFile file(ode2_bytes(dataset, 4));  // 25 blocks
  const MappedEventStore store(file.path());

  // The state records a per-block digest in visit order, so any change in
  // partitioning or merge order shows up as a different vector.
  struct Digests {
    std::vector<std::uint64_t> per_block;
  };
  const auto scan = [&](std::size_t n_threads) {
    return store.parallel_scan<Digests>(
        n_threads,
        [](Digests& state, const BlockView& view) {
          std::uint64_t digest = view.first_row * 1000003u;
          for (std::size_t i = 0; i < view.rows(); ++i) {
            digest = digest * 31 + view.packets[i] + view.src[i];
          }
          state.per_block.push_back(digest);
        },
        [](Digests& into, Digests&& from) {
          into.per_block.insert(into.per_block.end(), from.per_block.begin(),
                                from.per_block.end());
        });
  };

  const Digests reference = scan(1);
  ASSERT_EQ(reference.per_block.size(), store.block_count());
  for (const std::size_t n : {2u, 3u, 4u, 7u, 16u, 64u}) {
    EXPECT_EQ(scan(n).per_block, reference.per_block) << n << " threads";
  }
  EXPECT_EQ(scan(0).per_block, reference.per_block);  // hardware default
}

// ------------------------------------------------- strict-open rejection

TEST(MappedStore, StrictOpenRejectsCorruption) {
  const std::string bytes = ode2_bytes(sample_dataset(), 16);
  {  // bad magic
    std::string bad = bytes;
    bad[0] = 'X';
    const TempFile file(bad);
    EXPECT_THROW(MappedEventStore{file.path()}, std::runtime_error);
  }
  {  // header payload flip breaks the header CRC
    std::string bad = bytes;
    bad[9] ^= 0x40;
    const TempFile file(bad);
    EXPECT_THROW(MappedEventStore{file.path()}, std::runtime_error);
  }
  {  // truncation anywhere breaks the geometry
    const TempFile file(bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW(MappedEventStore{file.path()}, std::runtime_error);
  }
  {  // footer flip breaks the footer CRC
    std::string bad = bytes;
    bad[bad.size() - 3] ^= 0x01;
    const TempFile file(bad);
    EXPECT_THROW(MappedEventStore{file.path()}, std::runtime_error);
  }
  {  // block payload corruption is lazy: open succeeds, verify catches it
    std::string bad = bytes;
    bad[kOde2HeaderBytes + ode2_block_bytes(16) + 5] ^= 0x10;  // block 1
    const TempFile file(bad);
    const MappedEventStore store(file.path());
    EXPECT_EQ(store.verify_blocks(), 1u);
  }
}

// --------------------------- corrupt-input corpus: truncation + bit flips

TEST(Ode2Salvage, CleanFileIsComplete) {
  const TempFile file(ode2_bytes(sample_dataset(), 16));
  const Ode2SalvageResult result = read_events_ode2_salvage(file.path());
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.footer_intact);
  EXPECT_TRUE(result.error.empty());
  EXPECT_EQ(result.declared_count, 100u);
  EXPECT_EQ(result.recovered_count, 100u);
  expect_identical(sample_dataset(), result.dataset);
}

TEST(Ode2Salvage, RecoversBlockPrefixOfTruncatedFile) {
  const EventDataset original = sample_dataset();
  const std::string bytes = ode2_bytes(original, 16);  // 6x16 + 1x4 rows
  const std::uint64_t block_bytes = ode2_block_bytes(16);
  // Sweep truncation points: block boundary, one byte in, one byte short
  // of the next boundary — salvage must recover exactly the complete
  // blocks preceding the cut, via header geometry (the footer is gone).
  for (const std::uint64_t keep_blocks : {0u, 1u, 3u, 6u}) {
    for (const std::uint64_t extra : {std::uint64_t{0}, std::uint64_t{1},
                                      block_bytes - 1}) {
      const std::uint64_t cut =
          kOde2HeaderBytes + keep_blocks * block_bytes + extra;
      if (cut >= bytes.size()) continue;
      const TempFile file(bytes.substr(0, cut));
      const Ode2SalvageResult result = read_events_ode2_salvage(file.path());
      EXPECT_FALSE(result.complete);
      EXPECT_FALSE(result.footer_intact);
      EXPECT_FALSE(result.error.empty());
      EXPECT_EQ(result.declared_count, 100u);
      EXPECT_EQ(result.recovered_count, keep_blocks * 16) << "cut at " << cut;
      // Recovered prefix is the original's, byte for byte.
      for (std::size_t i = 0; i < result.recovered_count; ++i) {
        EXPECT_EQ(result.dataset.events()[i], original.events()[i]);
      }
      // The strict reader throws the whole archive away on the same input.
      EXPECT_THROW(MappedEventStore{file.path()}, std::runtime_error);
    }
  }
}

TEST(Ode2Salvage, FooterLossAloneStillRecoversEverything) {
  const std::string bytes = ode2_bytes(sample_dataset(), 16);
  const std::uint64_t data_end =
      kOde2HeaderBytes + 6 * ode2_block_bytes(16) + ode2_block_bytes(4);
  const TempFile file(bytes.substr(0, data_end));
  const Ode2SalvageResult result = read_events_ode2_salvage(file.path());
  EXPECT_FALSE(result.complete);
  EXPECT_FALSE(result.footer_intact);
  EXPECT_EQ(result.recovered_count, 100u);  // all blocks, no footer
  expect_identical(sample_dataset(), result.dataset);
}

TEST(Ode2Salvage, FooterCrcCatchesBlockBitFlip) {
  std::string bytes = ode2_bytes(sample_dataset(), 16);
  // Flip one payload byte of block 2: the footer is intact, so the
  // per-block CRCs stop recovery exactly there.
  bytes[kOde2HeaderBytes + 2 * ode2_block_bytes(16) + 11] ^= 0x04;
  const TempFile file(bytes);
  const Ode2SalvageResult result = read_events_ode2_salvage(file.path());
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.footer_intact);
  EXPECT_EQ(result.recovered_count, 32u);
  EXPECT_NE(result.error.find("CRC"), std::string::npos);
}

TEST(Ode2Salvage, StopsAtBitFlippedTrafficTypeWithoutFooter) {
  std::string bytes = ode2_bytes(sample_dataset(), 16);
  // No footer (truncated off) AND a type-column byte of block 1 flipped
  // out of range: geometry-mode salvage keeps block 0 only.
  const std::uint64_t block_bytes = ode2_block_bytes(16);
  const std::uint64_t type_col = kOde2HeaderBytes + block_bytes + 70 * 16;
  bytes[type_col + 3] = static_cast<char>(0x7F);
  const std::uint64_t data_end = kOde2HeaderBytes + 6 * block_bytes +
                                 ode2_block_bytes(4);
  const TempFile file(bytes.substr(0, data_end));
  const Ode2SalvageResult result = read_events_ode2_salvage(file.path());
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.recovered_count, 16u);
  EXPECT_NE(result.error.find("traffic type"), std::string::npos);
}

TEST(Ode2Salvage, BadMagicRecoversNothing) {
  std::string bytes = ode2_bytes(sample_dataset());
  bytes[1] = '!';
  const TempFile file(bytes);
  const Ode2SalvageResult result = read_events_ode2_salvage(file.path());
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.declared_count, 0u);
  EXPECT_EQ(result.recovered_count, 0u);
  EXPECT_NE(result.error.find("magic"), std::string::npos);
}

TEST(Ode2Salvage, TruncatedHeaderRecoversNothing) {
  const std::string bytes = ode2_bytes(sample_dataset());
  for (const std::size_t cut : {0u, 2u, 4u, 17u, 39u}) {
    const TempFile file(bytes.substr(0, cut));
    const Ode2SalvageResult result = read_events_ode2_salvage(file.path());
    EXPECT_FALSE(result.complete);
    EXPECT_EQ(result.recovered_count, 0u) << "cut at " << cut;
  }
}

// ------------------------------------------------ format sniffing / auto

TEST(Ode2Auto, SniffsAndLoadsBothFormats) {
  const EventDataset original = sample_dataset();
  const TempFile f1(ode1_bytes(original), "ode1");
  const TempFile f2(ode2_bytes(original), "ode2");
  const TempFile junk("not an event archive at all", "junk");
  EXPECT_EQ(sniff_event_format(f1.path()), "ODE1");
  EXPECT_EQ(sniff_event_format(f2.path()), "ODE2");
  EXPECT_EQ(sniff_event_format(junk.path()), "?");
  expect_identical(original, load_events_auto(f1.path()));
  expect_identical(original, load_events_auto(f2.path()));
  EXPECT_THROW(load_events_auto(junk.path()), std::runtime_error);
}

// ------------------------------------- analysis equivalence (zero-copy)

EventDataset synthesized_dataset() {
  const scangen::Scenario scenario{scangen::tiny()};
  return EventDataset(
      scangen::synthesize_events(
          scenario.population_2021(),
          {.darknet_size = scenario.darknet().total_addresses(),
           .seed = scenario.config().seed}),
      scenario.darknet().total_addresses());
}

TEST(ZeroCopyAnalysis, DetectionMatchesDatasetPath) {
  const EventDataset dataset = synthesized_dataset();
  const TempFile file(ode2_bytes(dataset));
  const MappedEventStore store(file.path());

  const detect::AggressiveScannerDetector detector(
      {.dispersion_threshold = 0.10,
       .packet_volume_alpha = 0.028,
       .port_count_alpha = 2e-4});
  const detect::DetectionResult a = detector.detect(dataset);
  const detect::DetectionResult b = detector.detect(store);

  EXPECT_EQ(a.first_day, b.first_day);
  EXPECT_EQ(a.last_day, b.last_day);
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.darknet_size, b.darknet_size);
  EXPECT_EQ(a.total_event_packets_per_day, b.total_event_packets_per_day);
  for (const detect::Definition d : detect::kAllDefinitions) {
    const detect::DefinitionResult& ra = a.of(d);
    const detect::DefinitionResult& rb = b.of(d);
    EXPECT_EQ(ra.ips, rb.ips) << to_string(d);
    EXPECT_EQ(ra.threshold, rb.threshold) << to_string(d);
    EXPECT_EQ(ra.qualifying_events, rb.qualifying_events) << to_string(d);
    EXPECT_EQ(ra.daily, rb.daily) << to_string(d);
    EXPECT_EQ(ra.active, rb.active) << to_string(d);
    EXPECT_EQ(ra.daily_ah_packets, rb.daily_ah_packets) << to_string(d);
  }
}

TEST(ZeroCopyAnalysis, DarknetMixesMatchDatasetPath) {
  const EventDataset dataset = synthesized_dataset();
  const TempFile file(ode2_bytes(dataset));
  const MappedEventStore store(file.path());

  detect::IpSet sources;
  for (std::size_t i = 0; i < dataset.event_count(); i += 3) {
    sources.insert(dataset.events()[i].key.src);
  }

  const impact::DailyDarknetMix from_dataset(dataset, sources);
  const impact::DailyDarknetMix from_store(store, sources);
  EXPECT_EQ(from_dataset.first_day(), from_store.first_day());
  EXPECT_EQ(from_dataset.last_day(), from_store.last_day());
  for (std::int64_t day = dataset.first_day() - 1;
       day <= dataset.last_day() + 1; ++day) {
    EXPECT_EQ(from_dataset.protocols(day), from_store.protocols(day))
        << "day " << day;
    EXPECT_EQ(from_dataset.ports(day).counts(), from_store.ports(day).counts())
        << "day " << day;
    // The one-shot per-day queries agree with both.
    EXPECT_EQ(impact::darknet_protocol_mix(dataset, day, sources),
              impact::darknet_protocol_mix(store, day, sources));
    EXPECT_EQ(impact::darknet_port_mix(dataset, day, sources).counts(),
              impact::darknet_port_mix(store, day, sources).counts());
  }
}

}  // namespace
}  // namespace orion::store
