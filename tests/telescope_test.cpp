#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "orion/packet/builder.hpp"
#include "orion/scangen/event_synth.hpp"
#include "orion/scangen/packet_gen.hpp"
#include "orion/scangen/scenario.hpp"
#include "orion/telescope/aggregator.hpp"
#include "orion/telescope/capture.hpp"
#include "orion/telescope/timeout.hpp"

namespace orion::telescope {
namespace {

net::Ipv4Address ip(const char* text) { return *net::Ipv4Address::parse(text); }

net::PrefixSet dark_space() {
  return net::PrefixSet({*net::Prefix::parse("198.18.0.0/24")});
}

pkt::Packet probe(net::SimTime t, const char* src, const char* dst,
                  std::uint16_t port) {
  pkt::ProbeBuilder builder(ip(src), pkt::ScanTool::Other, net::Rng(1));
  return builder.tcp_syn(t, ip(dst), port);
}

// ------------------------------------------------------------------ timeout

TEST(Timeout, PaperParametersGiveAboutTenMinutes) {
  // 475k dark IPs, 100 pps, 2-day scan -> the paper's "around 10 minutes".
  const net::Duration timeout =
      derive_timeout(475000, 100.0, net::Duration::days(2));
  EXPECT_GT(timeout, net::Duration::minutes(8));
  EXPECT_LT(timeout, net::Duration::minutes(15));
}

TEST(Timeout, ScalesInverselyWithDarknetSize) {
  const net::Duration big = derive_timeout(475000, 100.0, net::Duration::days(2));
  const net::Duration small = derive_timeout(32768, 100.0, net::Duration::days(2));
  EXPECT_GT(small, big);  // smaller darknet -> rarer hits -> longer timeout
}

TEST(Timeout, RejectsBadInputs) {
  EXPECT_THROW(derive_timeout(0, 100, net::Duration::days(1)),
               std::invalid_argument);
  EXPECT_THROW(derive_timeout(1000, 0, net::Duration::days(1)),
               std::invalid_argument);
  EXPECT_THROW(derive_timeout(1000, 100, net::Duration::seconds(0)),
               std::invalid_argument);
}

// --------------------------------------------------------------- aggregator

AggregatorConfig fast_config() {
  AggregatorConfig config;
  config.timeout = net::Duration::minutes(10);
  config.sweep_interval = net::Duration::minutes(1);
  return config;
}

TEST(EventAggregator, SingleScanYieldsOneEvent) {
  EventCollector collector;
  EventAggregator agg(dark_space(), fast_config(), collector.sink());
  net::SimTime t = net::SimTime::epoch();
  for (int i = 0; i < 256; ++i) {
    pkt::Packet p = probe(t, "203.0.113.1", "198.18.0.0", 23);
    p.tuple.dst = net::Ipv4Address(ip("198.18.0.0").value() + i);
    agg.observe(p);
    t = t + net::Duration::seconds(1);
  }
  agg.finish();
  ASSERT_EQ(collector.events().size(), 1u);
  const DarknetEvent& e = collector.events()[0];
  EXPECT_EQ(e.packets, 256u);
  EXPECT_EQ(e.unique_dests, 256u);
  EXPECT_DOUBLE_EQ(e.dispersion(256), 1.0);
  EXPECT_EQ(e.key.src, ip("203.0.113.1"));
  EXPECT_EQ(e.key.dst_port, 23);
  EXPECT_EQ(e.start, net::SimTime::epoch());
  EXPECT_EQ(e.end, net::SimTime::epoch() + net::Duration::seconds(255));
}

TEST(EventAggregator, TimeoutSplitsIdleScans) {
  EventCollector collector;
  EventAggregator agg(dark_space(), fast_config(), collector.sink());
  agg.observe(probe(net::SimTime::epoch(), "203.0.113.1", "198.18.0.1", 80));
  // Second packet after more than the 10-minute timeout.
  agg.observe(probe(net::SimTime::epoch() + net::Duration::minutes(25),
                    "203.0.113.1", "198.18.0.2", 80));
  agg.finish();
  EXPECT_EQ(collector.events().size(), 2u);
}

TEST(EventAggregator, GapBelowTimeoutDoesNotSplit) {
  EventCollector collector;
  EventAggregator agg(dark_space(), fast_config(), collector.sink());
  agg.observe(probe(net::SimTime::epoch(), "203.0.113.1", "198.18.0.1", 80));
  agg.observe(probe(net::SimTime::epoch() + net::Duration::minutes(9),
                    "203.0.113.1", "198.18.0.2", 80));
  agg.finish();
  EXPECT_EQ(collector.events().size(), 1u);
}

TEST(EventAggregator, SeparatesByPortTypeAndSource) {
  EventCollector collector;
  EventAggregator agg(dark_space(), fast_config(), collector.sink());
  const net::SimTime t = net::SimTime::epoch();
  agg.observe(probe(t, "203.0.113.1", "198.18.0.1", 23));
  agg.observe(probe(t, "203.0.113.1", "198.18.0.1", 2323));
  agg.observe(probe(t, "203.0.113.2", "198.18.0.1", 23));
  pkt::ProbeBuilder udp_builder(ip("203.0.113.1"), pkt::ScanTool::Other,
                                net::Rng(2));
  agg.observe(udp_builder.udp_probe(t, ip("198.18.0.1"), 23));  // UDP/23
  agg.finish();
  EXPECT_EQ(collector.events().size(), 4u);
}

TEST(EventAggregator, IcmpEventsUsePortZero) {
  EventCollector collector;
  EventAggregator agg(dark_space(), fast_config(), collector.sink());
  pkt::ProbeBuilder builder(ip("203.0.113.1"), pkt::ScanTool::Other, net::Rng(3));
  agg.observe(builder.icmp_echo(net::SimTime::epoch(), ip("198.18.0.9")));
  agg.finish();
  ASSERT_EQ(collector.events().size(), 1u);
  EXPECT_EQ(collector.events()[0].key.dst_port, 0);
  EXPECT_EQ(collector.events()[0].key.type, pkt::TrafficType::IcmpEchoReq);
}

TEST(EventAggregator, IgnoresNonScanningAndOutOfSpace) {
  EventCollector collector;
  EventAggregator agg(dark_space(), fast_config(), collector.sink());
  // SYN-ACK backscatter into the dark space: counted, not an event.
  pkt::Packet backscatter = probe(net::SimTime::epoch(), "203.0.113.1",
                                  "198.18.0.1", 80);
  backscatter.tcp_flags = pkt::TcpFlags::kSyn | pkt::TcpFlags::kAck;
  agg.observe(backscatter);
  // Scanning packet to an address OUTSIDE the dark space.
  agg.observe(probe(net::SimTime::epoch(), "203.0.113.1", "8.8.8.8", 80));
  agg.finish();
  EXPECT_EQ(collector.events().size(), 0u);
  EXPECT_EQ(agg.packets_seen(), 2u);
  EXPECT_EQ(agg.ignored_non_scanning(), 1u);
  EXPECT_EQ(agg.ignored_out_of_space(), 1u);
  EXPECT_EQ(agg.scanning_packets(), 0u);
}

TEST(EventAggregator, RejectsTimeRegression) {
  EventCollector collector;
  EventAggregator agg(dark_space(), fast_config(), collector.sink());
  agg.observe(probe(net::SimTime::at(net::Duration::seconds(100)), "203.0.113.1",
                    "198.18.0.1", 80));
  EXPECT_THROW(agg.observe(probe(net::SimTime::at(net::Duration::seconds(99)),
                                 "203.0.113.1", "198.18.0.1", 80)),
               std::invalid_argument);
}

TEST(EventAggregator, AdvanceToExpiresIdleEvents) {
  EventCollector collector;
  EventAggregator agg(dark_space(), fast_config(), collector.sink());
  agg.observe(probe(net::SimTime::epoch(), "203.0.113.1", "198.18.0.1", 80));
  EXPECT_EQ(agg.live_events(), 1u);
  agg.advance_to(net::SimTime::epoch() + net::Duration::hours(1));
  EXPECT_EQ(agg.live_events(), 0u);
  EXPECT_EQ(collector.events().size(), 1u);
}

TEST(EventAggregator, ToolAttributionPerPacket) {
  EventCollector collector;
  EventAggregator agg(dark_space(), fast_config(), collector.sink());
  pkt::ProbeBuilder zmap(ip("203.0.113.1"), pkt::ScanTool::ZMap, net::Rng(4));
  pkt::ProbeBuilder mirai(ip("203.0.113.1"), pkt::ScanTool::Mirai, net::Rng(5));
  net::SimTime t = net::SimTime::epoch();
  for (int i = 0; i < 3; ++i) {
    agg.observe(zmap.tcp_syn(t, ip("198.18.0.1"), 23));
    t = t + net::Duration::seconds(1);
  }
  agg.observe(mirai.tcp_syn(t, ip("198.18.0.2"), 23));
  agg.finish();
  ASSERT_EQ(collector.events().size(), 1u);
  const DarknetEvent& e = collector.events()[0];
  EXPECT_EQ(e.packets_by_tool[tool_index(pkt::ScanTool::ZMap)], 3u);
  EXPECT_EQ(e.packets_by_tool[tool_index(pkt::ScanTool::Mirai)], 1u);
  EXPECT_EQ(e.dominant_tool(), pkt::ScanTool::ZMap);
}

// ------------------------------------------------------------------ capture

TEST(TelescopeCapture, DatasetStatistics) {
  TelescopeCapture capture(dark_space(), fast_config());
  net::SimTime t = net::SimTime::at(net::Duration::days(5));
  for (int src = 0; src < 4; ++src) {
    pkt::ProbeBuilder builder(net::Ipv4Address(0xCB007100u + src),
                              pkt::ScanTool::Other, net::Rng(src));
    for (int i = 0; i < 10; ++i) {
      capture.observe(builder.tcp_syn(t, net::Ipv4Address(ip("198.18.0.0").value() + i),
                                      22));
      t = t + net::Duration::seconds(2);
    }
  }
  const EventDataset dataset = capture.finish();
  EXPECT_EQ(capture.packets_captured(), 40u);
  EXPECT_EQ(capture.unique_sources(), 4u);
  EXPECT_EQ(dataset.event_count(), 4u);
  EXPECT_EQ(dataset.total_packets(), 40u);
  EXPECT_EQ(dataset.unique_sources(), 4u);
  EXPECT_EQ(dataset.first_day(), 5);
  EXPECT_EQ(dataset.last_day(), 5);
}

// ------------------------- packet-level vs analytic cross-validation -------

struct CrossCheckCase {
  double coverage;
  int repeats;
};

class SynthVsAggregator : public testing::TestWithParam<CrossCheckCase> {};

// The central property test: feeding the packet generator's output through
// the real aggregator must reproduce the analytic event synthesizer's
// event, statistically (same model, independent draws).
TEST_P(SynthVsAggregator, EventShapesAgree) {
  const auto [coverage, repeats] = GetParam();
  const std::uint64_t darknet_size = 2048;
  net::PrefixSet space({*net::Prefix::parse("198.18.0.0/21")});
  ASSERT_EQ(space.total_addresses(), darknet_size);

  scangen::ScannerProfile scanner;
  scanner.source = ip("203.0.113.77");
  scanner.tool = pkt::ScanTool::ZMap;
  scanner.rng_stream = 11;
  scangen::SessionSpec session;
  session.start = net::SimTime::at(net::Duration::hours(1));
  session.duration = net::Duration::hours(2);
  session.coverage = coverage;
  session.repeats = repeats;
  session.ports = {{6379, pkt::TrafficType::TcpSyn}};
  scanner.sessions.push_back(session);

  // Packet path.
  EventCollector collector;
  EventAggregator agg(space, fast_config(), collector.sink());
  scangen::PacketStreamGenerator gen({scanner}, space, net::SimTime::epoch(),
                                     session.end() + net::Duration::hours(1),
                                     {.seed = 21, .exact_targets = true});
  while (auto p = gen.next()) agg.observe(*p);
  agg.finish();
  ASSERT_EQ(collector.events().size(), 1u);
  const DarknetEvent packet_event = collector.events()[0];

  // Analytic path.
  std::vector<DarknetEvent> synth;
  scangen::synthesize_scanner_events(scanner,
                                     {.darknet_size = darknet_size, .seed = 22},
                                     synth);
  ASSERT_EQ(synth.size(), 1u);
  const DarknetEvent& synth_event = synth[0];

  // Same key.
  EXPECT_EQ(packet_event.key.src, synth_event.key.src);
  EXPECT_EQ(packet_event.key.dst_port, synth_event.key.dst_port);
  // Unique destinations agree within binomial noise (4 sigma ~ 4*sqrt(npq)).
  const double expected_uniques = coverage * static_cast<double>(darknet_size);
  const double sigma =
      std::sqrt(expected_uniques * (1 - coverage)) + 1.0;
  EXPECT_NEAR(static_cast<double>(packet_event.unique_dests), expected_uniques,
              4 * sigma);
  EXPECT_NEAR(static_cast<double>(synth_event.unique_dests), expected_uniques,
              4 * sigma);
  // Packets = repeats * uniques on both paths.
  EXPECT_EQ(packet_event.packets,
            packet_event.unique_dests * static_cast<std::uint64_t>(repeats));
  EXPECT_EQ(synth_event.packets,
            synth_event.unique_dests * static_cast<std::uint64_t>(repeats));
  // Both events live inside the session window.
  for (const DarknetEvent& e : {packet_event, synth_event}) {
    EXPECT_GE(e.start, session.start);
    EXPECT_LE(e.end, session.end());
  }
  // Tool attribution is complete on both paths.
  EXPECT_EQ(packet_event.packets_by_tool[tool_index(pkt::ScanTool::ZMap)],
            packet_event.packets);
  EXPECT_EQ(synth_event.packets_by_tool[tool_index(pkt::ScanTool::ZMap)],
            synth_event.packets);
}

INSTANTIATE_TEST_SUITE_P(CoverageGrid, SynthVsAggregator,
                         testing::Values(CrossCheckCase{1.0, 1},
                                         CrossCheckCase{0.5, 1},
                                         CrossCheckCase{0.15, 1},
                                         CrossCheckCase{1.0, 2},
                                         CrossCheckCase{0.3, 3}));

TEST(SynthVsAggregatorPopulation, EventCountsAgreeOnTinyScenario) {
  // Whole-population cross-check over a short window.
  const scangen::Scenario scenario{scangen::tiny()};
  // Window covers every session start (14-day population window) plus the
  // longest session duration, so no session is truncated on either path.
  const net::SimTime t0 = net::SimTime::epoch();
  const net::SimTime t1 = net::SimTime::at(net::Duration::days(40));

  EventCollector collector;
  AggregatorConfig config = fast_config();
  config.timeout = scenario.event_timeout();
  EventAggregator agg(scenario.darknet(), config, collector.sink());
  scangen::PacketStreamGenerator gen(scenario.population_2021().scanners,
                                     scenario.darknet(), t0, t1,
                                     {.seed = 31, .exact_targets = true});
  while (auto p = gen.next()) agg.observe(*p);
  agg.finish();

  const auto synth = scangen::synthesize_events(
      scenario.population_2021(),
      {.darknet_size = scenario.darknet().total_addresses(), .seed = 32});
  std::size_t synth_in_window = 0;
  std::uint64_t synth_packets = 0;
  for (const DarknetEvent& e : synth) {
    ++synth_in_window;
    synth_packets += e.packets;
  }
  // Counts and packet mass agree within 25% (independent random draws, and
  // window-edge sessions are counted slightly differently).
  EXPECT_GT(collector.events().size(), 0u);
  EXPECT_NEAR(static_cast<double>(collector.events().size()),
              static_cast<double>(synth_in_window),
              0.25 * static_cast<double>(synth_in_window) + 10);
  std::uint64_t packet_total = 0;
  for (const DarknetEvent& e : collector.events()) packet_total += e.packets;
  EXPECT_NEAR(static_cast<double>(packet_total),
              static_cast<double>(synth_packets),
              0.30 * static_cast<double>(synth_packets) + 100);
}

}  // namespace
}  // namespace orion::telescope

// NOTE: appended suite — event store (binary + CSV persistence).
#include <sstream>

#include "orion/telescope/store.hpp"

namespace orion::telescope {
namespace {

EventDataset sample_dataset() {
  std::vector<DarknetEvent> events;
  for (int i = 0; i < 100; ++i) {
    DarknetEvent e;
    e.key.src = net::Ipv4Address(0xCB007100u + static_cast<std::uint32_t>(i));
    e.key.dst_port = static_cast<std::uint16_t>(i % 7 == 0 ? 0 : 6379);
    e.key.type = i % 7 == 0 ? pkt::TrafficType::IcmpEchoReq
                            : pkt::TrafficType::TcpSyn;
    e.start = net::SimTime::at(net::Duration::seconds(100 * i));
    e.end = e.start + net::Duration::seconds(40);
    e.packets = 10 + static_cast<std::uint64_t>(i);
    e.unique_dests = 5 + static_cast<std::uint64_t>(i);
    e.packets_by_tool[telescope::tool_index(pkt::ScanTool::ZMap)] = e.packets;
    events.push_back(e);
  }
  return EventDataset(std::move(events), 4096);
}

TEST(EventStore, BinaryRoundTrip) {
  const EventDataset original = sample_dataset();
  std::stringstream stream;
  write_events_binary(original, stream);
  const EventDataset restored = read_events_binary(stream);
  EXPECT_EQ(restored.darknet_size(), original.darknet_size());
  ASSERT_EQ(restored.event_count(), original.event_count());
  EXPECT_EQ(restored.total_packets(), original.total_packets());
  for (std::size_t i = 0; i < original.event_count(); ++i) {
    const DarknetEvent& a = original.events()[i];
    const DarknetEvent& b = restored.events()[i];
    EXPECT_EQ(a.key.src, b.key.src);
    EXPECT_EQ(a.key.dst_port, b.key.dst_port);
    EXPECT_EQ(a.key.type, b.key.type);
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.end, b.end);
    EXPECT_EQ(a.packets, b.packets);
    EXPECT_EQ(a.unique_dests, b.unique_dests);
    EXPECT_EQ(a.packets_by_tool, b.packets_by_tool);
  }
}

TEST(EventStore, RejectsCorruptedInput) {
  const EventDataset original = sample_dataset();
  std::stringstream good;
  write_events_binary(original, good);
  const std::string bytes = good.str();

  {  // bad magic
    std::stringstream bad("XXXX" + bytes.substr(4));
    EXPECT_THROW(read_events_binary(bad), std::runtime_error);
  }
  {  // truncated mid-record
    std::stringstream bad(bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW(read_events_binary(bad), std::runtime_error);
  }
  {  // empty stream
    std::stringstream bad("");
    EXPECT_THROW(read_events_binary(bad), std::runtime_error);
  }
}

TEST(EventStore, CsvHasHeaderAndAllRows) {
  const EventDataset dataset = sample_dataset();
  std::stringstream out;
  write_events_csv(dataset, out);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(out, line)) ++lines;
  EXPECT_EQ(lines, dataset.event_count() + 1);
}

TEST(EventStore, WriteReportsStreamFailure) {
  // A stream that refuses everything (zero-size buffer) must surface the
  // failure instead of returning a fabricated byte count.
  std::stringstream out;
  out.setstate(std::ios::badbit);
  EXPECT_THROW(write_events_binary(sample_dataset(), out), std::runtime_error);
}

TEST(EventStore, StrictReaderDoesNotTrustHeaderCount) {
  // Header declares the maximum-allowed record count but carries zero
  // records: the clamped reserve means this fails fast on the first read
  // instead of committing ~10 GiB up front.
  std::stringstream bad;
  bad.write("ODE1", 4);
  for (std::uint64_t v : {std::uint64_t{4096}, std::uint64_t{1} << 27}) {
    char bytes[8];
    for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
    bad.write(bytes, 8);
  }
  EXPECT_THROW(read_events_binary(bad), std::runtime_error);
}

// --------------------------- corrupt-input corpus: truncation + bit flips

constexpr std::size_t kOde1HeaderBytes = 4 + 16;
constexpr std::size_t kOde1RecordBytes = 8 * 10;

std::string serialized_sample() {
  std::stringstream stream;
  write_events_binary(sample_dataset(), stream);
  return stream.str();
}

TEST(EventStoreSalvage, CleanFileIsComplete) {
  std::stringstream in(serialized_sample());
  const SalvageResult result = read_events_binary_salvage(in);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.error.empty());
  EXPECT_EQ(result.declared_count, 100u);
  EXPECT_EQ(result.recovered_count, 100u);
  EXPECT_EQ(result.dataset.event_count(), 100u);
  EXPECT_EQ(result.dataset.darknet_size(), 4096u);
}

TEST(EventStoreSalvage, RecoversPrefixOfTruncatedFile) {
  const std::string bytes = serialized_sample();
  // Sweep truncation points: mid-record, on a record boundary, one byte
  // short of a boundary — salvage must recover exactly the complete
  // records preceding the cut, every time.
  for (const std::size_t keep_records : {0u, 1u, 7u, 42u, 99u}) {
    for (const std::size_t extra :
         {std::size_t{0}, std::size_t{1}, kOde1RecordBytes - 1}) {
      const std::size_t cut = kOde1HeaderBytes + keep_records * kOde1RecordBytes + extra;
      ASSERT_LT(cut, bytes.size());
      std::stringstream in(bytes.substr(0, cut));
      const SalvageResult result = read_events_binary_salvage(in);
      EXPECT_FALSE(result.complete);
      EXPECT_FALSE(result.error.empty());
      EXPECT_EQ(result.declared_count, 100u);
      EXPECT_EQ(result.recovered_count, keep_records) << "cut at " << cut;
      // The strict reader throws the whole file away on the same input.
      std::stringstream strict_in(bytes.substr(0, cut));
      EXPECT_THROW(read_events_binary(strict_in), std::runtime_error);
    }
  }
}

TEST(EventStoreSalvage, RecoveredPrefixMatchesOriginalRecords) {
  const EventDataset original = sample_dataset();
  const std::string bytes = serialized_sample();
  const std::size_t cut = kOde1HeaderBytes + 25 * kOde1RecordBytes + 3;
  std::stringstream in(bytes.substr(0, cut));
  const SalvageResult result = read_events_binary_salvage(in);
  ASSERT_EQ(result.recovered_count, 25u);
  for (std::size_t i = 0; i < 25; ++i) {
    const DarknetEvent& a = original.events()[i];
    const DarknetEvent& b = result.dataset.events()[i];
    EXPECT_EQ(a.key.src, b.key.src);
    EXPECT_EQ(a.packets, b.packets);
    EXPECT_EQ(a.unique_dests, b.unique_dests);
  }
}

TEST(EventStoreSalvage, StopsAtBitFlippedTrafficType) {
  std::string bytes = serialized_sample();
  // Corrupt the traffic-type byte of record 10 (low byte of its second
  // word) to an out-of-range value: salvage keeps records 0..9.
  const std::size_t offset = kOde1HeaderBytes + 10 * kOde1RecordBytes + 8;
  bytes[offset] = static_cast<char>(0x7F);
  std::stringstream in(bytes);
  const SalvageResult result = read_events_binary_salvage(in);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.recovered_count, 10u);
  EXPECT_NE(result.error.find("traffic type"), std::string::npos);
}

TEST(EventStoreSalvage, BadMagicRecoversNothing) {
  std::string bytes = serialized_sample();
  bytes[0] = 'X';
  std::stringstream in(bytes);
  const SalvageResult result = read_events_binary_salvage(in);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.recovered_count, 0u);
  EXPECT_EQ(result.dataset.event_count(), 0u);
  EXPECT_NE(result.error.find("magic"), std::string::npos);
}

TEST(EventStoreSalvage, TruncatedHeaderRecoversNothing) {
  const std::string bytes = serialized_sample();
  for (const std::size_t cut : {2u, 4u, 11u, 19u}) {
    std::stringstream in(bytes.substr(0, cut));
    const SalvageResult result = read_events_binary_salvage(in);
    EXPECT_FALSE(result.complete);
    EXPECT_EQ(result.recovered_count, 0u) << "cut at " << cut;
  }
}

}  // namespace
}  // namespace orion::telescope
