#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <unordered_set>

#include "orion/netbase/ipv6.hpp"
#include "orion/v6/detect6.hpp"
#include "orion/v6/hitlist.hpp"
#include "orion/v6/scanner6.hpp"

namespace orion {
namespace {

// ------------------------------------------------------------- Ipv6Address

TEST(Ipv6Address, ParsesCanonicalForms) {
  const auto a = net::Ipv6Address::parse("2001:db8:0:0:0:0:0:1");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->group(0), 0x2001);
  EXPECT_EQ(a->group(1), 0x0db8);
  EXPECT_EQ(a->group(7), 1);
}

TEST(Ipv6Address, ParsesCompressedForms) {
  const auto full = net::Ipv6Address::parse("2001:db8:0:0:0:0:0:1");
  for (const char* text : {"2001:db8::1", "2001:0db8::0001", "2001:DB8::1"}) {
    const auto a = net::Ipv6Address::parse(text);
    ASSERT_TRUE(a) << text;
    EXPECT_EQ(*a, *full) << text;
  }
  EXPECT_EQ(net::Ipv6Address::parse("::")->interface_id(), 0u);
  EXPECT_EQ(net::Ipv6Address::parse("::1")->group(7), 1);
  EXPECT_EQ(net::Ipv6Address::parse("fe80::")->group(0), 0xfe80);
}

TEST(Ipv6Address, ParseRejectsMalformed) {
  for (const char* bad :
       {"", ":", ":::", "1::2::3", "2001:db8", "2001:db8:0:0:0:0:0:0:1",
        "2001:db8::zzzz", "20011::1", "2001:db8:::1", "1:2:3:4:5:6:7:8:9",
        "2001:db8::1::"}) {
    EXPECT_FALSE(net::Ipv6Address::parse(bad)) << bad;
  }
}

TEST(Ipv6Address, ToStringIsRfc5952) {
  const std::map<std::string, std::string> cases = {
      {"2001:db8:0:0:0:0:0:1", "2001:db8::1"},
      {"0:0:0:0:0:0:0:0", "::"},
      {"0:0:0:0:0:0:0:1", "::1"},
      {"2001:db8:0:1:1:1:1:1", "2001:db8:0:1:1:1:1:1"},  // single zero not ::
      {"2001:0:0:1:0:0:0:1", "2001:0:0:1::1"},  // longest run wins
      {"fe80:0:0:0:1:0:0:1", "fe80::1:0:0:1"},  // leftmost on ties... longest is left
      {"2001:db8:0:0:1:0:0:0", "2001:db8:0:0:1::"},
  };
  for (const auto& [input, expected] : cases) {
    const auto a = net::Ipv6Address::parse(input);
    ASSERT_TRUE(a) << input;
    EXPECT_EQ(a->to_string(), expected) << input;
  }
}

TEST(Ipv6Address, RoundTripsThroughText) {
  net::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    net::Ipv6Address::Bytes bytes;
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
    // Sprinkle zero groups to exercise compression.
    if (rng.chance(0.5)) {
      const std::size_t at = rng.bounded(6);
      for (std::size_t j = 0; j < 2 * (1 + rng.bounded(3)); ++j) {
        bytes[2 * at + j] = 0;
      }
    }
    const net::Ipv6Address a(bytes);
    const auto parsed = net::Ipv6Address::parse(a.to_string());
    ASSERT_TRUE(parsed) << a.to_string();
    EXPECT_EQ(*parsed, a) << a.to_string();
  }
}

TEST(Ipv6Address, PatternPredicates) {
  EXPECT_TRUE(net::Ipv6Address::parse("2001:db8::1")->is_low_byte());
  EXPECT_TRUE(net::Ipv6Address::parse("2001:db8::ffff")->is_low_byte());
  EXPECT_FALSE(net::Ipv6Address::parse("2001:db8::1:0:0:1")->is_low_byte());
  EXPECT_TRUE(
      net::Ipv6Address::parse("2001:db8::0211:22ff:fe33:4455")->looks_eui64());
  EXPECT_FALSE(net::Ipv6Address::parse("2001:db8::1")->looks_eui64());
}

TEST(Ipv6Address, HashSpreads) {
  std::unordered_set<std::size_t> hashes;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    net::Ipv6Prefix p = *net::Ipv6Prefix::parse("2001:db8::/48");
    hashes.insert(net::Ipv6AddressHash{}(p.at_interface(i)));
  }
  EXPECT_GT(hashes.size(), 990u);
}

// -------------------------------------------------------------- Ipv6Prefix

TEST(Ipv6Prefix, ParseContainsAndMask) {
  const auto p = net::Ipv6Prefix::parse("2001:db8:aa00::/40");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->length(), 40);
  EXPECT_TRUE(p->contains(*net::Ipv6Address::parse("2001:db8:aaff::1")));
  EXPECT_FALSE(p->contains(*net::Ipv6Address::parse("2001:db8:ab00::1")));
  // Host bits are zeroed at construction.
  const net::Ipv6Prefix q(*net::Ipv6Address::parse("2001:db8:aaff::1"), 40);
  EXPECT_EQ(q.base(), *net::Ipv6Address::parse("2001:db8:aa00::"));
  EXPECT_FALSE(net::Ipv6Prefix::parse("2001:db8::/129"));
  EXPECT_FALSE(net::Ipv6Prefix::parse("2001:db8::"));
}

TEST(Ipv6Prefix, AtInterfaceBuildsInsidePrefix) {
  const auto p = net::Ipv6Prefix::parse("2001:db8:1::/48");
  ASSERT_TRUE(p);
  const net::Ipv6Address a = p->at_interface(0xdeadbeef);
  EXPECT_TRUE(p->contains(a));
  EXPECT_EQ(a.interface_id(), 0xdeadbeefu);
}

// ----------------------------------------------------------------- hitlist

TEST(Hitlist, GeneratesConfiguredSizeAndPatterns) {
  v6::HitlistConfig config;
  config.prefix_count = 50;
  config.addresses_per_prefix = 20;
  const auto hitlist = v6::generate_hitlist(config);
  ASSERT_EQ(hitlist.size(), 1000u);

  std::array<int, 4> counts{};
  for (const auto& entry : hitlist) {
    // The classifier recovers the generation pattern.
    EXPECT_EQ(v6::classify_pattern(entry.address), entry.pattern)
        << entry.address.to_string();
    ++counts[static_cast<std::size_t>(entry.pattern)];
  }
  // Shares roughly match the config (45/25/15/15).
  EXPECT_NEAR(counts[0], 450, 60);
  EXPECT_NEAR(counts[1], 250, 60);
  EXPECT_NEAR(counts[2], 150, 50);
  EXPECT_NEAR(counts[3], 150, 50);
}

TEST(Hitlist, Deterministic) {
  const auto a = v6::generate_hitlist({});
  const auto b = v6::generate_hitlist({});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].address, b[i].address);
}

// ------------------------------------------------------------ v6 detection

TEST(V6Detection, FindsHeavySweepers) {
  const auto hitlist = v6::generate_hitlist({});
  const auto scanners = v6::demo_v6_population(28, 9);
  const auto events = v6::synthesize_v6_events(scanners, hitlist, {});
  ASSERT_GT(events.size(), 100u);

  const auto result = v6::detect_v6(events, hitlist.size());
  // All heavy sweepers (share >= 0.5) and the top of the mid tier qualify;
  // the 300 background pokers (share <= 1%) never do.
  for (const auto& scanner : scanners) {
    if (scanner.hitlist_share >= 0.5) {
      EXPECT_TRUE(result.dispersion_ah.contains(scanner.source))
          << scanner.source.to_string();
    }
    if (scanner.hitlist_share < 0.05) {
      EXPECT_FALSE(result.dispersion_ah.contains(scanner.source));
    }
  }
  EXPECT_GE(result.dispersion_ah.size(), 6u);
  EXPECT_LE(result.dispersion_ah.size(), 46u);  // heavy + mid tier at most
  // Volume AH exist and are a subset of the dispersion AH (the biggest
  // per-event packet counts come from the widest hitlist sweeps).
  EXPECT_FALSE(result.volume_ah.empty());
  for (const auto& ip : result.volume_ah) {
    EXPECT_TRUE(result.dispersion_ah.contains(ip)) << ip.to_string();
  }
}

TEST(V6Detection, EmptyInputsAreSafe) {
  const auto result = v6::detect_v6({}, 1000);
  EXPECT_TRUE(result.all().empty());
  EXPECT_EQ(result.total_events, 0u);
}

TEST(V6Events, PacketsScaleWithExpansion) {
  const auto hitlist = v6::generate_hitlist({});
  v6::V6ScannerProfile scanner;
  scanner.source = *net::Ipv6Address::parse("2a0e::1");
  scanner.hitlist_share = 0.5;
  scanner.expansion = 3;
  scanner.sessions_per_day = 50;  // force sessions
  scanner.end_day = 1;
  const auto events = v6::synthesize_v6_events({scanner}, hitlist, {});
  ASSERT_FALSE(events.empty());
  for (const auto& e : events) {
    EXPECT_EQ(e.packets, e.unique_targets * 3);
    EXPECT_NEAR(static_cast<double>(e.unique_targets), 0.5 * hitlist.size(),
                5 * std::sqrt(0.25 * hitlist.size()));
  }
}

}  // namespace
}  // namespace orion
